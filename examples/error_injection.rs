//! Soft-error injection demo: watch FT-GEMM detect, locate, and correct
//! injected computing errors on the fly, while a plain GEMM silently
//! returns corrupted results.
//!
//! ```sh
//! cargo run --release --example error_injection
//! ```

use ftgemm::abft::{ft_gemm, FtConfig};
use ftgemm::core::{reference::naive_gemm, Matrix};
use ftgemm::faults::{ErrorModel, FaultInjector, Rate};

fn main() {
    let n = 640;
    let a = Matrix::<f64>::random(n, n, 11);
    let b = Matrix::<f64>::random(n, n, 12);
    let mut truth = Matrix::<f64>::zeros(n, n);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut truth.as_mut());

    for (label, model) in [
        ("bit flips", ErrorModel::BitFlip { bit: None }),
        (
            "additive bursts (~1e6)",
            ErrorModel::Additive { magnitude: 1e6 },
        ),
        ("scaling faults (x8)", ErrorModel::Scale { factor: 8.0 }),
    ] {
        let injector = FaultInjector::new(2024, model, Rate::Count(8));
        let cfg = FtConfig::with_injector(injector.clone());
        let mut c = Matrix::<f64>::zeros(n, n);
        let report = ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut())
            .expect("unrecoverable error pattern");

        let diff = truth.rel_max_diff(&c);
        println!(
            "{label:24} injected={:2}  detected={:2}  corrected={:2}  rel diff vs truth = {diff:.2e}  -> {}",
            report.injected,
            report.detected,
            report.corrected,
            if diff < 1e-9 { "CORRECT" } else { "WRONG" },
        );
        assert!(diff < 1e-9, "fault tolerance failed");
    }

    // The same errors without fault tolerance: silent data corruption.
    // (We emulate by injecting into C after a clean run, as a faulty
    // machine would have.)
    let injector = FaultInjector::new(
        2024,
        ErrorModel::Additive { magnitude: 1e6 },
        Rate::Count(8),
    );
    let mut c = truth.clone();
    let mut stream = injector.stream(0, 64);
    let mut hits = 0;
    for site in 0..64 {
        if let Some(ev) = stream.poll() {
            let i = (ev.lane as usize) % n;
            let j = site % n;
            c.set(i, j, ev.apply_f64(c.get(i, j)));
            hits += 1;
        }
    }
    println!(
        "\nplain GEMM under the same {hits} faults: rel diff vs truth = {:.2e}  -> silent corruption",
        truth.rel_max_diff(&c)
    );
}
