//! Serving-layer walkthrough: a `GemmService` absorbing a burst of mixed
//! traffic — many small GEMMs (batched) interleaved with large ones
//! (matrix-parallel) and a fault-injected request under `DetectCorrect`.
//!
//! ```sh
//! cargo run --release --example serving_throughput
//! ```

use ftgemm::serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
use ftgemm::{FaultInjector, Matrix};
use std::time::Instant;

fn main() {
    let service = GemmService::<f64>::new(ServiceConfig {
        max_batch: 32,
        ..ServiceConfig::default()
    });
    println!(
        "GemmService up: {} worker threads, max_batch 32\n",
        service.nthreads()
    );

    // A burst of small requests — the batched path.
    let small = 256;
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for i in 0..small as u64 {
        let a = Matrix::<f64>::random(64, 48, i);
        let b = Matrix::<f64>::random(48, 56, i + 1);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    // A few large requests in the same burst — the matrix-parallel path.
    for i in 0..4u64 {
        let a = Matrix::<f64>::random(768, 768, 100 + i);
        let b = Matrix::<f64>::random(768, 768, 200 + i);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    // One request with deliberate soft errors, corrected transparently.
    let a = Matrix::<f64>::random(128, 128, 7);
    let b = Matrix::<f64>::random(128, 128, 8);
    let injected_handle = service
        .submit(
            GemmRequest::new(a, b)
                .with_policy(FtPolicy::DetectCorrect)
                .with_injector(FaultInjector::counted(42, 3)),
        )
        .unwrap();

    for h in handles {
        h.wait().unwrap();
    }
    let resp = injected_handle.wait().unwrap();
    let wall = t0.elapsed();

    println!(
        "fault-injected request: {} injected, {} corrected — result served clean",
        resp.report.injected, resp.report.corrected
    );

    let stats = service.shutdown();
    println!("\nburst of {} requests in {wall:.2?}", stats.submitted);
    println!("  completed            {}", stats.completed);
    println!("  failed               {}", stats.failed);
    println!("  requests/sec         {:.0}", stats.requests_per_sec);
    println!("  batched requests     {}", stats.batched_requests);
    println!("  batched regions      {}", stats.batches);
    println!("  mean batch occupancy {:.1}", stats.mean_batch_occupancy);
    println!("  direct large         {}", stats.direct_large);
    println!("  mean turnaround      {:.2?}", stats.mean_turnaround);
    println!("  errors corrected     {}", stats.corrected);
    println!("  pool regions         {}", stats.pool.regions);
}
