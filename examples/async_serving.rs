//! Async serving walkthrough: drive hundreds of in-flight requests from a
//! single thread, with **zero dedicated waiter threads**.
//!
//! The point of `GemmService::submit_async` is that a web-style frontend no
//! longer needs one parked thread per outstanding request: each submission
//! returns a plain `Future`, the scheduler's fulfill path fires the task's
//! waker, and any executor — including the ~40-line hand-rolled `block_on`
//! below — can multiplex all of them on one thread. (The library ships the
//! same loop as `ftgemm_serve::exec::block_on_all`; it is hand-rolled here
//! to show there is no magic in it.) The same demo also
//! drains a second burst through the completion-channel bridge
//! (`submit_streamed`), the surface to reach for when per-request futures
//! are more structure than you need.
//!
//! ```sh
//! cargo run --release --example async_serving
//! ```

use ftgemm::core::reference::naive_gemm;
use ftgemm::serve::{completion_channel, FtPolicy, GemmRequest, GemmService, ServiceConfig};
use ftgemm::Matrix;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Instant;

/// Waker that unparks the executor thread. `Wake` (std, stable) turns an
/// `Arc<ParkWaker>` into a `Waker` without any unsafe vtable plumbing.
struct ParkWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ParkWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Polls every future to completion on the calling thread, parking between
/// rounds of progress. One shared waker is enough: any completion unparks
/// the loop, which re-polls whatever is still pending (O(n) per wake — fine
/// for a demo executor; a real one would wake per-task).
fn block_on_all<F: Future + Unpin>(futures: Vec<F>) -> Vec<F::Output> {
    let parker = Arc::new(ParkWaker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);

    let mut pending: Vec<Option<F>> = futures.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<F::Output>> = pending.iter().map(|_| None).collect();
    let mut remaining = pending.len();
    while remaining > 0 {
        for (slot, out) in pending.iter_mut().zip(outputs.iter_mut()) {
            if let Some(fut) = slot.as_mut() {
                if let Poll::Ready(v) = Pin::new(fut).poll(&mut cx) {
                    *out = Some(v);
                    *slot = None;
                    remaining -= 1;
                }
            }
        }
        if remaining > 0 {
            // Sleep until a fulfill-side wake arrives; if one landed while
            // we were polling, the swap short-circuits and we re-poll.
            while !parker.notified.swap(false, Ordering::Acquire) {
                std::thread::park();
            }
        }
    }
    outputs.into_iter().map(Option::unwrap).collect()
}

fn main() {
    let service = GemmService::<f64>::new(ServiceConfig {
        max_batch: 32,
        ..ServiceConfig::default()
    });
    println!(
        "GemmService up: {} worker threads; frontend = this one thread\n",
        service.nthreads()
    );

    // ---- Burst 1: 128 concurrent async futures, one executor thread. ----
    let n_async = 128;
    let t0 = Instant::now();
    let mut futures = Vec::with_capacity(n_async);
    for i in 0..n_async as u64 {
        let a = Matrix::<f64>::random(64, 48, i);
        let b = Matrix::<f64>::random(48, 56, i + 1);
        futures.push(
            service
                .submit_async(GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect))
                .expect("submit_async"),
        );
    }
    println!(
        "submitted {n_async} async requests in {:.2?}; {} futures in flight, 0 waiter threads",
        t0.elapsed(),
        service.stats().in_flight_async
    );

    let results = block_on_all(futures);
    let wall_async = t0.elapsed();
    assert_eq!(results.len(), n_async);
    for r in &results {
        assert!(r.as_ref().expect("request failed").report.detected == 0);
    }
    // Spot-check one result against the serial reference.
    let a = Matrix::<f64>::random(64, 48, 0);
    let b = Matrix::<f64>::random(48, 56, 1);
    let mut expected = Matrix::<f64>::zeros(64, 56);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
    let diff = results[0].as_ref().unwrap().c.rel_max_diff(&expected);
    println!(
        "all {n_async} futures resolved in {wall_async:.2?} (spot-check vs naive: {diff:.1e})\n"
    );

    // ---- Burst 2: completion-channel bridge, one drain loop. ----
    let n_streamed = 128;
    let (sink, mut completions) = completion_channel::<f64>();
    let t1 = Instant::now();
    for i in 0..n_streamed as u64 {
        let a = Matrix::<f64>::random(56, 40, 1_000 + i);
        let b = Matrix::<f64>::random(40, 48, 2_000 + i);
        service
            .submit_streamed(GemmRequest::new(a, b), &sink)
            .expect("submit_streamed");
    }
    let mut drained = 0u32;
    while let Some(completion) = completions.recv() {
        completion.result.expect("request failed");
        drained += 1;
    }
    assert_eq!(drained, n_streamed);
    println!(
        "drained {n_streamed} streamed completions in {:.2?}",
        t1.elapsed()
    );

    let stats = service.shutdown();
    println!("\nservice totals:");
    println!(
        "  submitted            {} (sync {}, async {}, streamed {})",
        stats.submitted, stats.submitted_sync, stats.submitted_async, stats.submitted_streamed
    );
    println!("  completed            {}", stats.completed);
    println!("  in-flight futures    {}", stats.in_flight_async);
    println!("  requests/sec         {:.0}", stats.requests_per_sec);
    println!("  batched regions      {}", stats.batches);
    println!("  mean batch occupancy {:.1}", stats.mean_batch_occupancy);
    println!("  batch wall time      {:.2?}", stats.batch_wall);
    println!("  batch thread busy    {:?}", stats.batch_busy_per_thread);
    println!(
        "  thread occupancy     {:.0}%",
        stats.batch_thread_occupancy * 100.0
    );
}
