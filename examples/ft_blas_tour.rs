//! Tour of the FT-BLAS companion layer: DMR-protected Level-1/2 routines
//! surviving injected faults (the framework FT-GEMM lives in; paper ref [4]).
//!
//! ```sh
//! cargo run --release --example ft_blas_tour
//! ```

use ftgemm::blas::level1_ft::{ft_axpy, ft_dot, ft_nrm2};
use ftgemm::blas::level2::{gemv, Triangle};
use ftgemm::blas::level2_ft::{ft_gemv, ft_trsv};
use ftgemm::blas::{level1, DmrConfig};
use ftgemm::core::Matrix;
use ftgemm::faults::{ErrorModel, FaultInjector, Rate};

fn main() {
    let n = 4096;
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.031).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.017).cos()).collect();

    let injector = FaultInjector::new(99, ErrorModel::Additive { magnitude: 1e8 }, Rate::Count(3));
    let mut cfg = DmrConfig::with_injector(injector.clone());
    cfg.block = 256;

    // AXPY under fault injection: duplicated blocks vote out corruption.
    let mut y_ft = y.clone();
    let rep = ft_axpy(&cfg, 2.5, &x, &mut y_ft);
    let mut y_ref = y.clone();
    level1::axpy(2.5, &x, &mut y_ref);
    println!(
        "ft_axpy : {} blocks, {} injected, {} detected, result {}",
        rep.blocks,
        rep.injected,
        rep.mismatches,
        if y_ft == y_ref { "EXACT" } else { "WRONG" }
    );

    // DOT and NRM2 with duplicated accumulators.
    let (d, rep) = ft_dot(&cfg, &x, &y);
    println!(
        "ft_dot  : value {d:.6}, {} injected, {} detected",
        rep.injected, rep.mismatches
    );
    let (nrm, _) = ft_nrm2(&cfg, &x);
    println!("ft_nrm2 : value {nrm:.6}");

    // GEMV with a whole-result duplicate + vote.
    let m = 512;
    let a = Matrix::<f64>::random(m, m, 7);
    let xv: Vec<f64> = (0..m).map(|i| i as f64 / m as f64).collect();
    let mut yv_ft = vec![1.0; m];
    let rep = ft_gemv(&cfg, 1.0, &a.as_ref(), &xv, 0.0, &mut yv_ft);
    let mut yv_ref = vec![1.0; m];
    gemv(1.0, &a.as_ref(), &xv, 0.0, &mut yv_ref);
    println!(
        "ft_gemv : {} injected, {} detected, result {}",
        rep.injected,
        rep.mismatches,
        if yv_ft == yv_ref { "EXACT" } else { "WRONG" }
    );

    // Triangular solve with DMR.
    let l = Matrix::<f64>::from_fn(m, m, |i, j| {
        if i == j {
            4.0
        } else if i > j {
            0.2 * ((i * 3 + j) % 7) as f64 / 7.0
        } else {
            0.0
        }
    });
    let x_true: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.01).cos()).collect();
    let mut bvec = vec![0.0; m];
    gemv(1.0, &l.as_ref(), &x_true, 0.0, &mut bvec);
    let rep = ft_trsv(&cfg, Triangle::Lower, &l.as_ref(), &mut bvec);
    let max_err = bvec
        .iter()
        .zip(&x_true)
        .map(|(p, q)| (p - q).abs())
        .fold(0.0f64, f64::max);
    println!(
        "ft_trsv : {} injected, {} detected, max solve error {max_err:.2e}",
        rep.injected, rep.mismatches
    );

    println!("\ninjector totals: {}", injector.stats().summary());
}
