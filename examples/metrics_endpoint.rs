//! Observability walkthrough: run a service with the `/metrics` endpoint
//! live, push traffic through it, and scrape yourself over plain TCP —
//! the same bytes Prometheus would collect.
//!
//! `ServiceConfig::obs_addr` is all it takes: the service binds a tiny
//! HTTP/1.0 listener (std::net, no framework) serving the Prometheus text
//! exposition at `/metrics`, a liveness probe at `/healthz`, and the
//! request-lifecycle trace rings at `/trace`. Port 0 asks the OS for a
//! free port; `GemmService::obs_addr` reports the resolved address.
//!
//! ```sh
//! cargo run --release --example metrics_endpoint
//! ```

use ftgemm::serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
use ftgemm::{FaultInjector, Matrix};
use std::io::{Read, Write};
use std::net::TcpStream;

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw.split_once("\r\n\r\n").expect("body").1.to_string()
}

fn main() {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 4,
        max_batch: 8,
        obs_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::default()
    });
    let addr = service.obs_addr().expect("endpoint bound");
    println!("metrics endpoint live at http://{addr}/metrics\n");

    // Traffic: a burst of small GEMMs, some carrying fault injectors so the
    // ABFT counter families have something to say.
    let mut handles = Vec::new();
    for i in 0..64u64 {
        let a = Matrix::<f64>::random(64, 64, i);
        let b = Matrix::<f64>::random(64, 64, i + 500);
        let mut req = GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect);
        if i % 8 == 0 {
            req = req.with_injector(FaultInjector::counted(i, 1));
        }
        handles.push(service.submit(req).expect("submit"));
    }
    for h in handles {
        h.wait().expect("request");
    }

    println!("healthz: {}", get(addr, "/healthz").trim());

    // The scrape, filtered to the headline families (the full body carries
    // every StatsSnapshot field — see ftgemm_serve::export for the table).
    let metrics = get(addr, "/metrics");
    println!("\n-- selected /metrics families --");
    for line in metrics.lines() {
        if line.starts_with("ftgemm_requests_")
            || line.starts_with("ftgemm_ft_")
            || line.starts_with("ftgemm_request_turnaround_seconds_count")
            || line.starts_with("ftgemm_abft_corrected_total")
        {
            println!("{line}");
        }
    }

    // The last few lifecycle trace records: admitted → queued →
    // dispatched(path) → computed → completed, per request, per node.
    println!("\n-- tail of /trace --");
    let trace = get(addr, "/trace");
    for line in trace.lines().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!("{line}");
    }
}
