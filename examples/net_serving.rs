//! Wire-frontend walkthrough: start a `NetServer` on a loopback port,
//! connect a `NetClient`, and drive the whole protocol surface — operand
//! upload with reuse handles, handle-based and inline submits, stream
//! and hold delivery, and handle release.
//!
//! The server is plain `std::net` (no async runtime): one accept loop,
//! one reader/writer/pump thread trio per connection, bridging frames
//! onto the same `GemmService` the in-process examples use. Uploaded
//! operands stay server-resident behind ref-counted handles, so a client
//! that re-fires against the same matrices ships 16 bytes per submit
//! instead of two full operands.
//!
//! ```sh
//! cargo run --release --example net_serving
//! ```

use ftgemm::net::{NetClient, NetServer, NetServerConfig, NetSubmit};
use ftgemm::serve::{FtPolicy, GemmService, ServiceConfig};
use ftgemm::Matrix;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // The compute plane: an ordinary in-process service...
    let service = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 4,
        max_batch: 8,
        ..ServiceConfig::default()
    }));
    // ...and the wire frontend bound on it. Port 0 asks the OS for a free
    // port; addr() reports where it landed.
    let server = NetServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetServerConfig::default(),
    )
    .expect("bind");
    println!("wire frontend live at {}\n", server.addr());

    let mut client = NetClient::connect(server.addr()).expect("connect");
    println!("negotiated feature bits: {:#b}", client.features());

    // Upload once, submit many: A and B become server-resident handles.
    let a = Matrix::<f64>::random(96, 96, 1);
    let b = Matrix::<f64>::random(96, 96, 2);
    let ha = client.upload(&a).expect("upload A");
    let hb = client.upload(&b).expect("upload B");
    println!("uploaded operands: A -> handle {ha}, B -> handle {hb}");

    // Stream delivery (the default): the server pushes completions as they
    // finish; next_completion() drains them in arrival order.
    let n = 8;
    for _ in 0..n {
        client
            .submit(NetSubmit::new(ha, hb).with_policy(FtPolicy::DetectCorrect))
            .expect("submit");
    }
    let mut checked = 0;
    for _ in 0..n {
        let c = client.next_completion().expect("completion");
        let ok = c.result.expect("request failed");
        let out = ok.to_matrix();
        assert_eq!((out.nrows(), out.ncols()), (96, 96));
        checked += 1;
    }
    println!("{checked} handle-based submits completed over the wire");

    // Hold delivery: the server parks the completion; poll is non-blocking,
    // wait blocks server-side. Inline operands work too — no upload needed.
    let small_a = Matrix::<f64>::random(32, 32, 3);
    let small_b = Matrix::<f64>::random(32, 32, 4);
    let id = client
        .submit(
            NetSubmit::new(&small_a, &small_b)
                .held()
                .with_deadline(Duration::from_secs(30)),
        )
        .expect("submit held");
    let c = match client.poll(id).expect("poll") {
        Some(c) => c, // already done
        None => client.wait(id).expect("wait"),
    };
    let report = c.result.expect("request failed");
    println!(
        "held inline submit {id} done (verifications: {})",
        report.report().verifications
    );

    // Handles are ref-counted server state: release them when done. A
    // dropped connection releases its handles automatically.
    client.release(ha).expect("release A");
    client.release(hb).expect("release B");
    println!(
        "handles released; server-resident bytes now {}",
        server.store().resident_bytes()
    );

    server.stop();
    println!("server stopped");
}
