//! Thread-scaling study: parallel FT-GEMM throughput and FT overhead as the
//! worker count grows (the paper's cache-friendly parallel design, §2.3).
//!
//! ```sh
//! cargo run --release --example parallel_scaling
//! ```

use ftgemm::abft::FtConfig;
use ftgemm::core::Matrix;
use ftgemm::parallel::{par_ft_gemm, par_gemm, ParGemmContext};
use std::time::Instant;

fn time(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let reps = 3;
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let n = 1024;
    let a = Matrix::<f64>::random(n, n, 21);
    let b = Matrix::<f64>::random(n, n, 22);
    let flops = 2.0 * (n as f64).powi(3);
    let max_threads = ftgemm::core::cpu::num_cpus();

    println!("parallel (FT-)DGEMM scaling at {n}^3 (up to {max_threads} threads)\n");
    println!("threads |   Ori GFLOPS |    FT GFLOPS | FT overhead");
    println!("--------+--------------+--------------+------------");

    let mut t = 1;
    let mut base = None;
    while t <= max_threads {
        let ctx = ParGemmContext::<f64>::with_threads(t);
        let cfg = FtConfig::default();

        let mut c = Matrix::<f64>::zeros(n, n);
        let t_ori = time(|| {
            par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut()).unwrap();
        });
        let t_ft = time(|| {
            par_ft_gemm(
                &ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                1.0,
                &mut c.as_mut(),
            )
            .unwrap();
        });

        let g_ori = flops / t_ori / 1e9;
        let g_ft = flops / t_ft / 1e9;
        base.get_or_insert(g_ori);
        println!(
            "{t:7} | {g_ori:12.2} | {g_ft:12.2} | {:+10.2}%",
            (t_ft / t_ori - 1.0) * 100.0
        );
        t *= 2;
    }
    println!(
        "\n(speedup of Ori at max threads vs 1 thread is visible in the first column;\n\
         the last column is the paper's parallel FT overhead, ~1.8% at scale)"
    );
}
