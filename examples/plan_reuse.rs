//! Plan-once / execute-many: what holding a `GemmPlan` buys over calling
//! the one-shot `ft_gemm` (fresh context, fresh checksum workspaces) in a
//! loop, at a serving-sized problem.
//!
//! ```sh
//! cargo run --release --example plan_reuse
//! ```

use ftgemm::{Exec, FtConfig, FtPolicy, GemmOp, Matrix, ParGemmContext};
use std::time::Instant;

const ROUNDS: usize = 200;

fn main() {
    let n = 256;
    let a = Matrix::<f64>::random(n, n, 1);
    let b = Matrix::<f64>::random(n, n, 2);
    let cfg = FtConfig::default();

    // Baseline: the legacy one-shot path — every call builds a fresh
    // FtGemmContext (packing scratch + checksum vectors) and drops it.
    let mut c1 = Matrix::<f64>::zeros(n, n);
    ftgemm::ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c1.as_mut()).unwrap(); // warm-up
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        ftgemm::ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c1.as_mut()).unwrap();
    }
    let fresh = t0.elapsed();

    // Planned: shapes validated and workspaces allocated exactly once;
    // every `run` reuses them (zero heap allocation per call).
    let mut c2 = Matrix::<f64>::zeros(n, n);
    let mut plan = GemmOp::new(&a, &b)
        .ft_config(cfg.clone())
        .plan(Exec::Serial)
        .unwrap();
    plan.run(&mut c2.as_mut()).unwrap(); // warm-up
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        plan.run(&mut c2.as_mut()).unwrap();
    }
    let planned = t0.elapsed();

    assert_eq!(
        c1.as_slice(),
        c2.as_slice(),
        "plan and one-shot must agree bit-for-bit"
    );

    let per_fresh = fresh.as_secs_f64() / ROUNDS as f64 * 1e3;
    let per_planned = planned.as_secs_f64() / ROUNDS as f64 * 1e3;
    println!("serial FT-GEMM {n}x{n}x{n}, {ROUNDS} rounds:");
    println!("  fresh-context ft_gemm : {per_fresh:8.3} ms/call");
    println!("  reused GemmPlan       : {per_planned:8.3} ms/call");
    println!("  speedup               : {:8.2}x", per_fresh / per_planned);

    // The same plan shape works parallel: only the Exec target changes.
    let ctx = ParGemmContext::<f64>::new();
    let mut c3 = Matrix::<f64>::zeros(n, n);
    let mut par_plan = GemmOp::new(&a, &b)
        .ft(FtPolicy::DetectCorrect)
        .plan(Exec::Parallel(&ctx))
        .unwrap();
    par_plan.run(&mut c3.as_mut()).unwrap(); // warm-up
    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        par_plan.run(&mut c3.as_mut()).unwrap();
    }
    let par = t0.elapsed().as_secs_f64() / ROUNDS as f64 * 1e3;
    println!(
        "  parallel plan ({} threads): {par:8.3} ms/call (workspace pinned at {:#x})",
        ctx.nthreads(),
        par_plan.workspace_addr().unwrap()
    );
}
