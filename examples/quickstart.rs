//! Quickstart: the three ways to multiply matrices with FT-GEMM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftgemm::abft::{ft_gemm, FtConfig};
use ftgemm::core::{gemm, GemmContext, Matrix};
use ftgemm::parallel::{par_ft_gemm, ParGemmContext};

fn main() {
    let n = 512;
    let a = Matrix::<f64>::random(n, n, 1);
    let b = Matrix::<f64>::random(n, n, 2);

    // 1. Plain high-performance serial GEMM ("FT-GEMM: Ori").
    let mut c1 = Matrix::<f64>::zeros(n, n);
    let mut ctx = GemmContext::<f64>::new();
    gemm(
        &mut ctx,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c1.as_mut(),
    )
    .unwrap();
    println!(
        "serial GEMM    done: kernel = {:?}, C[0,0] = {:.6}",
        ctx.kernel.name,
        c1.get(0, 0)
    );

    // 2. Fault-tolerant serial GEMM ("FT-GEMM: FT"): same result, with
    //    checksum verification after every depth panel.
    let mut c2 = Matrix::<f64>::zeros(n, n);
    let report = ft_gemm(
        &FtConfig::default(),
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c2.as_mut(),
    )
    .unwrap();
    println!(
        "serial FT-GEMM done: {} verifications, {} errors detected, max diff vs plain = {:.2e}",
        report.verifications,
        report.detected,
        c1.max_abs_diff(&c2)
    );

    // 3. Parallel fault-tolerant GEMM on all cores.
    let par = ParGemmContext::<f64>::new();
    let mut c3 = Matrix::<f64>::zeros(n, n);
    let report = par_ft_gemm(
        &par,
        &FtConfig::default(),
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c3.as_mut(),
    )
    .unwrap();
    println!(
        "parallel FT-GEMM done on {} threads: {} verifications, max diff vs plain = {:.2e}",
        par.nthreads(),
        report.verifications,
        c1.max_abs_diff(&c3)
    );
}
