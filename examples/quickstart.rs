//! Quickstart: one builder, every way to multiply matrices with FT-GEMM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ftgemm::{Exec, FtPolicy, GemmOp, Matrix, ParGemmContext};

fn main() {
    let n = 512;
    let a = Matrix::<f64>::random(n, n, 1);
    let b = Matrix::<f64>::random(n, n, 2);

    // 1. Plain high-performance serial GEMM ("FT-GEMM: Ori"): the same
    //    builder with fault tolerance off.
    let mut c1 = Matrix::<f64>::zeros(n, n);
    GemmOp::new(&a, &b)
        .ft(FtPolicy::Off)
        .plan(Exec::Serial)
        .unwrap()
        .run(&mut c1.as_mut())
        .unwrap();
    println!("serial GEMM    done: C[0,0] = {:.6}", c1.get(0, 0));

    // 2. Fault-tolerant serial GEMM ("FT-GEMM: FT"): same result, with
    //    checksum verification after every depth panel. Holding the plan
    //    makes repeat calls allocation-free.
    let mut c2 = Matrix::<f64>::zeros(n, n);
    let mut plan = GemmOp::new(&a, &b)
        .ft(FtPolicy::DetectCorrect)
        .plan(Exec::Serial)
        .unwrap();
    let report = plan.run(&mut c2.as_mut()).unwrap();
    println!(
        "serial FT-GEMM done: {} verifications, {} errors detected, max diff vs plain = {:.2e}",
        report.verifications,
        report.detected,
        c1.max_abs_diff(&c2)
    );

    // 3. Parallel fault-tolerant GEMM on all cores: same builder, different
    //    Exec target. (`Exec::Auto` would route by problem size through the
    //    serving layer's flops cutoff instead.)
    let par = ParGemmContext::<f64>::new();
    let mut c3 = Matrix::<f64>::zeros(n, n);
    let report = GemmOp::new(&a, &b)
        .ft(FtPolicy::DetectCorrect)
        .plan(Exec::Parallel(&par))
        .unwrap()
        .run(&mut c3.as_mut())
        .unwrap();
    println!(
        "parallel FT-GEMM done on {} threads: {} verifications, max diff vs plain = {:.2e}",
        par.nthreads(),
        report.verifications,
        c1.max_abs_diff(&c3)
    );
}
