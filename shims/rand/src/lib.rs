//! Offline shim for the `rand` crate (0.8-era API subset).
//!
//! The build environment cannot reach a crates registry, so the workspace
//! vendors the parts of `rand` it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], the [`Rng`] extension methods `gen`, `gen_range`,
//! `gen_bool`, and [`distributions::Uniform`] over `f64`.
//!
//! The generator is SplitMix64 — statistically solid for test-input
//! generation and deterministic fault-site selection (the two uses in this
//! workspace), and trivially seedable from a `u64`. It is **not** the same
//! stream as upstream `StdRng` (ChaCha12); everything downstream only
//! relies on determinism-per-seed, not on specific values.

use std::ops::Range;

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift rejection-free mapping; bias is < 2^-64 of
                // the span, immaterial for test workloads.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::draw(rng) * (high - low)
    }
}

/// Core RNG interface plus the `gen*` convenience methods.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Distribution sampling (subset: `Uniform` over floats).
pub mod distributions {
    use super::Rng;

    /// A distribution that can be sampled with an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: super::SampleUniform + PartialOrd> Uniform<T> {
        /// Uniform over `[low, high)`; panics if the range is empty.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform { low, high }
        }
    }

    impl<T: super::SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.low, self.high)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..17);
            assert!(v < 17);
        }
    }

    #[test]
    fn gen_bool_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_f64_range_and_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new(-1.0f64, 1.0);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / n as f64).abs() < 0.02);
    }
}
