//! Offline shim for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the criterion API the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer instead of criterion's statistical
//! engine. Each benchmark is warmed up briefly, then timed for the group's
//! `measurement_time` budget; the mean time per iteration and the derived
//! throughput are printed to stdout, one line per benchmark.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Hierarchical benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter value.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a parameter value only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// (total elapsed, iterations) of the measurement phase.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the shim's timer is budget-driven
    /// rather than sample-count-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput basis for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            measured: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.measured);
        self
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: std::fmt::Display,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            measured: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.measured);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, measured: Option<(Duration, u64)>) {
        let Some((elapsed, iters)) = measured else {
            println!(
                "{}/{id}: no measurement (Bencher::iter never called)",
                self.name
            );
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.3} Gelem/s)", n as f64 / per_iter / 1e9)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.3} GiB/s)", n as f64 / per_iter / (1u64 << 30) as f64)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter over {iters} iters{rate}",
            self.name,
            per_iter * 1e3
        );
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark (its own single-entry group).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.bench_function("", f);
        g.finish();
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` passes harness flags (e.g. `--test`) to
            // harness-less bench binaries; run nothing in that mode so test
            // runs stay fast.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(100));
        let mut ran = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert!(ran > 0);
    }
}
