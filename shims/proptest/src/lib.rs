//! Offline shim for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of proptest this workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(..)]`), range and `select` strategies,
//! `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline test harness:
//!
//! * no shrinking — a failing case panics with the sampled inputs recorded
//!   in the assertion message / test output instead of a minimized case;
//! * sampling is plain uniform (no recursive/size-aware generation);
//! * `prop_assert!` panics immediately rather than returning `TestCaseError`.
//!
//! Determinism: each test function derives its RNG seed from its own name,
//! so runs are reproducible and test order does not matter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// RNG handed to strategies by the generated test loop.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG derived from the test's name.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name; fixed offset basis keeps seeds stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.rng.gen_range(0..n)
    }
}

/// A value generator (subset of upstream `Strategy`: sampling only, no
/// shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Samples one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample_value(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let r = rng.next_u64() as u128;
                self.start.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.next_f64() * 2.0 - 1.0;
        let exp = (rng.index(41) as i32 - 20) as f64;
        mag * 10f64.powf(exp)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Sampling combinators (subset: `select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            self.items[rng.index(self.items.len())].clone()
        }
    }

    /// Uniform choice from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select: empty choice list");
        Select { items }
    }
}

/// Everything the property tests import.
pub mod prelude {
    /// Upstream exposes the crate itself as `prop` in the prelude so tests
    /// can write `prop::sample::select(..)`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, sample, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Property assertion (panics on failure, unlike upstream's `Err` return).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The `proptest!` block: expands each `fn name(arg in strategy, ..) { .. }`
/// into a `#[test]`-style function running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample_value(&($strat), &mut __rng);)+
                // Record the case inputs so a panic in the body identifies
                // the failing sample (no shrinking in the shim).
                let __case_desc = format!(
                    concat!("case {} of ", stringify!($name), ": ",
                        $(stringify!($arg), " = {:?}, ",)+ ""),
                    __case, $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(e) = __result {
                    eprintln!("proptest failure: {__case_desc}");
                    ::std::panic::resume_unwind(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn range_in_bounds(x in 3usize..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        /// select and any compose.
        #[test]
        fn select_and_any(mag in prop::sample::select(vec![1.0, 2.0, 4.0]), flag in any::<bool>()) {
            prop_assert!([1.0, 2.0, 4.0].contains(&mag));
            let _ = flag;
        }
    }

    proptest! {
        /// Default config applies when no inner attribute is given.
        #[test]
        fn default_config_runs(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = TestRng::deterministic("foo");
        let mut b = TestRng::deterministic("foo");
        let mut c = TestRng::deterministic("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
