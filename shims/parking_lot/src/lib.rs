//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *subset* of the `parking_lot` API it actually uses
//! (`Mutex`, `MutexGuard`, `Condvar`, `RwLock`) as thin wrappers over
//! `std::sync`. Semantics match parking_lot where the workspace relies on
//! them:
//!
//! * locking never returns a poison error — a poisoned std lock is
//!   recovered and the guard handed out anyway (parking_lot has no
//!   poisoning),
//! * `Condvar::wait` takes `&mut MutexGuard` instead of consuming it.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (no poisoning, like `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            ),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily move the
/// std guard out (std's condvar consumes and returns guards); it is `Some`
/// at all times outside that window.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified; the guard is released while waiting and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.guard.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.guard = Some(reacquired);
    }

    /// Blocks until notified or until `timeout` elapses; the guard is
    /// released while waiting and re-acquired before returning. Mirrors
    /// `parking_lot::Condvar::wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.guard.take().expect("guard present");
        let (reacquired, timed_out) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r.timed_out())
            }
        };
        guard.guard = Some(reacquired);
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Outcome of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed (a
    /// notification may still have raced in — re-check the predicate).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        h.join().unwrap();
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
        drop(g);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            *done = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait_for(&mut done, std::time::Duration::from_millis(50));
        }
        h.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
