//! Property tests for the unified `GemmOp`/`GemmPlan` builder API: for
//! random shapes, alpha/beta edge cases, and every `Exec` variant, the
//! builder surface must (a) bit-match the legacy entry points it subsumes
//! (identical compute order ⇒ identical bits) and (b) agree with the naive
//! reference GEMM up to roundoff.

use ftgemm::core::reference::naive_gemm;
use ftgemm::{Exec, FtConfig, FtPolicy, GemmContext, GemmOp, GemmRequest, Matrix, ParGemmContext};
use proptest::prelude::*;
use std::sync::OnceLock;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..40
}

/// Alpha/beta sweep including the special-cased values (`alpha == 0` skips
/// compute entirely; `beta == 0` fills, `beta == 1` skips scaling).
fn edge_scalar() -> impl Strategy<Value = f64> {
    sample::select(vec![0.0, 1.0, -1.0, 0.5, -2.0])
}

/// One shared pool for every parallel case (pools are expensive; the API
/// shares them by design).
fn par_ctx() -> &'static ParGemmContext<f64> {
    static CTX: OnceLock<ParGemmContext<f64>> = OnceLock::new();
    CTX.get_or_init(|| ParGemmContext::with_threads(3))
}

fn problem(m: usize, n: usize, k: usize, seed: u64) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    (
        Matrix::random(m, k, seed),
        Matrix::random(k, n, seed + 1),
        Matrix::random(m, n, seed + 2),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial plans bit-match the legacy serial entry point and track the
    /// oracle, across shapes and alpha/beta edge cases.
    #[test]
    fn serial_plan_bitmatches_legacy_ft_gemm(
        m in small_dim(), n in small_dim(), k in small_dim(),
        alpha in edge_scalar(), beta in edge_scalar(), seed in 0u64..1000
    ) {
        let (a, b, c0) = problem(m, n, k, seed);
        let cfg = FtConfig::default();

        let mut c_plan = c0.clone();
        let mut plan = GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .ft_config(cfg.clone())
            .plan(Exec::Serial)
            .unwrap();
        plan.run(&mut c_plan.as_mut()).unwrap();

        let mut c_legacy = c0.clone();
        ftgemm::abft::ft_gemm(&cfg, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_legacy.as_mut())
            .unwrap();
        prop_assert_eq!(c_plan.as_slice(), c_legacy.as_slice());

        let mut c_ref = c0.clone();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        prop_assert!(c_plan.rel_max_diff(&c_ref) < 1e-10);
    }

    /// Parallel plans bit-match the legacy parallel entry point on the same
    /// pool and track the oracle.
    #[test]
    fn parallel_plan_bitmatches_legacy_par_ft_gemm(
        m in small_dim(), n in small_dim(), k in small_dim(),
        alpha in edge_scalar(), beta in edge_scalar(), seed in 0u64..1000
    ) {
        let (a, b, c0) = problem(m, n, k, seed);
        let cfg = FtConfig::default();
        let ctx = par_ctx();

        let mut c_plan = c0.clone();
        let mut plan = GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .ft_config(cfg.clone())
            .plan(Exec::Parallel(ctx))
            .unwrap();
        plan.run(&mut c_plan.as_mut()).unwrap();

        let mut c_legacy = c0.clone();
        ftgemm::parallel::par_ft_gemm(
            ctx, &cfg, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_legacy.as_mut(),
        )
        .unwrap();
        prop_assert_eq!(c_plan.as_slice(), c_legacy.as_slice());

        let mut c_ref = c0.clone();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        prop_assert!(c_plan.rel_max_diff(&c_ref) < 1e-10);
    }

    /// `Exec::Auto` on small problems must take the serial path and produce
    /// the exact serial bits.
    #[test]
    fn auto_routes_small_problems_serial(
        m in small_dim(), n in small_dim(), k in small_dim(),
        alpha in edge_scalar(), beta in edge_scalar(), seed in 0u64..1000
    ) {
        let (a, b, c0) = problem(m, n, k, seed);

        let mut plan = GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .plan(Exec::Auto)
            .unwrap();
        prop_assert!(!plan.is_parallel(), "small problem must plan serial");

        let mut c_auto = c0.clone();
        plan.run(&mut c_auto.as_mut()).unwrap();

        let mut c_serial = c0.clone();
        GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .plan(Exec::Serial)
            .unwrap()
            .run(&mut c_serial.as_mut())
            .unwrap();
        prop_assert_eq!(c_auto.as_slice(), c_serial.as_slice());
    }

    /// Unprotected plans (`FtPolicy::Off`) bit-match the plain drivers on
    /// every `Exec` variant.
    #[test]
    fn off_policy_bitmatches_plain_gemm(
        m in small_dim(), n in small_dim(), k in small_dim(),
        alpha in edge_scalar(), beta in edge_scalar(), seed in 0u64..1000
    ) {
        let (a, b, c0) = problem(m, n, k, seed);

        let mut c_plan = c0.clone();
        GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .ft(FtPolicy::Off)
            .plan(Exec::Serial)
            .unwrap()
            .run(&mut c_plan.as_mut())
            .unwrap();
        let mut c_legacy = c0.clone();
        let mut ctx = GemmContext::<f64>::new();
        ftgemm::gemm(&mut ctx, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_legacy.as_mut())
            .unwrap();
        prop_assert_eq!(c_plan.as_slice(), c_legacy.as_slice());

        let mut c_par_plan = c0.clone();
        GemmOp::new(&a, &b)
            .alpha(alpha)
            .beta(beta)
            .ft(FtPolicy::Off)
            .plan(Exec::Parallel(par_ctx()))
            .unwrap()
            .run(&mut c_par_plan.as_mut())
            .unwrap();
        let mut c_par_legacy = c0.clone();
        ftgemm::par_gemm(
            par_ctx(), alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_par_legacy.as_mut(),
        )
        .unwrap();
        prop_assert_eq!(c_par_plan.as_slice(), c_par_legacy.as_slice());
    }

    /// Plan reuse: running one plan many times over changing same-shape
    /// operands (`run_with`) matches per-call legacy results exactly.
    #[test]
    fn plan_reuse_over_fresh_operands(
        m in small_dim(), n in small_dim(), k in small_dim(), seed in 0u64..1000
    ) {
        let (a, b, _) = problem(m, n, k, seed);
        let cfg = FtConfig::default();
        let mut plan = GemmOp::new(&a, &b)
            .ft_config(cfg.clone())
            .plan(Exec::Serial)
            .unwrap();
        for round in 0..3u64 {
            let (a2, b2, _) = problem(m, n, k, seed + 100 * (round + 1));
            let mut c_plan = Matrix::<f64>::zeros(m, n);
            plan.run_with(&a2.as_ref(), &b2.as_ref(), &mut c_plan.as_mut()).unwrap();
            let mut c_legacy = Matrix::<f64>::zeros(m, n);
            ftgemm::abft::ft_gemm(
                &cfg, 1.0, &a2.as_ref(), &b2.as_ref(), 0.0, &mut c_legacy.as_mut(),
            )
            .unwrap();
            prop_assert_eq!(c_plan.as_slice(), c_legacy.as_slice());
        }
    }

    /// The request builder and the op->request bridge agree with the plan
    /// result (the serving layer and the one-shot API are one surface).
    #[test]
    fn request_builder_matches_plan(
        m in 1usize..24, n in 1usize..24, k in 1usize..24, seed in 0u64..500
    ) {
        let (a, b, _) = problem(m, n, k, seed);
        let mut c_plan = Matrix::<f64>::zeros(m, n);
        GemmOp::new(&a, &b)
            .plan(Exec::Serial)
            .unwrap()
            .run(&mut c_plan.as_mut())
            .unwrap();

        let req = GemmOp::new(&a, &b).to_request().build().unwrap();
        prop_assert_eq!(req.validate().unwrap(), (m, n, k));
        let req2 = GemmRequest::builder(a.clone(), b.clone()).build().unwrap();
        prop_assert_eq!(req.flops(), req2.flops());

        let mut c_ref = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        prop_assert!(c_plan.rel_max_diff(&c_ref) < 1e-10);
    }
}

#[test]
fn auto_routes_large_problems_parallel() {
    // Just over the routing cutoff: 2*m*n*k > 2*192^3.
    let (m, n, k) = (208, 200, 200);
    let (a, b, c0) = problem(m, n, k, 7);
    let mut plan = GemmOp::new(&a, &b).plan(Exec::Auto).unwrap();
    assert!(plan.is_parallel(), "large problem must plan parallel");
    assert!(plan.nthreads() >= 1);

    let mut c = c0.clone();
    plan.run(&mut c.as_mut()).unwrap();
    let mut c_ref = c0.clone();
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
    // beta defaults to 0 in the op; recompute the oracle accordingly.
    let mut c_ref0 = Matrix::<f64>::zeros(m, n);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref0.as_mut());
    assert!(c.rel_max_diff(&c_ref0) < 1e-10);
    let _ = c_ref;
}

#[test]
fn run_rejects_wrong_output_shape() {
    let a = Matrix::<f64>::zeros(8, 6);
    let b = Matrix::<f64>::zeros(6, 10);
    let mut plan = GemmOp::new(&a, &b).plan(Exec::Serial).unwrap();
    let mut c_bad = Matrix::<f64>::zeros(8, 9);
    assert!(plan.run(&mut c_bad.as_mut()).is_err());
    let mut c_ok = Matrix::<f64>::zeros(8, 10);
    assert!(plan.run(&mut c_ok.as_mut()).is_ok());
}

#[test]
fn run_with_rejects_wrong_operand_shape() {
    let a = Matrix::<f64>::random(8, 6, 1);
    let b = Matrix::<f64>::random(6, 10, 2);
    let mut plan = GemmOp::new(&a, &b).plan(Exec::Serial).unwrap();
    let a_bad = Matrix::<f64>::random(9, 6, 3);
    let mut c = Matrix::<f64>::zeros(8, 10);
    assert!(plan
        .run_with(&a_bad.as_ref(), &b.as_ref(), &mut c.as_mut())
        .is_err());
}

#[test]
fn auto_at_routes_by_the_supplied_cutoff() {
    // The same op plans serial or parallel depending on the caller-supplied
    // cutoff — the hook for seeding one-shots with a served workload's
    // learned crossover (`GemmService::current_cutoff()`).
    let a = Matrix::<f64>::random(64, 64, 1);
    let b = Matrix::<f64>::random(64, 64, 2);
    let flops = 2u64 * 64 * 64 * 64;

    let plan = GemmOp::new(&a, &b).plan(Exec::AutoAt(flops)).unwrap();
    assert!(!plan.is_parallel(), "at the cutoff must stay serial");
    let mut plan = GemmOp::new(&a, &b).plan(Exec::AutoAt(flops - 1)).unwrap();
    assert!(plan.is_parallel(), "above the cutoff must plan parallel");

    // And the routed plan still computes the right thing.
    let mut c = Matrix::<f64>::zeros(64, 64);
    plan.run(&mut c.as_mut()).unwrap();
    let mut c_ref = Matrix::<f64>::zeros(64, 64);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
    assert!(c.rel_max_diff(&c_ref) < 1e-10);
}
