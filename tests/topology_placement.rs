//! Placement invariants of the NUMA-sharded service, pinned under
//! `Topology::synthetic` so every decision is deterministic: requests run
//! on their affinity node unless explicitly stolen, balanced load steals
//! nothing, imbalanced load steals only off the backlogged node, no
//! request is ever lost or double-executed across shard groups, and the
//! placement policy never changes numerical results.

use ftgemm::core::reference::naive_gemm;
use ftgemm::serve::{
    completion_channel, FtPolicy, GemmRequest, GemmService, PlacementPolicy, RoutingPolicy,
    ServiceConfig, Topology,
};
use ftgemm::Matrix;
use std::collections::HashSet;
use std::sync::Arc;

fn sharded_service(
    nodes: usize,
    cores_per_node: usize,
    placement: PlacementPolicy,
) -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads: 0, // one worker per synthetic core
        max_batch: 8,
        // Pinned routing: placement must be the only variable under test.
        routing: RoutingPolicy::Fixed(2 * 96 * 96 * 96),
        topology: Some(Topology::synthetic(nodes, cores_per_node)),
        placement,
        ..ServiceConfig::default()
    })
}

/// Sequential round-robin traffic (each request completes before the next
/// is submitted — the queue is quiescent at every sweep, which is what
/// "balanced load" means to a backlog-driven stealer): every request runs
/// on exactly its affinity node, affinities cycle deterministically, and
/// steal counts stay zero everywhere.
#[test]
fn balanced_load_dispatches_on_affinity_and_never_steals() {
    let service = sharded_service(3, 1, PlacementPolicy::RoundRobin);
    for i in 0..18u64 {
        let a = Matrix::<f64>::random(24, 24, i);
        let b = Matrix::<f64>::random(24, 24, i + 500);
        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        // RoundRobin placement is a pure counter: submission i lands on
        // node i % 3, reproducibly.
        assert_eq!(resp.affinity_node, (i % 3) as usize, "submission {i}");
        assert_eq!(
            resp.executed_node, resp.affinity_node,
            "submission {i} left its affinity node without being stolen"
        );
        assert!(!resp.stolen(), "submission {i}");
    }
    let snap = service.stats();
    assert_eq!(snap.per_node.len(), 3);
    for node in &snap.per_node {
        assert_eq!(node.stolen, 0, "balanced load must not steal: {node:?}");
        assert_eq!(node.dispatched, 6, "round-robin spread: {node:?}");
        assert_eq!(node.queue_depth, 0);
    }
    assert_eq!(snap.completed, 18);
}

/// Explicit `home` hints pin placement under `OperandHome`, and identical
/// submission sequences give identical affinities on a second service —
/// the reproducibility contract of the decision path (no clock, no RNG).
#[test]
fn placement_decisions_are_reproducible() {
    let homes = [2usize, 0, 1, 1, 3, 2, 0, 3];
    let run_sequence = |service: &GemmService<f64>| -> Vec<usize> {
        homes
            .iter()
            .enumerate()
            .map(|(i, &home)| {
                let a = Matrix::<f64>::random(16, 16, i as u64);
                let b = Matrix::<f64>::random(16, 16, i as u64 + 100);
                service
                    .run(GemmRequest::new(a, b).with_home(home))
                    .unwrap()
                    .affinity_node
            })
            .collect()
    };
    let first = run_sequence(&sharded_service(4, 1, PlacementPolicy::OperandHome));
    let second = run_sequence(&sharded_service(4, 1, PlacementPolicy::OperandHome));
    assert_eq!(first, homes.to_vec(), "explicit homes must win");
    assert_eq!(first, second, "identical sequences, identical placement");

    // LeastLoaded over a quiescent queue is equally deterministic: all
    // depths zero, ties break to node 0 every time.
    let service = sharded_service(4, 1, PlacementPolicy::LeastLoaded);
    for i in 0..6u64 {
        let a = Matrix::<f64>::random(16, 16, i);
        let b = Matrix::<f64>::random(16, 16, i + 100);
        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert_eq!(resp.affinity_node, 0, "empty queues tie-break to node 0");
    }
}

/// A burst pinned entirely onto node 0's shard group forces the other
/// nodes dry while node 0 backlogs: stealing kicks in, steals only ever
/// take work off the backlogged node, and every response still reports a
/// coherent (affinity, executed) pair.
#[test]
fn dry_nodes_steal_only_from_the_backlogged_group() {
    let service = sharded_service(3, 1, PlacementPolicy::OperandHome);
    let (sink, mut completions) = completion_channel::<f64>();
    const N: usize = 120;
    for i in 0..N as u64 {
        let a = Matrix::<f64>::random(48, 48, i);
        let b = Matrix::<f64>::random(48, 48, i + 9_000);
        // Every request homes on node 0: nodes 1 and 2 can only ever run
        // stolen work.
        service
            .submit_streamed(GemmRequest::new(a, b).with_home(0), &sink)
            .unwrap();
    }
    let mut drained = 0;
    while let Some(c) = completions.recv() {
        let resp = c.result.unwrap();
        assert_eq!(resp.affinity_node, 0);
        if resp.executed_node != 0 {
            assert!(resp.stolen());
        }
        drained += 1;
    }
    assert_eq!(drained, N);

    let snap = service.stats();
    assert_eq!(snap.completed, N as u64);
    assert_eq!(snap.per_node[0].stolen, 0, "node 0 owns the backlog");
    let stolen_total: u64 = snap.per_node.iter().map(|n| n.stolen).sum();
    assert!(
        stolen_total > 0,
        "a 120-deep single-node backlog must trigger stealing: {:?}",
        snap.per_node
    );
    let dispatched_total: u64 = snap.per_node.iter().map(|n| n.dispatched).sum();
    assert_eq!(dispatched_total, N as u64, "dispatch accounting");
}

/// Hammer: four frontend threads blast streamed requests over every
/// placement path at once; across all shard groups, no request is lost
/// and none is delivered twice.
#[test]
fn hammer_no_request_lost_or_double_executed() {
    let service = Arc::new(sharded_service(2, 2, PlacementPolicy::OperandHome));
    let (sink, mut completions) = completion_channel::<f64>();

    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 50;
    let submitters: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            let sink = sink.clone();
            std::thread::spawn(move || {
                (0..PER_THREAD)
                    .map(|i| {
                        let seed = t * 10_000 + i;
                        let a = Matrix::<f64>::random(16, 16, seed);
                        let b = Matrix::<f64>::random(16, 16, seed + 1);
                        // Mix of derived and explicit homes keeps both
                        // shard groups hot.
                        let req = if i % 3 == 0 {
                            GemmRequest::new(a, b).with_home((i % 2) as usize)
                        } else {
                            GemmRequest::new(a, b)
                        };
                        service.submit_streamed(req, &sink).unwrap()
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    let mut expected_ids = Vec::new();
    for s in submitters {
        expected_ids.extend(s.join().unwrap());
    }
    drop(sink);

    let mut seen = HashSet::new();
    while let Some(c) = completions.recv() {
        c.result.unwrap();
        assert!(seen.insert(c.id), "request {} delivered twice", c.id);
    }
    let expected: HashSet<u64> = expected_ids.iter().copied().collect();
    assert_eq!(expected.len(), (THREADS * PER_THREAD) as usize);
    assert_eq!(seen, expected, "every submitted request completes once");

    let snap = service.stats();
    assert_eq!(snap.submitted, THREADS * PER_THREAD);
    assert_eq!(snap.completed, THREADS * PER_THREAD);
    assert_eq!(snap.failed, 0);
    let dispatched_total: u64 = snap.per_node.iter().map(|n| n.dispatched).sum();
    assert_eq!(
        dispatched_total,
        THREADS * PER_THREAD,
        "each request dispatched exactly once: {:?}",
        snap.per_node
    );
}

/// The acceptance-criteria bit-match: the same problems through every
/// `PlacementPolicy` at node counts 1, 2, and 4 produce bit-identical
/// outputs — where a request *runs* must never change what it computes.
/// (Both execution paths preserve per-element accumulation order, so this
/// is exact equality on the bits, not a tolerance check.)
#[test]
fn results_bit_identical_across_policies_and_node_counts() {
    let shapes = [(40usize, 32usize, 24usize), (96, 80, 64), (130, 110, 70)];
    let policies = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::OperandHome,
        PlacementPolicy::LeastLoaded,
    ];

    // Reference bits per problem, from a 1-node round-robin service.
    let reference: Vec<Vec<u64>> = {
        let service = sharded_service(1, 1, PlacementPolicy::RoundRobin);
        shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| {
                let resp = service.run(problem(i, m, n, k)).unwrap();
                // Sanity: the reference itself is numerically right.
                let (a, b, c0, alpha, beta) = operands(i, m, n, k);
                let mut expected = c0;
                naive_gemm(
                    alpha,
                    &a.as_ref(),
                    &b.as_ref(),
                    beta,
                    &mut expected.as_mut(),
                );
                assert!(resp.c.rel_max_diff(&expected) < 1e-10);
                resp.c.as_slice().iter().map(|v| v.to_bits()).collect()
            })
            .collect()
    };

    for nodes in [1usize, 2, 4] {
        for policy in policies {
            let service = sharded_service(nodes, 1, policy);
            for (i, &(m, n, k)) in shapes.iter().enumerate() {
                let resp = service.run(problem(i, m, n, k)).unwrap();
                let bits: Vec<u64> = resp.c.as_slice().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits, reference[i],
                    "problem {i} differs at nodes={nodes} policy={policy:?}"
                );
            }
        }
    }
}

fn operands(
    i: usize,
    m: usize,
    n: usize,
    k: usize,
) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>, f64, f64) {
    let seed = 77_000 + i as u64 * 10;
    (
        Matrix::<f64>::random(m, k, seed),
        Matrix::<f64>::random(k, n, seed + 1),
        Matrix::<f64>::random(m, n, seed + 2),
        1.25,
        0.5,
    )
}

fn problem(i: usize, m: usize, n: usize, k: usize) -> GemmRequest<f64> {
    let (a, b, c0, alpha, beta) = operands(i, m, n, k);
    let policy = if i % 2 == 0 {
        FtPolicy::DetectCorrect
    } else {
        FtPolicy::Off
    };
    GemmRequest::new(a, b)
        .with_alpha(alpha)
        .with_c(beta, c0)
        .with_policy(policy)
}
