//! End-to-end observability: a service with `obs_addr` set serves
//! `/metrics`, `/healthz`, and `/trace` over a real TCP socket, the
//! exposition body is well-formed Prometheus text format, and — once the
//! service is quiesced — every service-scoped counter in the scrape equals
//! the in-process [`StatsSnapshot`] the service reports.

use ftgemm::serve::{
    FtPolicy, GemmRequest, GemmService, PlacementPolicy, RoutingPolicy, ServiceConfig, Topology,
};
use ftgemm::{FaultInjector, Matrix};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn obs_service() -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads: 4,
        max_batch: 4,
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::RoundRobin,
        // Pinned cutoff so the small/large mix deterministically exercises
        // both routing paths.
        routing: RoutingPolicy::Fixed(2 * 96 * 96 * 96),
        obs_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::default()
    })
}

/// Blocking HTTP/1.0 GET against the obs endpoint; returns (status, body).
fn http_get(addr: SocketAddr, path: &str) -> (u32, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: ftgemm\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    let status_line = head.lines().next().unwrap();
    let status: u32 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    assert!(
        head.contains("Content-Length:"),
        "missing Content-Length in {head:?}"
    );
    (status, body.to_string())
}

/// Parses an exposition body into `full-sample-name -> value`, validating
/// the format line by line: every sample belongs to a family announced by
/// exactly one `# TYPE` line with a known kind, `# HELP` text is present,
/// and every value parses as f64.
fn parse_exposition(body: &str) -> HashMap<String, f64> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashMap<String, ()> = HashMap::new();
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest.split_once(' ').expect("TYPE line");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown kind {kind:?} for {family}"
            );
            assert!(
                types.insert(family.to_string(), kind.to_string()).is_none(),
                "duplicate # TYPE for {family}"
            );
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').expect("HELP line");
            assert!(!help.is_empty(), "empty help for {family}");
            helps.insert(family.to_string(), ());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line {line:?}");
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let bare = name_and_labels.split('{').next().unwrap();
        // Histogram samples hang off their family's base name.
        let family_known = types.keys().any(|f| {
            bare == f
                || bare == format!("{f}_bucket")
                || bare == format!("{f}_sum")
                || bare == format!("{f}_count")
        });
        assert!(family_known, "sample {bare} has no # TYPE header");
        assert!(
            samples.insert(name_and_labels.to_string(), value).is_none(),
            "duplicate sample {name_and_labels}"
        );
    }
    for family in types.keys() {
        assert!(helps.contains_key(family), "family {family} has no # HELP");
    }
    samples
}

/// The flagship end-to-end check: mixed traffic (both routing paths, some
/// requests with fault injectors) through a 2x2 synthetic-topology service,
/// then a real TCP scrape whose counters must equal `service.stats()`.
#[test]
fn scraped_counters_match_in_process_snapshot() {
    let service = obs_service();
    let addr = service.obs_addr().expect("endpoint bound");
    assert_ne!(addr.port(), 0, "port 0 should resolve to the bound port");

    let mut handles = Vec::new();
    for i in 0..24u64 {
        // Every 6th request is above the pinned cutoff (matrix-parallel);
        // every 3rd carries an injector so the ft counters are nonzero.
        let (m, n, k) = if i % 6 == 0 {
            (160, 128, 96)
        } else {
            (48, 40, 32)
        };
        let a = Matrix::<f64>::random(m, k, 5_000 + i);
        let b = Matrix::<f64>::random(k, n, 6_000 + i);
        let mut req = GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect);
        if i % 3 == 0 {
            req = req.with_injector(FaultInjector::counted(700 + i, 1));
        }
        handles.push(service.submit(req).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }

    // Quiesced: all requests completed, nothing in flight.
    let snap = service.stats();
    assert_eq!(snap.completed, 24);

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    let samples = parse_exposition(&body);

    // Service-scoped counters in the scrape equal the in-process snapshot.
    let expect = [
        ("ftgemm_requests_submitted_total", snap.submitted),
        ("ftgemm_requests_submitted_sync_total", snap.submitted_sync),
        ("ftgemm_requests_completed_total", snap.completed),
        ("ftgemm_requests_failed_total", snap.failed),
        ("ftgemm_batches_total", snap.batches),
        ("ftgemm_batched_requests_total", snap.batched_requests),
        ("ftgemm_direct_large_total", snap.direct_large),
        ("ftgemm_ft_detected_total", snap.detected),
        ("ftgemm_ft_corrected_total", snap.corrected),
        ("ftgemm_ft_injected_total", snap.injected),
        ("ftgemm_steal_wakeups_total", snap.steal_wakeups),
        (
            "ftgemm_routing_batched_observations_total",
            snap.routing_batched_observations,
        ),
        (
            "ftgemm_routing_parallel_observations_total",
            snap.routing_parallel_observations,
        ),
    ];
    for (family, value) in expect {
        assert_eq!(
            samples.get(family).copied(),
            Some(value as f64),
            "{family}: scrape {:?} vs snapshot {value}",
            samples.get(family)
        );
    }
    assert!(snap.injected > 0, "injectors never fired: {snap:?}");
    assert_eq!(samples["ftgemm_ft_corrected_total"], snap.injected as f64);

    // Per-node families carry one labeled sample per topology node, and the
    // dispatched counters sum to the total that executed.
    let mut dispatched_sum = 0.0;
    for node in 0..2 {
        let key = format!("ftgemm_node_dispatched_total{{node=\"{node}\"}}");
        dispatched_sum += samples[&key];
        let threads = format!("ftgemm_node_threads{{node=\"{node}\"}}");
        assert_eq!(samples[&threads], 2.0, "2 cores per synthetic node");
    }
    assert_eq!(dispatched_sum, 24.0);

    // The turnaround histogram saw every completion, and its bucket series
    // is present and cumulative.
    assert_eq!(samples["ftgemm_request_turnaround_seconds_count"], 24.0);
    assert!(samples["ftgemm_request_turnaround_seconds_sum"] > 0.0);
    let inf = samples["ftgemm_request_turnaround_seconds_bucket{le=\"+Inf\"}"];
    assert_eq!(inf, 24.0);

    // Process-wide families rode along on the same scrape.
    assert!(samples["ftgemm_abft_verifications_total"] > 0.0);
    assert!(samples["ftgemm_pool_regions_total"] > 0.0);
    assert!(samples["ftgemm_obs_scrapes_total"] >= 1.0);

    // The scrape body is exactly what the in-process renderer produces for
    // the same quiesced state, minus time-derived gauges which move between
    // the two renders.
    let rendered = service.render_metrics();
    for family in ["ftgemm_requests_submitted_total", "ftgemm_queue_depth"] {
        assert!(rendered.contains(family), "render_metrics missing {family}");
    }
}

/// `/healthz` answers on the same listener, `/trace` dumps lifecycle
/// records containing the expected event vocabulary, and unknown paths 404.
#[test]
fn healthz_and_trace_serve_alongside_metrics() {
    let service = obs_service();
    let addr = service.obs_addr().unwrap();

    for i in 0..8u64 {
        let a = Matrix::<f64>::random(32, 32, i);
        let b = Matrix::<f64>::random(32, 32, i + 100);
        service
            .submit(GemmRequest::new(a, b))
            .unwrap()
            .wait()
            .unwrap();
    }

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert_eq!(body.trim(), "ok");

    let (status, trace) = http_get(addr, "/trace");
    assert_eq!(status, 200);
    assert!(trace.starts_with("# tracelog"), "{trace:?}");
    for event in ["admitted", "queued", "dispatched", "computed", "completed"] {
        assert!(
            trace.contains(event),
            "missing {event:?} in trace:\n{trace}"
        );
    }
    // Batched-path requests record the path they were dispatched on.
    assert!(trace.contains("batched"), "{trace}");
    // The in-process accessor serves the same records.
    assert!(service.render_trace(16).contains("completed"));

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
}

/// Shutdown tears the endpoint down: the port stops accepting, and a
/// service without `obs_addr` never binds anything (`obs_addr()` is None)
/// while still rendering metrics in-process.
#[test]
fn endpoint_lifecycle_follows_the_service() {
    let service = obs_service();
    let addr = service.obs_addr().unwrap();
    let (status, _) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    service.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "endpoint still accepting after shutdown"
    );

    let plain = GemmService::<f64>::new(ServiceConfig {
        threads: 2,
        max_batch: 2,
        ..ServiceConfig::default()
    });
    assert!(plain.obs_addr().is_none());
    let body = plain.render_metrics();
    let samples = parse_exposition(&body);
    assert_eq!(samples["ftgemm_requests_submitted_total"], 0.0);
    // Obs-disabled services omit the service-scoped histogram / trace
    // families but still render every snapshot family.
    assert!(!body.contains("ftgemm_request_turnaround_seconds_bucket"));
    assert!(!body.contains("ftgemm_trace_dropped_total"));
}
