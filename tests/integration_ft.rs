//! End-to-end fault-tolerance integration: injection campaigns across
//! drivers, thread counts, error models, and seeds, always validating the
//! corrected output against a clean reference.

use ftgemm::abft::{ft_gemm, ft_gemm_with_ctx, FtConfig, FtGemmContext};
use ftgemm::core::reference::naive_gemm;
use ftgemm::core::{BlockingParams, GemmContext, Matrix};
use ftgemm::faults::{Campaign, CampaignOutcome, ErrorModel, FaultInjector, Rate};
use ftgemm::parallel::{par_ft_gemm, ParGemmContext};
use std::time::Duration;

fn clean_reference(m: usize, n: usize, k: usize) -> (Matrix<f64>, Matrix<f64>, Matrix<f64>) {
    let a = Matrix::<f64>::random(m, k, 42);
    let b = Matrix::<f64>::random(k, n, 43);
    let mut c = Matrix::<f64>::zeros(m, n);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut());
    (a, b, c)
}

/// A context with tiny blocks so even small problems have many injection
/// sites and verification intervals.
fn small_block_ctx() -> FtGemmContext<f64> {
    let mut core = GemmContext::<f64>::new();
    let kern = core.kernel;
    core.set_params(BlockingParams {
        mr: kern.mr,
        nr: kern.nr,
        mc: kern.mr * 2,
        nc: kern.nr * 4,
        kc: 16,
    })
    .unwrap();
    FtGemmContext::from_core(core)
}

#[test]
fn serial_campaign_all_models_many_seeds() {
    let (m, n, k) = (128, 120, 96);
    let (a, b, truth) = clean_reference(m, n, k);
    for model in [
        ErrorModel::BitFlip { bit: None },
        ErrorModel::Additive { magnitude: 1e6 },
        ErrorModel::Scale { factor: -3.0 },
    ] {
        for seed in 0..8u64 {
            let inj = FaultInjector::new(seed, model, Rate::Count(6));
            let cfg = FtConfig::with_injector(inj);
            let mut ctx = small_block_ctx();
            let mut c = Matrix::<f64>::zeros(m, n);
            let rep = ft_gemm_with_ctx(
                &mut ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                0.0,
                &mut c.as_mut(),
            )
            .unwrap_or_else(|e| panic!("{model:?} seed {seed}: {e}"));
            assert!(rep.injected > 0, "{model:?} seed {seed} injected nothing");
            assert!(
                truth.rel_max_diff(&c) < 1e-9,
                "{model:?} seed {seed}: diff {} rep {rep:?}",
                truth.rel_max_diff(&c)
            );
        }
    }
}

#[test]
fn parallel_campaign_many_seeds() {
    let (m, n, k) = (160, 140, 128);
    let (a, b, truth) = clean_reference(m, n, k);
    for threads in [2, 4, 8] {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        for seed in 0..6u64 {
            let inj = FaultInjector::new(
                seed.wrapping_mul(7919),
                ErrorModel::Additive { magnitude: 2e7 },
                Rate::Count(2),
            );
            let cfg = FtConfig::with_injector(inj);
            let mut c = Matrix::<f64>::zeros(m, n);
            let rep = par_ft_gemm(
                &ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                0.0,
                &mut c.as_mut(),
            )
            .unwrap_or_else(|e| panic!("t={threads} seed {seed}: {e}"));
            assert!(
                truth.rel_max_diff(&c) < 1e-9,
                "t={threads} seed {seed}: diff {} rep {rep:?}",
                truth.rel_max_diff(&c)
            );
            assert_eq!(rep.corrected, rep.injected, "t={threads} seed {seed}");
        }
    }
}

#[test]
fn ft_without_errors_is_bit_identical_to_plain() {
    // The fused FT path performs the identical arithmetic on C; clean runs
    // must match the plain driver bit for bit.
    let (m, n, k) = (144, 100, 130);
    let a = Matrix::<f64>::random(m, k, 9);
    let b = Matrix::<f64>::random(k, n, 10);
    let mut c_plain = Matrix::<f64>::random(m, n, 11);
    let mut c_ft = c_plain.clone();

    let mut ctx = GemmContext::<f64>::new();
    ftgemm::gemm(
        &mut ctx,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        1.0,
        &mut c_plain.as_mut(),
    )
    .unwrap();
    ft_gemm(
        &FtConfig::default(),
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        1.0,
        &mut c_ft.as_mut(),
    )
    .unwrap();

    assert_eq!(
        c_plain.as_slice(),
        c_ft.as_slice(),
        "FT altered the numerics"
    );
}

#[test]
fn wall_clock_rate_campaign_validates() {
    // The paper's reliability claim in miniature: sustained injection at a
    // wall-clock rate, every iteration validated.
    let (m, n, k) = (96, 96, 64);
    let (a, b, truth) = clean_reference(m, n, k);
    let inj = FaultInjector::new(
        7,
        ErrorModel::Additive { magnitude: 1e6 },
        Rate::PerSecond(500.0),
    );
    let campaign = Campaign::new(Duration::from_millis(400), inj);
    let report = campaign.run(|inj| {
        let cfg = FtConfig::with_injector(inj.clone());
        let mut ctx = small_block_ctx();
        let mut c = Matrix::<f64>::zeros(m, n);
        match ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        ) {
            Ok(_) => {
                if truth.rel_max_diff(&c) < 1e-9 {
                    CampaignOutcome::Correct
                } else {
                    CampaignOutcome::Mismatch
                }
            }
            Err(_) => CampaignOutcome::Skipped, // flagged, not silent
        }
    });
    assert!(report.runs > 0);
    assert_eq!(report.mismatches, 0, "{report:?}");
    assert!(report.injected > 0, "{report:?}");
}

#[test]
fn unrecoverable_patterns_are_flagged_not_silent() {
    // Force a colliding pattern: corrupt C directly in a shape row+col
    // checksums cannot resolve, via a custom "three corners" injection.
    // We emulate by injecting many errors into a single tiny verification
    // interval until an unrecoverable pattern appears for some seed; the
    // driver must return Err, never a silently wrong Ok.
    let (m, n, k) = (64, 64, 16);
    let (a, b, truth) = clean_reference(m, n, k);
    let mut saw_unrecoverable = false;
    for seed in 0..40u64 {
        let inj = FaultInjector::new(
            seed,
            ErrorModel::Additive { magnitude: 1e6 },
            Rate::PerSite(0.9),
        );
        let cfg = FtConfig::with_injector(inj);
        let mut ctx = small_block_ctx();
        let mut c = Matrix::<f64>::zeros(m, n);
        match ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        ) {
            Ok(rep) => {
                assert!(
                    truth.rel_max_diff(&c) < 1e-9,
                    "seed {seed}: Ok but wrong (diff {}, rep {rep:?})",
                    truth.rel_max_diff(&c)
                );
            }
            Err(_) => saw_unrecoverable = true,
        }
    }
    // With per-site probability 0.9 and multiple sites per interval, at
    // least one seed should produce a collision; but the essential
    // assertion above is that Ok always implies a correct result.
    let _ = saw_unrecoverable;
}

#[test]
fn injector_stats_track_cross_driver() {
    let inj = FaultInjector::new(3, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(3));
    let (m, n, k) = (96, 96, 96);
    let (a, b, _) = clean_reference(m, n, k);

    let cfg = FtConfig::with_injector(inj.clone());
    let mut ctx = small_block_ctx();
    let mut c = Matrix::<f64>::zeros(m, n);
    ft_gemm_with_ctx(
        &mut ctx,
        &cfg,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c.as_mut(),
    )
    .unwrap();

    let par = ParGemmContext::<f64>::with_threads(3);
    let mut c = Matrix::<f64>::zeros(m, n);
    par_ft_gemm(
        &par,
        &cfg,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c.as_mut(),
    )
    .unwrap();

    assert!(inj.stats().injected() > 0);
    assert_eq!(inj.stats().injected(), inj.stats().corrected());
}

#[test]
fn retry_panel_recovers_colliding_patterns() {
    use ftgemm::abft::Recovery;
    // Hunt for a seed whose error pattern is unrecoverable by checksum
    // correction alone (a cycle across shared rows and columns within one
    // verification interval), then show the checkpoint-retry policy
    // recomputes the panel and completes correctly. Count-rate schedules
    // exhaust after the first pass, so the retried panel runs clean.
    let (m, n, k) = (96, 96, 48);
    let (a, b, truth) = clean_reference(m, n, k);
    let mut recovered = 0;
    let mut failing_seeds = Vec::new();
    for seed in 0..200u64 {
        let inj = FaultInjector::new(
            seed,
            ErrorModel::Additive { magnitude: 1e6 },
            Rate::PerSite(0.8),
        );
        let cfg = FtConfig {
            injector: Some(inj),
            ..Default::default()
        };
        let mut ctx = small_block_ctx();
        let mut c = Matrix::<f64>::zeros(m, n);
        if ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .is_err()
        {
            failing_seeds.push(seed);
            if failing_seeds.len() >= 5 {
                break;
            }
        }
    }
    for &seed in &failing_seeds {
        // Same fault pattern, but with panel checkpoint-retry. Retried
        // panels poll fresh sites (PerSite keeps injecting), so allow
        // several attempts; with probability ~0.8^sites per attempt the
        // panel eventually passes or we accept a final Err as "flagged".
        let inj = FaultInjector::new(
            seed,
            ErrorModel::Additive { magnitude: 1e6 },
            Rate::PerSite(0.8),
        );
        let cfg = FtConfig {
            injector: Some(inj),
            recovery: Recovery::RetryPanel { max_retries: 20 },
            ..Default::default()
        };
        let mut ctx = small_block_ctx();
        let mut c = Matrix::<f64>::zeros(m, n);
        match ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        ) {
            Ok(rep) => {
                assert!(
                    rep.retried_panels > 0,
                    "seed {seed}: no retry recorded: {rep:?}"
                );
                assert!(
                    truth.rel_max_diff(&c) < 1e-9,
                    "seed {seed}: retry produced wrong result ({})",
                    truth.rel_max_diff(&c)
                );
                recovered += 1;
            }
            Err(_) => {} // still flagged after budget — acceptable, never silent
        }
    }
    assert!(
        failing_seeds.is_empty() || recovered > 0,
        "retry never succeeded across failing seeds {failing_seeds:?}"
    );
}

#[test]
fn retry_panel_is_inert_on_clean_runs() {
    use ftgemm::abft::Recovery;
    let (m, n, k) = (80, 70, 60);
    let (a, b, truth) = clean_reference(m, n, k);
    let cfg = FtConfig {
        recovery: Recovery::RetryPanel { max_retries: 3 },
        ..Default::default()
    };
    let mut c = Matrix::<f64>::zeros(m, n);
    let rep = ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
    assert_eq!(rep.retried_panels, 0);
    assert!(truth.rel_max_diff(&c) < 1e-10);
}
