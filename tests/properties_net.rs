//! Property-based coverage of the wire codec: every frame type
//! round-trips bit-identically, every strict truncation decodes to a
//! typed error (never a panic), and arbitrary byte soup is rejected
//! cleanly. The live-connection halves of the robustness story
//! (malformed/oversized/wrong-version frames answered with error frames
//! while the connection survives) live in `integration_net.rs`.

use ftgemm::core::Matrix;
use ftgemm::net::codec::{decode_frame, encode_frame, read_frame, ReadEvent};
use ftgemm::net::proto::{CompletionFrame, CompletionOk, Frame, OperandRef, SubmitFrame};
use proptest::prelude::*;

fn col_major(rows: u32, cols: u32, seed: u64) -> Vec<f64> {
    Matrix::<f64>::random(rows as usize, cols as usize, seed)
        .as_slice()
        .to_vec()
}

/// One instance of every frame variant, built from the drawn values —
/// round-tripping the full vocabulary each case.
fn all_frames(rows: u32, cols: u32, id: u64, code: u16, seed: u64, text: &str) -> Vec<Frame> {
    let inline = OperandRef::Inline {
        rows,
        cols,
        data: col_major(rows, cols, seed),
    };
    vec![
        Frame::Hello {
            version: (id & 0xFFFF) as u16,
            features: (seed & 0xFFFF_FFFF) as u32,
        },
        Frame::ServerHello {
            version: (id & 0xFFFF) as u16,
            features: (seed & 0xFFFF_FFFF) as u32,
            max_frame: 1 + (id as u32 & 0xFFFF),
        },
        Frame::UploadOperand {
            rows,
            cols,
            data: col_major(rows, cols, seed + 1),
        },
        Frame::OperandHandle {
            handle: id,
            resident_bytes: seed,
        },
        Frame::Submit(SubmitFrame {
            hold: id % 2 == 0,
            policy: (id % 3) as u8,
            priority: (seed % 3) as u8,
            tenant: (seed & 0xFFFF) as u32,
            deadline_ns: id,
            alpha: (seed as f64) * 1e-3 - 500.0,
            beta: -0.5,
            a: inline.clone(),
            b: OperandRef::Handle(id),
            c: (seed % 2 == 0).then(|| (rows, cols, col_major(rows, cols, seed + 2))),
        }),
        Frame::SubmitAck { id },
        Frame::Poll { id },
        Frame::Pending { id },
        Frame::Wait { id },
        Frame::Completion(CompletionFrame {
            id,
            result: Ok(CompletionOk {
                rows,
                cols,
                data: col_major(rows, cols, seed + 3),
                verifications: seed,
                detected: seed / 2,
                corrected: seed / 3,
                injected: seed / 5,
                retried_panels: seed / 7,
            }),
        }),
        Frame::Completion(CompletionFrame {
            id,
            result: Err((code, text.to_string())),
        }),
        Frame::ReleaseHandle { handle: id },
        Frame::Released { handle: id },
        Frame::Shutdown,
        Frame::Goodbye,
        Frame::Error {
            id,
            code,
            message: text.to_string(),
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every frame type survives encode → decode bit-identically.
    /// (Special f64 bit patterns are pinned in `f64_travels_as_raw_bits`
    /// below, since NaN defeats `PartialEq`.)
    #[test]
    fn every_frame_round_trips(
        rows in 1u32..8, cols in 1u32..8,
        id in 0u64..u64::MAX, codeword in 0u32..u16::MAX as u32,
        seed in 0u64..1_000_000,
    ) {
        let text = format!("err-{seed}");
        for frame in all_frames(rows, cols, id, codeword as u16, seed, &text) {
            let bytes = encode_frame(&frame);
            // Frame layout: [len u32][verb][payload].
            let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
            prop_assert_eq!(len, bytes.len() - 4);
            let got = decode_frame(bytes[4], &bytes[5..]);
            prop_assert_eq!(got.as_ref().ok(), Some(&frame));
            // And through the stream reader, which adds the length-prefix
            // handling on top of the payload codec.
            let mut cur = std::io::Cursor::new(&bytes);
            let (event, consumed) = read_frame(&mut cur, u32::MAX).unwrap();
            prop_assert_eq!(consumed, bytes.len() as u64);
            match event {
                ReadEvent::Frame(f) => prop_assert_eq!(f, frame),
                other => prop_assert!(false, "expected frame, got {:?}", other),
            }
        }
    }

    /// Every strict prefix of every frame's payload decodes to a typed
    /// error — truncation can never panic or be mistaken for a frame.
    #[test]
    fn every_truncation_is_a_typed_error(
        rows in 1u32..6, cols in 1u32..6,
        id in 0u64..u64::MAX, seed in 0u64..1_000_000,
    ) {
        for frame in all_frames(rows, cols, id, 7, seed, "boom") {
            let bytes = encode_frame(&frame);
            let payload = &bytes[5..];
            for cut in 0..payload.len() {
                prop_assert!(
                    decode_frame(bytes[4], &payload[..cut]).is_err(),
                    "strict prefix of {} bytes decoded as a frame", cut
                );
            }
        }
    }

    /// Appending garbage to a frame's payload is always rejected
    /// (Trailing), so a desynced stream cannot silently resync mid-frame.
    #[test]
    fn trailing_bytes_are_rejected(
        rows in 1u32..6, cols in 1u32..6,
        id in 0u64..u64::MAX, seed in 0u64..1_000_000,
    ) {
        for frame in all_frames(rows, cols, id, 7, seed, "boom") {
            let mut payload = encode_frame(&frame)[5..].to_vec();
            payload.push((seed & 0xFF) as u8);
            prop_assert!(decode_frame(frame.verb(), &payload).is_err());
        }
    }

    /// Arbitrary byte soup under every verb decodes without panicking —
    /// the codec is total.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..u64::MAX, len in 0usize..512) {
        let mut x = seed | 1;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            // xorshift64 byte stream.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            bytes.push((x & 0xFF) as u8);
        }
        for verb in 0u8..=255 {
            let _ = decode_frame(verb, &bytes);
        }
    }
}

/// f64 payloads travel as raw bits, so NaN patterns, -0.0, and the
/// infinities round-trip exactly (PartialEq would hide this, so compare
/// bit patterns directly).
#[test]
fn f64_travels_as_raw_bits() {
    let specials = [
        f64::NAN,
        f64::from_bits(0x7FF8_0000_DEAD_BEEF), // payload-carrying NaN
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE / 2.0, // subnormal
    ];
    let frame = Frame::UploadOperand {
        rows: specials.len() as u32,
        cols: 1,
        data: specials.to_vec(),
    };
    let bytes = encode_frame(&frame);
    match decode_frame(bytes[4], &bytes[5..]).unwrap() {
        Frame::UploadOperand { data, .. } => {
            for (got, want) in data.iter().zip(specials.iter()) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        other => panic!("wrong frame type: {other:?}"),
    }
}
