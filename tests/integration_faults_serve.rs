//! End-to-end fault-injection coverage of the serving path: `ftgemm-faults`
//! wired through a NUMA-sharded `GemmService` for the first time.
//!
//! A seeded campaign submits a batch of requests whose injectors corrupt
//! macro-kernel tiles mid-GEMM, under `FtPolicy::DetectCorrect`, and pins
//! the **exact** counter flow across every layer: the injector's own
//! `InjectionStats`, the per-request `FtReport`, and the service-wide
//! `StatsSnapshot` must all agree — every injected error detected, every
//! detected error corrected, nothing flagged that was not injected.
//!
//! On result fidelity: checksum correction subtracts the *measured* delta,
//! which carries the roundoff of the checksum sums — it repairs an error of
//! magnitude `d` up to `O(eps * d)` (an inherent property of ABFT; see
//! `ErrorModel::BitFlip`'s docs in `ftgemm-faults`). The campaign therefore
//! asserts bit-level fidelity at the strength the scheme actually
//! guarantees: bit-flip corruptions (`d` within a few binades of the value)
//! must be restored to within a few ulps of the uncorrupted run of the
//! *same serving path*, and large additive corruptions (`d ~ 1e6`) to
//! within the scaled `eps * d` bound. An `FtPolicy::Off` control (same
//! injectors attached!) pins that the plain driver exposes no injection
//! sites — detection counts stay zero and outputs are **bit-identical** to
//! the clean serving path.

use ftgemm::core::reference::naive_gemm;
use ftgemm::faults::{ErrorModel, Rate};
use ftgemm::serve::{
    FaultPolicyConfig, FtPolicy, GemmRequest, GemmService, PlacementPolicy, RoutingPolicy,
    ServiceConfig, Topology,
};
use ftgemm::{FaultInjector, Matrix};

/// Routing pinned so the campaign's size mix deterministically exercises
/// both the batched and the matrix-parallel path.
const CUTOFF: u64 = 2 * 96 * 96 * 96;

fn faulted_service() -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads: 0, // one worker per synthetic core
        max_batch: 4,
        routing: RoutingPolicy::Fixed(CUTOFF),
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::RoundRobin,
        ..ServiceConfig::default()
    })
}

/// The campaign's problem list: sizes straddling the pinned cutoff so
/// injected errors hit both execution paths, with per-request error budgets.
fn campaign_problems() -> Vec<(usize, usize, usize, usize)> {
    vec![
        // (m, n, k, errors) — first four batched (≤ 96^3), last four
        // matrix-parallel.
        (64, 64, 64, 1),
        (80, 64, 48, 2),
        (64, 96, 64, 2),
        (96, 80, 64, 3),
        (128, 128, 96, 1),
        (160, 128, 96, 2),
        (128, 160, 128, 2),
        (192, 160, 96, 3),
    ]
}

/// N requests under `DetectCorrect` with seeded injectors: every layer's
/// injected/detected/corrected counters agree exactly, and every output is
/// restored to the uncorrupted run of the same serving path at the
/// strength the correction scheme guarantees for its error model.
#[test]
fn seeded_campaign_counts_exactly_and_corrects_to_guarantee() {
    let faulted = faulted_service();
    let clean = faulted_service();

    let mut in_flight = Vec::new();
    for (i, &(m, n, k, errors)) in campaign_problems().iter().enumerate() {
        let seed = 9_000 + i as u64;
        let a = Matrix::<f64>::random(m, k, seed);
        let b = Matrix::<f64>::random(k, n, seed + 100);
        // Alternate corruption models: bit flips stay within a few binades
        // of the victim value (correction restores full precision), the
        // additive model is a huge visible excursion (correction restores
        // up to eps * magnitude).
        let model = if i % 2 == 0 {
            ErrorModel::BitFlip { bit: None }
        } else {
            ErrorModel::Additive { magnitude: 1.0e6 }
        };
        let injector = FaultInjector::new(seed + 200, model, Rate::Count(errors));
        let corrupted = faulted
            .submit(
                GemmRequest::new(a.clone(), b.clone())
                    .with_policy(FtPolicy::DetectCorrect)
                    .with_injector(injector.clone()),
            )
            .unwrap();
        // The control request runs the *same serving path* (same service
        // shape, same policy) with no injector, so its output is the
        // bit-exact "what should have happened" reference.
        let reference = clean
            .submit(GemmRequest::new(a.clone(), b.clone()).with_policy(FtPolicy::DetectCorrect))
            .unwrap();
        in_flight.push((a, b, injector, model, corrupted, reference));
    }

    let mut total_injected = 0u64;
    let mut total_detected = 0u64;
    let mut total_corrected = 0u64;
    for (i, (a, b, injector, model, corrupted, reference)) in in_flight.into_iter().enumerate() {
        let resp = corrupted.wait().unwrap();
        let clean_resp = reference.wait().unwrap();
        assert_eq!(
            resp.batched, clean_resp.batched,
            "request {i}: services disagree on routing path"
        );

        // Exact cross-layer counter agreement: the injector's own stats are
        // the ground truth for what fired inside this request's driver.
        let stats = injector.stats();
        assert!(
            stats.injected() > 0,
            "request {i}: injector never fired (errors budget was nonzero)"
        );
        assert_eq!(
            resp.report.injected as u64,
            stats.injected(),
            "request {i}: report vs injector injected count"
        );
        assert_eq!(
            resp.report.detected as u64,
            stats.detected(),
            "request {i}: report vs injector detected count"
        );
        assert_eq!(
            resp.report.corrected as u64,
            stats.corrected(),
            "request {i}: report vs injector corrected count"
        );
        // Every injected error was detected and corrected (the campaign's
        // additive-1e6 model is always visible to the tolerance), and
        // nothing was flagged that was not injected.
        assert_eq!(resp.report.detected, resp.report.injected, "request {i}");
        assert_eq!(resp.report.corrected, resp.report.injected, "request {i}");
        assert_eq!(stats.unrecoverable(), 0, "request {i}");

        // Result fidelity vs the uncorrupted run of the identical serving
        // path, at the correction scheme's guaranteed strength per model:
        // a repaired magnitude-d error leaves at most O(eps * d) residual.
        // Bit flips: d is within a few binades of the value, so the
        // corrected element is exact to a few ulps. Additive 1e6: the
        // residual bound is eps * 1e6 absolute (values here are O(10), so
        // relative ~1e-10 with a wide safety factor below).
        let diff = resp.c.rel_max_diff(&clean_resp.c);
        let bound = match model {
            ErrorModel::BitFlip { .. } => 64.0 * f64::EPSILON,
            _ => 1e-9,
        };
        assert!(
            diff < bound,
            "request {i}: corrected result off the clean run by {diff:.3e} \
             (model {model:?}, guarantee bound {bound:.3e})"
        );
        // And the clean run itself matches the serial reference numerically.
        let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        assert!(clean_resp.c.rel_max_diff(&expected) < 1e-10, "request {i}");

        total_injected += resp.report.injected as u64;
        total_detected += resp.report.detected as u64;
        total_corrected += resp.report.corrected as u64;
    }

    // Service-wide counters are the exact sums of the per-request reports.
    let snap = faulted.stats();
    assert_eq!(snap.injected, total_injected);
    assert_eq!(snap.detected, total_detected);
    assert_eq!(snap.corrected, total_corrected);
    assert_eq!(snap.completed, 8);
    assert_eq!(snap.failed, 0);
    // Both execution paths actually saw faulted traffic.
    assert_eq!(snap.batched_requests, 4, "{snap:?}");
    assert_eq!(snap.direct_large, 4, "{snap:?}");
    // The clean control service detected nothing.
    let clean_snap = clean.stats();
    assert_eq!(clean_snap.injected, 0);
    assert_eq!(clean_snap.detected, 0);
}

/// `Off`-policy control: the plain drivers expose no injection sites, so an
/// attached injector never fires and detection counters stay zero — while
/// the results still match the reference.
#[test]
fn off_policy_control_keeps_detection_at_zero() {
    let service = faulted_service();
    let control = faulted_service();
    let mut in_flight = Vec::new();
    for (i, &(m, n, k, errors)) in campaign_problems().iter().enumerate() {
        let seed = 20_000 + i as u64;
        let a = Matrix::<f64>::random(m, k, seed);
        let b = Matrix::<f64>::random(k, n, seed + 100);
        let injector = FaultInjector::counted(seed + 200, errors);
        let handle = service
            .submit(
                GemmRequest::new(a.clone(), b.clone())
                    .with_policy(FtPolicy::Off)
                    .with_injector(injector.clone()),
            )
            .unwrap();
        // Same request, no injector, identical second service: with no
        // injection sites in the plain driver the two outputs must match
        // to the bit.
        let clean = control
            .submit(GemmRequest::new(a.clone(), b.clone()).with_policy(FtPolicy::Off))
            .unwrap();
        in_flight.push((a, b, injector, handle, clean));
    }
    for (i, (a, b, injector, handle, clean)) in in_flight.into_iter().enumerate() {
        let resp = handle.wait().unwrap();
        let clean_resp = clean.wait().unwrap();
        assert_eq!(injector.stats().injected(), 0, "request {i}: Off injected");
        assert_eq!(injector.stats().detected(), 0, "request {i}: Off detected");
        assert_eq!(resp.report, Default::default(), "request {i}");
        let bits =
            |m: &Matrix<f64>| -> Vec<u64> { m.as_slice().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(
            bits(&resp.c),
            bits(&clean_resp.c),
            "request {i}: Off-policy output not bit-identical to clean path"
        );
        let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        assert!(resp.c.rel_max_diff(&expected) < 1e-10, "request {i}");
    }
    let snap = service.stats();
    assert_eq!(snap.injected, 0);
    assert_eq!(snap.detected, 0);
    assert_eq!(snap.corrected, 0);
    assert_eq!(snap.completed, 8);
}

/// The error-aware fault-policy lifecycle, end to end on a two-node
/// synthetic topology: an injection campaign at node 0 escalates **only**
/// node 0's policy floor to `DetectCorrect` (an `Off` request pinned there
/// runs verified; the same request at clean node 1 keeps the plain
/// driver's zero-verification cost), and a quiet volume of clean traffic
/// steps the floor back down to `Off` one level at a time.
#[test]
fn node_local_escalation_floors_requests_and_deescalates_when_quiet() {
    // One 96^3 request is 2*96^3 ≈ 1.77e6 flops, and each campaign request
    // lands one detected error (sample rate ≈ 5.7e-7 per flop). With
    // tau = 2e6 the EWMA reads ≈3.3e-7 after one faulted request and
    // ≈4.7e-7 after two, so `detect` trips immediately and `correct` on
    // the second observation; `quiet_flops` is ~3 clean requests per
    // de-escalation step.
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 0,
        max_batch: 4,
        routing: RoutingPolicy::Fixed(CUTOFF),
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::OperandHome,
        fault_policy: Some(FaultPolicyConfig {
            tau_flops: 2.0e6,
            detect_threshold: 1.0e-7,
            correct_threshold: 4.0e-7,
            quiet_flops: 5_000_000,
        }),
        ..ServiceConfig::default()
    });
    let node_floor = |node: usize| {
        let snap = service.stats();
        let ns = snap
            .per_node
            .iter()
            .find(|n| n.node == node)
            .cloned()
            .unwrap_or_else(|| panic!("no per-node stats for node {node}"));
        ns
    };
    // Serial submit-and-wait keeps every queue shallower than the steal
    // gate, so the home hint fully determines the executing node.
    let run = |node: usize, policy: FtPolicy, injector: Option<FaultInjector>, seed: u64| {
        let a = Matrix::<f64>::random(96, 96, seed);
        let b = Matrix::<f64>::random(96, 96, seed + 1);
        let mut req = GemmRequest::new(a, b).with_policy(policy).with_home(node);
        if let Some(inj) = injector {
            req = req.with_injector(inj);
        }
        let resp = service.submit(req).unwrap().wait().unwrap();
        assert_eq!(resp.executed_node, node, "request was stolen off its home");
        resp
    };

    // Phase A: an injection campaign at node 0 (DetectCorrect traffic with
    // seeded injectors) drives its detected-errors-per-flop EWMA over the
    // correct threshold.
    for i in 0..3u64 {
        let inj = FaultInjector::new(
            31_000 + i,
            ErrorModel::Additive { magnitude: 1.0e6 },
            Rate::Count(4),
        );
        let resp = run(0, FtPolicy::DetectCorrect, Some(inj), 30_000 + 2 * i);
        assert!(
            resp.report.detected > 0,
            "campaign request {i} saw no faults"
        );
    }
    let n0 = node_floor(0);
    let n1 = node_floor(1);
    assert_eq!(
        n0.ft_floor, 2,
        "faulty node must be floored at DetectCorrect"
    );
    assert!(n0.ft_escalations >= 1);
    assert_eq!(n1.ft_floor, 0, "clean node must keep no floor");
    assert_eq!(n1.ft_escalations, 0);
    let snap = service.stats();
    assert!(snap.ft_error_rate_per_node[0] > 0.0);
    assert_eq!(snap.ft_error_rate_per_node[1], 0.0);

    // Phase B: the floor overrides the *request's* policy on the faulty
    // node only. An Off request with an armed injector runs the verified
    // path at node 0 (faults detected and corrected)...
    let inj = FaultInjector::counted(32_000, 4);
    let floored = run(0, FtPolicy::Off, Some(inj.clone()), 32_001);
    assert!(
        floored.report.verifications > 0,
        "Off request at the escalated node must run verified"
    );
    assert_eq!(floored.report.detected, floored.report.injected);
    assert_eq!(floored.report.corrected, floored.report.injected);
    assert!(inj.stats().injected() > 0);
    // ...while the identical request at the clean node keeps the plain
    // driver: no injection sites, no verifications, all-zero report.
    let inj_clean = FaultInjector::counted(33_000, 4);
    let plain = run(1, FtPolicy::Off, Some(inj_clean.clone()), 33_001);
    assert_eq!(plain.report, Default::default());
    assert_eq!(inj_clean.stats().injected(), 0);

    // Phase C: clean traffic at node 0 de-escalates one level per quiet
    // volume — DetectCorrect(2) -> Detect(1) -> Off(0).
    let mut saw_detect_step = false;
    for i in 0..30u64 {
        if node_floor(0).ft_floor == 0 {
            break;
        }
        saw_detect_step |= node_floor(0).ft_floor == 1;
        run(0, FtPolicy::Off, None, 34_000 + 2 * i);
    }
    let n0 = node_floor(0);
    assert_eq!(n0.ft_floor, 0, "clean traffic never de-escalated node 0");
    assert!(saw_detect_step, "floor must step down through Detect");
    assert!(n0.ft_deescalations >= 2);
    assert_eq!(node_floor(1).ft_deescalations, 0);

    // Fully de-escalated: Off requests at node 0 are back on the plain
    // driver's cost (and its zero injection sites).
    let inj_after = FaultInjector::counted(35_000, 4);
    let resp = run(0, FtPolicy::Off, Some(inj_after.clone()), 35_001);
    assert_eq!(resp.report, Default::default());
    assert_eq!(inj_after.stats().injected(), 0);
}
