//! End-to-end coverage of the TCP wire frontend: loopback
//! client/server round trips bit-identical to in-process `submit`,
//! deadline rejection as a wire error code, handle lifecycle (upload /
//! reuse / release / eviction / disconnect cleanup), protocol robustness
//! on a live connection, and the `ftgemm_net_*` families in a real
//! `/metrics` scrape.

use ftgemm::core::Matrix;
use ftgemm::net::codec::{read_frame, write_frame, ReadEvent};
use ftgemm::net::proto::{error_code, Frame, PROTO_VERSION};
use ftgemm::net::{ClientError, NetClient, NetServer, NetServerConfig, NetSubmit};
use ftgemm::serve::{
    FtPolicy, GemmRequest, GemmService, Priority, RoutePath, ServiceConfig, Topology,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service() -> Arc<GemmService<f64>> {
    Arc::new(GemmService::new(ServiceConfig {
        threads: 2,
        topology: Some(Topology::single(2)),
        ..ServiceConfig::default()
    }))
}

fn start(service: &Arc<GemmService<f64>>, config: NetServerConfig) -> NetServer {
    NetServer::start(Arc::clone(service), "127.0.0.1:0", config).expect("bind wire frontend")
}

/// Spin until `cond` holds (teardown paths run on connection threads, so
/// observable effects like handle release are eventually-consistent).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The acceptance-criteria loopback flow: upload `A`/`B` once, fire N
/// submits against the handles with mixed tenants/priorities/policies,
/// and require every wire result bit-identical to the same request
/// through in-process `submit` on the same service.
#[test]
fn wire_results_bit_identical_to_in_process_submit() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let mut client = NetClient::connect(server.addr()).unwrap();

    let a = Matrix::<f64>::random(48, 32, 11);
    let b = Matrix::<f64>::random(32, 40, 12);
    let ha = client.upload(&a).unwrap();
    let hb = client.upload(&b).unwrap();
    assert_eq!(server.store().handle_count(), 2);

    let cases: &[(u32, Priority, FtPolicy, f64)] = &[
        (0, Priority::Normal, FtPolicy::DetectCorrect, 1.0),
        (7, Priority::High, FtPolicy::Detect, -2.5),
        (7, Priority::Low, FtPolicy::Off, 0.125),
        (3, Priority::Normal, FtPolicy::DetectCorrect, 3.0),
        (0, Priority::High, FtPolicy::DetectCorrect, 1.0),
        (3, Priority::Low, FtPolicy::Detect, -1.0),
    ];
    let mut ids = Vec::new();
    for &(tenant, priority, policy, alpha) in cases {
        let id = client
            .submit(
                NetSubmit::new(ha, hb)
                    .with_tenant(tenant)
                    .with_priority(priority)
                    .with_policy(policy)
                    .with_alpha(alpha),
            )
            .unwrap();
        ids.push(id);
    }
    for (&id, &(tenant, priority, policy, alpha)) in ids.iter().zip(cases) {
        let completion = client.wait(id).unwrap();
        let ok = completion.result.expect("wire submit must succeed");
        let wire_c = ok.to_matrix();

        let in_process = svc
            .submit(
                GemmRequest::builder(a.clone(), b.clone())
                    .build()
                    .unwrap()
                    .with_alpha(alpha)
                    .with_policy(policy)
                    .with_tenant(tenant)
                    .with_priority(priority),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(wire_c.nrows(), in_process.c.nrows());
        assert_eq!(wire_c.ncols(), in_process.c.ncols());
        for (w, p) in wire_c.as_slice().iter().zip(in_process.c.as_slice()) {
            assert_eq!(
                w.to_bits(),
                p.to_bits(),
                "wire result must be bit-identical"
            );
        }
        assert_eq!(ok.report().verifications, in_process.report.verifications);
    }

    // Zero-copy sanity: six submits against two uploads left exactly the
    // two uploaded operands resident.
    assert_eq!(server.store().handle_count(), 2);
    client.release(ha).unwrap();
    client.release(hb).unwrap();
    assert_eq!(server.store().handle_count(), 0);
    assert_eq!(server.store().resident_bytes(), 0);
}

/// `alpha*A*B + beta*C` with an explicit C travels correctly both ways.
#[test]
fn inline_submit_with_accumulation() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let mut client = NetClient::connect(server.addr()).unwrap();

    let a = Matrix::<f64>::random(16, 8, 1);
    let b = Matrix::<f64>::random(8, 12, 2);
    let c0 = Matrix::<f64>::random(16, 12, 3);
    let id = client
        .submit(NetSubmit::new(&a, &b).with_alpha(2.0).with_c(-1.5, &c0))
        .unwrap();
    let wire = client.wait(id).unwrap().result.unwrap().to_matrix();

    let in_process = svc
        .submit(
            GemmRequest::builder(a, b)
                .build()
                .unwrap()
                .with_alpha(2.0)
                .with_c(-1.5, c0),
        )
        .unwrap()
        .wait()
        .unwrap();
    for (w, p) in wire.as_slice().iter().zip(in_process.c.as_slice()) {
        assert_eq!(w.to_bits(), p.to_bits());
    }
}

/// Hold delivery: Poll answers Pending/Completion, Wait blocks
/// server-side; unknown ids get a typed error.
#[test]
fn hold_delivery_poll_and_wait() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let mut client = NetClient::connect(server.addr()).unwrap();

    let a = Matrix::<f64>::random(24, 24, 4);
    let b = Matrix::<f64>::random(24, 24, 5);
    let id = client.submit(NetSubmit::new(&a, &b).held()).unwrap();
    // Poll until done (first polls may legitimately return Pending).
    let completion = loop {
        if let Some(c) = client.poll(id).unwrap() {
            break c;
        }
    };
    assert!(completion.result.is_ok());

    // Wait on a second held submit exercises the blocking path.
    let id2 = client.submit(NetSubmit::new(&a, &b).held()).unwrap();
    assert!(client.wait(id2).unwrap().result.is_ok());

    // A redeemed (or never-submitted) id is a typed error, not a hang.
    match client.poll(id2) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, error_code::UNKNOWN_REQUEST),
        other => panic!("expected UNKNOWN_REQUEST, got {other:?}"),
    }
}

/// A deadline the admission model deems infeasible surfaces as wire error
/// code DEADLINE_EXCEEDED on the submitting connection.
#[test]
fn infeasible_deadline_is_a_wire_error() {
    let svc = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 1,
        topology: Some(Topology::single(1)),
        ..ServiceConfig::default()
    }));
    // Seed the routing learner at 100k ns/flop: a 64^3 problem predicts
    // ~52s, hopeless against 50ms (same deterministic setup as the QoS
    // integration tests).
    let flops = 2 * 64u64.pow(3);
    for _ in 0..4 {
        svc.seed_routing(RoutePath::Batched, flops, flops * 100_000);
    }
    let server = start(&svc, NetServerConfig::default());
    let mut client = NetClient::connect(server.addr()).unwrap();

    let a = Matrix::<f64>::random(64, 64, 6);
    let b = Matrix::<f64>::random(64, 64, 7);
    match client.submit(NetSubmit::new(&a, &b).with_deadline(Duration::from_millis(50))) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, error_code::DEADLINE_EXCEEDED);
            assert!(message.contains("infeasible"), "{message}");
        }
        other => panic!("expected DEADLINE_EXCEEDED wire error, got {other:?}"),
    }
    // The connection survives the rejection.
    let id = client.submit(NetSubmit::new(&a, &b)).unwrap();
    assert!(client.wait(id).unwrap().result.is_ok());
}

/// Killing a client mid-stream leaks nothing: its operand handles are
/// released and the resident-bytes accounting returns to baseline.
#[test]
fn killed_client_leaks_no_handles() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let a = Matrix::<f64>::random(64, 64, 8);
    let b = Matrix::<f64>::random(64, 64, 9);

    {
        let mut client = NetClient::connect(server.addr()).unwrap();
        let ha = client.upload(&a).unwrap();
        let hb = client.upload(&b).unwrap();
        assert_eq!(server.store().handle_count(), 2);
        assert!(server.store().resident_bytes() > 0);
        // Fire-and-forget stream submits, then vanish without waiting.
        client.submit(NetSubmit::new(ha, hb)).unwrap();
        client.submit(NetSubmit::new(ha, hb)).unwrap();
        // Drop = TCP close mid-stream, completions undelivered.
    }

    wait_until("operand store back to baseline", || {
        server.store().handle_count() == 0 && server.store().resident_bytes() == 0
    });
}

/// Byte-budget eviction over the wire: the oldest handle is evicted, a
/// submit against it answers UNKNOWN_HANDLE, an operand larger than the
/// whole budget answers OPERAND_BUDGET.
#[test]
fn operand_budget_evicts_lru() {
    let svc = service();
    // Budget: exactly two 32x32 f64 operands.
    let server = start(
        &svc,
        NetServerConfig {
            operand_budget: 2 * 32 * 32 * 8,
            ..NetServerConfig::default()
        },
    );
    let mut client = NetClient::connect(server.addr()).unwrap();

    let m = Matrix::<f64>::random(32, 32, 10);
    let h1 = client.upload(&m).unwrap();
    let _h2 = client.upload(&m).unwrap();
    let _h3 = client.upload(&m).unwrap(); // evicts h1
    assert_eq!(server.store().evictions(), 1);
    assert_eq!(server.store().handle_count(), 2);

    match client.submit(NetSubmit::new(h1, h1)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, error_code::UNKNOWN_HANDLE),
        other => panic!("expected UNKNOWN_HANDLE, got {other:?}"),
    }

    let huge = Matrix::<f64>::zeros(64, 64); // 32 KiB > 16 KiB budget
    match client.upload(&huge) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, error_code::OPERAND_BUDGET),
        other => panic!("expected OPERAND_BUDGET, got {other:?}"),
    }
}

/// Protocol robustness on a live connection: wrong version, missing
/// Hello, unknown verb, malformed payload, and an oversized frame each
/// get their typed error frame — and the same connection (and server)
/// keeps working afterwards.
#[test]
fn protocol_errors_keep_connection_alive() {
    let svc = service();
    let server = start(
        &svc,
        NetServerConfig {
            max_frame: 64 * 1024,
            ..NetServerConfig::default()
        },
    );

    // Raw socket: drive the handshake by hand to hit the pre-Hello paths.
    let mut raw = TcpStream::connect(server.addr()).unwrap();
    let expect_error = |raw: &mut TcpStream, want: u16| {
        let (event, _) = read_frame(raw, 64 * 1024).unwrap();
        match event {
            ReadEvent::Frame(Frame::Error { code, .. }) => assert_eq!(code, want),
            other => panic!("expected error frame {want}, got {other:?}"),
        }
    };

    // 1. First frame not Hello.
    write_frame(&mut raw, &Frame::Poll { id: 1 }).unwrap();
    expect_error(&mut raw, error_code::EXPECTED_HELLO);

    // 2. Unsupported version.
    write_frame(
        &mut raw,
        &Frame::Hello {
            version: PROTO_VERSION + 99,
            features: 0,
        },
    )
    .unwrap();
    expect_error(&mut raw, error_code::UNSUPPORTED_VERSION);

    // 3. The *same* connection recovers with a correct Hello.
    write_frame(
        &mut raw,
        &Frame::Hello {
            version: PROTO_VERSION,
            features: u32::MAX,
        },
    )
    .unwrap();
    let (event, _) = read_frame(&mut raw, 64 * 1024).unwrap();
    match event {
        ReadEvent::Frame(Frame::ServerHello { version, .. }) => assert_eq!(version, PROTO_VERSION),
        other => panic!("expected ServerHello, got {other:?}"),
    }

    // 4. Unknown verb byte.
    raw.write_all(&[1u32.to_le_bytes(), [200, 0, 0, 0]].concat()[..5])
        .unwrap();
    expect_error(&mut raw, error_code::UNKNOWN_VERB);

    // 5. Malformed payload (Poll frame with a truncated id).
    let mut bad = Vec::new();
    bad.extend_from_slice(&3u32.to_le_bytes());
    bad.push(ftgemm::net::proto::verb::POLL);
    bad.extend_from_slice(&[0, 0]);
    raw.write_all(&bad).unwrap();
    expect_error(&mut raw, error_code::MALFORMED_FRAME);

    // 6. Oversized frame: claims 1 MiB against a 64 KiB cap. Drained,
    // answered, framing stays in sync.
    let len = 1024 * 1024u32;
    raw.write_all(&len.to_le_bytes()).unwrap();
    raw.write_all(&vec![0u8; len as usize]).unwrap();
    expect_error(&mut raw, error_code::FRAME_TOO_LARGE);

    // 7. After all that abuse, the same connection still serves GEMMs.
    let a = Matrix::<f64>::random(8, 8, 20);
    write_frame(
        &mut raw,
        &Frame::Submit(ftgemm::net::proto::SubmitFrame {
            hold: false,
            policy: 2,
            priority: 1,
            tenant: 0,
            deadline_ns: 0,
            alpha: 1.0,
            beta: 0.0,
            a: ftgemm::net::OperandRef::inline(&a),
            b: ftgemm::net::OperandRef::inline(&a),
            c: None,
        }),
    )
    .unwrap();
    let (event, _) = read_frame(&mut raw, 64 * 1024).unwrap();
    assert!(
        matches!(event, ReadEvent::Frame(Frame::SubmitAck { .. })),
        "submit after protocol abuse must succeed, got {event:?}"
    );

    // 8. And the server still accepts fresh connections.
    let mut fresh = NetClient::connect(server.addr()).unwrap();
    let id = fresh.submit(NetSubmit::new(&a, &a)).unwrap();
    assert!(fresh.wait(id).unwrap().result.is_ok());
}

/// The per-connection in-flight cap is enforced with a typed error.
#[test]
fn in_flight_cap_is_a_typed_error() {
    let svc = service();
    let server = start(
        &svc,
        NetServerConfig {
            max_in_flight: 0,
            ..NetServerConfig::default()
        },
    );
    let mut client = NetClient::connect(server.addr()).unwrap();
    let a = Matrix::<f64>::random(8, 8, 21);
    match client.submit(NetSubmit::new(&a, &a)) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, error_code::TOO_MANY_IN_FLIGHT),
        other => panic!("expected TOO_MANY_IN_FLIGHT, got {other:?}"),
    }
}

/// Releasing someone else's (or a made-up) handle is refused.
#[test]
fn foreign_handle_release_is_refused() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let m = Matrix::<f64>::random(8, 8, 22);

    let mut owner = NetClient::connect(server.addr()).unwrap();
    let h = owner.upload(&m).unwrap();

    let mut thief = NetClient::connect(server.addr()).unwrap();
    match thief.release(h) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, error_code::UNKNOWN_HANDLE),
        other => panic!("expected UNKNOWN_HANDLE, got {other:?}"),
    }
    // The owner's handle is untouched.
    let id = owner.submit(NetSubmit::new(h, h)).unwrap();
    assert!(owner.wait(id).unwrap().result.is_ok());
}

/// The Shutdown verb stops the whole server: Goodbye to the requester,
/// accept loop exits, `stop()` joins without hanging.
#[test]
fn shutdown_verb_stops_server() {
    let svc = service();
    let server = start(&svc, NetServerConfig::default());
    let client = NetClient::connect(server.addr()).unwrap();
    client.shutdown_server().unwrap();
    wait_until("accept loop to exit", || {
        TcpStream::connect(server.addr()).is_err() || {
            // The self-connect wake may still be in the backlog; any
            // connection made now is never serviced, so a read returns
            // EOF. Either observation proves the loop is gone.
            match TcpStream::connect(server.addr()) {
                Err(_) => true,
                Ok(mut s) => {
                    let _ = write_frame(
                        &mut s,
                        &Frame::Hello {
                            version: PROTO_VERSION,
                            features: 0,
                        },
                    );
                    matches!(read_frame(&mut s, 1024), Ok((ReadEvent::Eof, _)) | Err(_))
                }
            }
        }
    });
    server.stop();
}

/// `ftgemm_net_*` families show up in a real `/metrics` scrape once the
/// wire frontend has seen traffic (the obs endpoint renders the global
/// registry into every exposition).
#[test]
fn net_metric_families_scrape() {
    let svc = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 2,
        topology: Some(Topology::single(2)),
        obs_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServiceConfig::default()
    }));
    let server = start(&svc, NetServerConfig::default());

    // Generate traffic across the families: connect, upload, submit,
    // protocol error, release.
    let mut client = NetClient::connect(server.addr()).unwrap();
    let a = Matrix::<f64>::random(16, 16, 23);
    let h = client.upload(&a).unwrap();
    let id = client.submit(NetSubmit::new(h, h)).unwrap();
    client.wait(id).unwrap().result.unwrap();
    let _ = client.poll(99_999).unwrap_err(); // protocol error counter
    client.release(h).unwrap();

    let obs = svc.obs_addr().expect("obs endpoint bound");
    let mut stream = TcpStream::connect(obs).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: ftgemm\r\n\r\n").unwrap();
    let mut body = String::new();
    use std::io::Read;
    stream.read_to_string(&mut body).unwrap();

    for family in [
        "ftgemm_net_connections",
        "ftgemm_net_connections_total",
        "ftgemm_net_frames_in_total",
        "ftgemm_net_frames_out_total",
        "ftgemm_net_bytes_in_total",
        "ftgemm_net_bytes_out_total",
        "ftgemm_net_protocol_errors_total",
        "ftgemm_net_resident_operand_bytes",
        "ftgemm_net_operand_handles",
        "ftgemm_net_operand_evictions_total",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family}")),
            "family {family} missing from /metrics scrape"
        );
    }
}
