//! Property tests for the observability primitives: the log-bucketed
//! histogram's derived percentiles must bracket the exact sample
//! percentiles within one bucket's width, and the trace rings must keep
//! their newest-records-win and drop-accounting invariants under arbitrary
//! record streams.

use ftgemm::obs::{bucket_bounds, nearest_rank, percentile, Histogram, TraceEvent, Tracelog};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary nanosecond samples and an arbitrary percentile, the
    /// histogram's derived quantile is the upper bound of the bucket
    /// containing the exact nearest-rank sample — i.e. it never
    /// underestimates, and overestimates by at most one bucket width.
    #[test]
    fn histogram_quantile_brackets_exact_percentile(
        len in 1usize..200, pct in 0.0f64..100.0, seed in 0u64..10_000
    ) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let h = Histogram::new();
        let mut samples = Vec::with_capacity(len);
        for _ in 0..len {
            // Spread samples across many orders of magnitude (1ns..~1s).
            let v = next() % (1u64 << (1 + (next() % 30) as u32));
            h.record(v);
            samples.push(v);
        }

        samples.sort_unstable();
        let exact = samples[nearest_rank(pct, samples.len())];
        let derived = h.quantile(pct);
        let (lo, hi) = bucket_bounds(exact);
        prop_assert!(derived >= exact,
            "derived {derived} underestimates exact {exact} (pct {pct})");
        prop_assert!(derived == hi,
            "derived {derived} is not the bucket upper bound {hi} of exact {exact} (lo {lo})");
    }

    /// The shared nearest-rank rule agrees between the f64 `percentile`
    /// (the benchmark path) and integer sample selection: applying it to
    /// the same ordered data picks the same element.
    #[test]
    fn percentile_is_nearest_rank_selection(len in 1usize..100, pct in 0.0f64..100.0) {
        let samples: Vec<f64> = (0..len).map(|i| i as f64 * 1.5).collect();
        let by_fn = percentile(&samples, pct);
        let by_rank = samples[nearest_rank(pct, samples.len())];
        prop_assert_eq!(by_fn, by_rank);
    }

    /// Histogram count and sum are exact regardless of bucketing.
    #[test]
    fn histogram_count_and_sum_are_exact(len in 0usize..300, seed in 0u64..1_000) {
        let h = Histogram::new();
        let mut total = 0u64;
        for i in 0..len {
            let v = seed.wrapping_mul(31).wrapping_add(i as u64 * 7) % 1_000_000;
            h.record(v);
            total += v;
        }
        prop_assert_eq!(h.count(), len as u64);
        prop_assert_eq!(h.sum(), total);
    }

    /// Trace rings under arbitrary load: `recent(n)` returns at most `n`
    /// records in nondecreasing timestamp order, total retained records
    /// never exceed nodes * capacity, and every overwrite is counted in
    /// `dropped`.
    #[test]
    fn trace_rings_bound_retention_and_count_drops(
        nodes in 1usize..4, capacity in 1usize..32, records in 0usize..200
    ) {
        let log = Tracelog::new(nodes, capacity);
        for i in 0..records {
            log.record(i % nodes, i as u64, TraceEvent::Queued);
        }
        let all = log.recent(usize::MAX);
        prop_assert!(all.len() <= nodes * capacity);
        prop_assert_eq!(all.len() + log.dropped() as usize, records);
        for pair in all.windows(2) {
            prop_assert!(pair[0].t_ns <= pair[1].t_ns, "recent() not time-ordered");
        }
        // The retained records are the newest ones per ring: the highest
        // request id is always retained (when anything was recorded).
        if records > 0 {
            prop_assert!(all.iter().any(|r| r.id == (records - 1) as u64));
        }
        let tail = log.recent(3);
        prop_assert!(tail.len() <= 3);
        prop_assert_eq!(tail.last().map(|r| r.t_ns), all.last().map(|r| r.t_ns));
    }
}
