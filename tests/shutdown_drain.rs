//! Queue drop/shutdown regression coverage: a service going away with
//! requests still parked on a non-empty node shard group must *resolve*
//! every outstanding handle, future, and completion-channel receiver — by
//! computing the backlog (graceful [`shutdown`]) or failing it with
//! [`ServeError::Closed`] ([`shutdown_now`]) — never by leaving a waiter
//! hung on an envelope that silently vanished with a shard group.

use ftgemm::serve::{
    completion_channel, FtPolicy, GemmRequest, GemmService, PlacementPolicy, RoutingPolicy,
    ServeError, ServiceConfig, Topology,
};
use ftgemm::Matrix;
use std::time::Duration;

fn sharded_service() -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads: 0,
        max_batch: 4,
        routing: RoutingPolicy::Fixed(2 * 96 * 96 * 96),
        topology: Some(Topology::synthetic(2, 1)),
        placement: PlacementPolicy::RoundRobin,
        ..ServiceConfig::default()
    })
}

/// `shutdown_now` with requests parked across both node shard groups: the
/// in-flight request completes, every parked request fails with `Closed`
/// (not a hang — every wait below is bounded), the completion channel
/// observes the whole drain and then ends, and the counters balance.
#[test]
fn shutdown_now_fails_parked_requests_instead_of_hanging() {
    let service = sharded_service();

    // Occupy the scheduler: one large matrix-parallel request (hundreds of
    // ms even in release builds) so everything submitted after it is still
    // parked on its shard group when shutdown_now lands.
    let big = {
        let a = Matrix::<f64>::random(384, 384, 1);
        let b = Matrix::<f64>::random(384, 384, 2);
        service
            .submit(GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect))
            .unwrap()
    };
    // Give the scheduler time to pop the big request and enter its
    // parallel region before the backlog arrives.
    std::thread::sleep(Duration::from_millis(30));

    let parked: Vec<_> = (0..24u64)
        .map(|i| {
            let a = Matrix::<f64>::random(24, 24, 10 + i);
            let b = Matrix::<f64>::random(24, 24, 40 + i);
            service.submit(GemmRequest::new(a, b)).unwrap()
        })
        .collect();
    let (sink, mut completions) = completion_channel::<f64>();
    let streamed_ids: Vec<u64> = (0..16u64)
        .map(|i| {
            let a = Matrix::<f64>::random(24, 24, 100 + i);
            let b = Matrix::<f64>::random(24, 24, 140 + i);
            service
                .submit_streamed(GemmRequest::new(a, b), &sink)
                .unwrap()
        })
        .collect();
    drop(sink);

    let stats = service.shutdown_now();

    // The request that was mid-compute still completed normally.
    let big_resp = big
        .wait_timeout(Duration::from_secs(60))
        .expect("big request hung across shutdown_now")
        .expect("in-flight request must complete normally");
    assert_eq!(big_resp.c.nrows(), 384);

    // Every parked handle resolves (bounded wait — the regression is a
    // hang) and resolves to the shutdown error, not a silent drop.
    let mut parked_failed = 0;
    for (i, handle) in parked.into_iter().enumerate() {
        match handle
            .wait_timeout(Duration::from_secs(60))
            .unwrap_or_else(|_| panic!("parked request {i} hung across shutdown_now"))
        {
            Err(ServeError::Closed) => parked_failed += 1,
            Ok(_) => {} // squeezed into the final pre-abort sweep
            Err(e) => panic!("parked request {i}: unexpected error {e}"),
        }
    }
    assert!(
        parked_failed > 0,
        "a 24-deep backlog behind a 384^3 request must leave parked work to fail"
    );

    // The completion channel observes the full drain: one completion per
    // streamed submission (each Ok or Closed), then end-of-stream.
    let mut seen = Vec::new();
    while let Some(c) = completions.recv() {
        match c.result {
            Ok(_) | Err(ServeError::Closed) => seen.push(c.id),
            Err(e) => panic!("streamed completion {}: unexpected error {e}", c.id),
        }
    }
    seen.sort_unstable();
    let mut expected = streamed_ids.clone();
    expected.sort_unstable();
    assert_eq!(
        seen, expected,
        "channel must observe every streamed request"
    );

    // Counters balance: everything submitted either completed or failed,
    // and both shard groups are empty.
    assert_eq!(stats.submitted, 1 + 24 + 16);
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    assert!(stats.failed as usize >= parked_failed);
    assert!(stats.per_node.iter().all(|n| n.queue_depth == 0));
}

/// Graceful `shutdown` is the dual: the same parked-backlog shape drains
/// by *computing* — nothing fails, the channel sees every result Ok, and
/// handles redeem after the service object is gone.
#[test]
fn graceful_shutdown_computes_the_backlog() {
    let service = sharded_service();
    let (sink, mut completions) = completion_channel::<f64>();
    let mut handles = Vec::new();
    for i in 0..20u64 {
        let a = Matrix::<f64>::random(32, 32, i);
        let b = Matrix::<f64>::random(32, 32, i + 700);
        if i % 2 == 0 {
            handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
        } else {
            service
                .submit_streamed(GemmRequest::new(a, b), &sink)
                .unwrap();
        }
    }
    drop(sink);
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 20);
    assert_eq!(stats.completed, 20);
    assert_eq!(stats.failed, 0);
    for h in handles {
        h.wait().unwrap();
    }
    let mut drained = 0;
    while let Some(c) = completions.recv() {
        c.result.unwrap();
        drained += 1;
    }
    assert_eq!(drained, 10);
}
