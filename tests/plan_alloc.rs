//! Pins the `GemmPlan` zero-allocation contract with a counting global
//! allocator: once a plan exists, `plan.run` must not touch the heap —
//! serial plans are measured allocation-by-allocation; parallel plans are
//! additionally pinned by workspace-pointer stability (their worker threads
//! park/unpark through the pool, which the counter would attribute to the
//! region even though the GEMM hot path itself is allocation-free).

use ftgemm::{Exec, FtPolicy, GemmOp, Matrix, ParGemmContext};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn serial_protected_plan_runs_allocation_free() {
    let a = Matrix::<f64>::random(96, 72, 1);
    let b = Matrix::<f64>::random(72, 80, 2);
    let mut c = Matrix::<f64>::zeros(96, 80);

    let mut plan = GemmOp::new(&a, &b)
        .ft(FtPolicy::DetectCorrect)
        .plan(Exec::Serial)
        .unwrap();

    // Warm-up run (first call may still touch lazily initialized globals,
    // e.g. CPU feature detection).
    plan.run(&mut c.as_mut()).unwrap();

    let before = allocations();
    for _ in 0..5 {
        let report = plan.run(&mut c.as_mut()).unwrap();
        assert_eq!(report.detected, 0);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "serial protected plan.run allocated {} times",
        after - before
    );
}

#[test]
fn serial_plain_plan_runs_allocation_free() {
    let a = Matrix::<f64>::random(64, 64, 3);
    let b = Matrix::<f64>::random(64, 64, 4);
    let mut c = Matrix::<f64>::zeros(64, 64);

    let mut plan = GemmOp::new(&a, &b)
        .ft(FtPolicy::Off)
        .plan(Exec::Serial)
        .unwrap();
    plan.run(&mut c.as_mut()).unwrap();

    let before = allocations();
    for _ in 0..5 {
        plan.run(&mut c.as_mut()).unwrap();
    }
    assert_eq!(allocations() - before, 0);
}

#[test]
fn parallel_plan_workspace_is_pointer_stable() {
    let ctx = ParGemmContext::<f64>::with_threads(3);
    let a = Matrix::<f64>::random(120, 90, 5);
    let b = Matrix::<f64>::random(90, 100, 6);
    let mut c = Matrix::<f64>::zeros(120, 100);

    let mut plan = GemmOp::new(&a, &b)
        .ft(FtPolicy::DetectCorrect)
        .plan(Exec::Parallel(&ctx))
        .unwrap();
    let addr = plan
        .workspace_addr()
        .expect("parallel plan has a workspace");
    for _ in 0..5 {
        plan.run(&mut c.as_mut()).unwrap();
        assert_eq!(
            plan.workspace_addr(),
            Some(addr),
            "workspace reallocated across runs"
        );
    }
}
