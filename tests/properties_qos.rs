//! Scheduler-property suite for multi-tenant QoS: weighted-fair sharing,
//! no-starvation, and scheduling-order-independence of results.
//!
//! The fairness properties run against [`SchedSim`] — the deterministic
//! simulator wrapping the *exact* DRR/EDF decision functions the serving
//! queue schedules by — with scripted arrival traces and a synthetic
//! clock, so every assertion is exact: no sleeps, no wall-clock reads, no
//! tolerance for "usually fair". The bit-match property runs against a
//! real service and demands exact equality on the output bits.

use ftgemm::core::Matrix;
use ftgemm::serve::{
    GemmRequest, GemmService, Priority, RoutingPolicy, SchedSim, ServiceConfig, TenantTable,
    Topology,
};
use proptest::prelude::*;
use std::time::Duration;

const FG: u32 = 1; // foreground / misbehaving tenant
const BG: u32 = 2; // background / victim tenant

/// Deterministic cost generator (xorshift64*) so traces are scripted by
/// seed, never by an ambient RNG.
fn costs(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// **No starvation.** A background tenant with nonzero weight is never
    /// starved, however adversarial the foreground load: between any two
    /// background serves (and before the first), the foreground tenant can
    /// serve at most one DRR round of flops — `fg_weight * quantum` of
    /// fresh credit plus one max-request of carried residual — no matter
    /// how many requests it floods in or that it marks them all High
    /// (priority classes are scoped *within* a tenant's lane, so they buy
    /// no cross-tenant share).
    #[test]
    fn background_tenant_never_starved_by_foreground_floods(
        fg_weight in 1u64..17,
        cost_scale in 1u64..9,
        seed in 0u64..1000,
        bg_n in 2usize..6,
    ) {
        let max_cost = 1024 * cost_scale;
        let table = TenantTable::new()
            .tenant(FG, fg_weight)
            .tenant(BG, 1)
            .quantum_flops(max_cost);
        let mut sim = SchedSim::new(table);
        let mut next = costs(seed);

        // Background work arrives first (Low class — the adversary cannot
        // be out-prioritized, only out-weighted); the foreground flood is
        // sized to keep its lane backlogged past every assertion below.
        for _ in 0..bg_n {
            sim.arrive(BG, Priority::Low, None, 1 + next() % max_cost);
        }
        let fg_items = 64 + fg_weight as usize * 16;
        for _ in 0..fg_items {
            sim.arrive(FG, Priority::High, None, 1 + next() % max_cost);
        }

        let bound = fg_weight * max_cost + max_cost;
        let mut bg_served = 0usize;
        let mut fg_flops_since_bg = 0u64;
        while bg_served < bg_n {
            let s = sim.pop().expect("backlog cannot drain before background is served");
            if s.tenant == BG {
                bg_served += 1;
                fg_flops_since_bg = 0;
            } else {
                fg_flops_since_bg += s.cost_flops;
                prop_assert!(
                    fg_flops_since_bg <= bound,
                    "foreground served {fg_flops_since_bg} flops without yielding \
                     (bound {bound}, fg_weight {fg_weight}, quantum {max_cost})"
                );
            }
        }
    }

    /// **Weighted-share isolation.** A misbehaving tenant flooding
    /// max-size GEMMs cannot depress a victim tenant's served-flops share
    /// below its configured weight share minus one max-request
    /// granularity. Measured over complete DRR rounds (the flooder's
    /// requests each cost exactly one quantum, so its per-round service is
    /// exact), with both lanes backlogged throughout by construction:
    ///
    /// ```text
    /// served_victim * (w_v + w_m)  >=  w_v * total_served - (w_v + w_m) * max_cost
    /// ```
    #[test]
    fn flooding_tenant_cannot_depress_victims_weighted_share(
        victim_weight in 1u64..9,
        flood_weight in 1u64..9,
        seed in 0u64..1000,
        rounds in 4u64..17,
    ) {
        let max_cost = 4096u64;
        let table = TenantTable::new()
            .tenant(BG, victim_weight)
            .tenant(FG, flood_weight)
            .quantum_flops(max_cost);
        let mut sim = SchedSim::new(table);
        let mut next = costs(seed);

        // Victim backlog: modest random requests, preloaded until the lane
        // holds more flops than `rounds` rounds can possibly serve it.
        let victim_capacity = (rounds + 1) * victim_weight * max_cost + max_cost;
        let mut preloaded = 0u64;
        while preloaded < victim_capacity {
            let cost = 1 + next() % max_cost;
            sim.arrive(BG, Priority::Normal, None, cost);
            preloaded += cost;
        }
        // Misbehaving flood: every request is a max-size GEMM, far more of
        // them than the window can serve.
        for _ in 0..(rounds * flood_weight + flood_weight) {
            sim.arrive(FG, Priority::High, None, max_cost);
        }

        // Each flooder visit serves exactly `flood_weight` quantum-sized
        // requests, so `rounds * flood_weight` flood serves == `rounds`
        // complete rounds.
        let mut total_served = 0u64;
        while sim.served_count(FG) < rounds * flood_weight {
            let s = sim.pop().expect("both lanes preloaded past the window");
            total_served += s.cost_flops;
        }

        let served_victim = sim.served_flops(BG);
        let w_total = (victim_weight + flood_weight) as u128;
        let lhs = served_victim as u128 * w_total + w_total * max_cost as u128;
        let rhs = victim_weight as u128 * total_served as u128;
        prop_assert!(
            lhs >= rhs,
            "victim share below weighted guarantee: served {served_victim} of \
             {total_served} at weights {victim_weight}:{flood_weight} (quantum {max_cost})"
        );
    }
}

/// **Scheduling order never changes results.** The same problems submitted
/// under permuted tenants, priorities, deadlines, and submission orders
/// produce bit-identical outputs: QoS decides *when* a request runs, never
/// *what* it computes. Routing is pinned so each problem always takes the
/// same execution path — the remaining degrees of freedom (lane order,
/// class order, EDF order, batch composition) are exactly what QoS
/// permutes, and none of them may touch the bits.
#[test]
fn results_bit_identical_across_qos_permutations() {
    let shapes: [(usize, usize, usize); 4] =
        [(40, 32, 24), (96, 80, 64), (64, 64, 64), (20, 20, 20)];
    let service_for = || {
        GemmService::<f64>::new(ServiceConfig {
            threads: 2,
            max_batch: 4,
            routing: RoutingPolicy::Fixed(2 * 48 * 48 * 48),
            topology: Some(Topology::synthetic(1, 2)),
            tenants: TenantTable::new().tenant(FG, 8).tenant(BG, 1),
            ..ServiceConfig::default()
        })
    };
    let problem = |i: usize| {
        let (m, n, k) = shapes[i];
        GemmRequest::new(
            Matrix::<f64>::random(m, k, i as u64 * 7 + 1),
            Matrix::<f64>::random(k, n, i as u64 * 7 + 2),
        )
    };

    // Reference bits: each problem served alone, default QoS labels.
    let reference: Vec<Vec<u64>> = {
        let service = service_for();
        (0..shapes.len())
            .map(|i| {
                let resp = service.run(problem(i)).unwrap();
                resp.c.as_slice().iter().map(|v| v.to_bits()).collect()
            })
            .collect()
    };

    // Permuted scenarios: (submission order, tenant of problem i, class of
    // problem i, whether problem i carries a generous deadline).
    let orders: [[usize; 4]; 3] = [[0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]];
    let classes = [Priority::High, Priority::Normal, Priority::Low];
    for (scenario, order) in orders.iter().enumerate() {
        let service = service_for();
        let mut handles = Vec::new();
        for &i in order {
            let tenant = if (i + scenario) % 2 == 0 { FG } else { BG };
            let mut req = problem(i)
                .with_tenant(tenant)
                .with_priority(classes[(i + scenario) % classes.len()]);
            if i % 2 == 0 {
                req = req.with_deadline(Duration::from_secs(600));
            }
            handles.push((i, service.submit(req).unwrap()));
        }
        for (i, handle) in handles {
            let resp = handle.wait().unwrap();
            let bits: Vec<u64> = resp.c.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                bits, reference[i],
                "problem {i} bits differ in scenario {scenario} (order {order:?})"
            );
        }
        let snap = service.shutdown();
        assert_eq!(snap.completed, shapes.len() as u64);
        assert_eq!(snap.failed, 0);
    }
}
