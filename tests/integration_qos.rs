//! Integration coverage for deadline QoS: model-driven admission control
//! (reusing the routing learner's ns/flop estimates), feasible deadlines
//! completing on a multi-node topology, and load-shedding of
//! expired-while-queued requests across every submit surface.

use ftgemm::core::Matrix;
use ftgemm::serve::exec::block_on_all;
use ftgemm::serve::{
    completion_channel, GemmRequest, GemmService, PlacementPolicy, RoutePath, RoutingPolicy,
    ServeError, ServiceConfig, TenantTable, Topology,
};
use std::time::Duration;

fn problem(seed: u64, dim: usize) -> GemmRequest<f64> {
    GemmRequest::new(
        Matrix::<f64>::random(dim, dim, seed),
        Matrix::<f64>::random(dim, dim, seed + 500),
    )
}

/// Admission control is the routing learner's completion-time model:
/// identical services whose learners are seeded with a slow vs fast
/// ns/flop estimate flip the *same* submit from rejected to admitted. The
/// decision reads only seeded evidence — no wall clock, no warm-up
/// requests — so the flip is deterministic.
#[test]
fn admission_decision_flips_with_seeded_ns_per_flop() {
    let dim = 64usize;
    let flops = 2 * (dim as u64).pow(3); // below the default cutoff: batched path
    let service_seeded = |ns_per_flop: u64| {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 1,
            topology: Some(Topology::single(1)),
            ..ServiceConfig::default()
        });
        // AdaptiveConfig::min_observations (default 4) identical samples
        // make the bucket's EWMA exactly `ns_per_flop`.
        for _ in 0..4 {
            service.seed_routing(RoutePath::Batched, flops, flops * ns_per_flop);
        }
        service
    };
    let deadline = Duration::from_millis(50);

    // Seeded at 100_000 ns/flop, this 524288-flop request predicts ~52s —
    // hopeless against a 50ms deadline.
    let slow = service_seeded(100_000);
    let err = slow
        .submit(problem(1, dim).with_deadline(deadline))
        .unwrap_err();
    match &err {
        ServeError::DeadlineExceeded(detail) => {
            assert!(detail.contains("infeasible at admission"), "{detail}");
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
    // Rejected before admission: never submitted, counted under the
    // deadline reason, attributed to the (default) tenant.
    let snap = slow.shutdown();
    assert_eq!(snap.submitted, 0);
    assert_eq!(snap.rejected_deadline, 1);
    assert_eq!(snap.per_tenant.len(), 1);
    assert_eq!(snap.per_tenant[0].rejected_deadline, 1);
    assert_eq!(snap.per_tenant[0].admitted, 0);

    // Seeded at 1 ns/flop the same submit predicts ~0.5ms — admitted, and
    // it really does finish inside the deadline.
    let fast = service_seeded(1);
    let resp = fast
        .submit(problem(1, dim).with_deadline(deadline))
        .expect("fast-seeded service must admit the same deadline")
        .wait()
        .unwrap();
    assert_eq!(resp.c.nrows(), dim);
    let snap = fast.shutdown();
    assert_eq!(snap.submitted, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.rejected_deadline, 0);
}

/// A feasible deadline on a 2x2 synthetic topology is admitted, completes
/// before its deadline, and lands in the tenant's deadline-met tally; the
/// per-tenant served-flops ledger matches the work actually done.
#[test]
fn feasible_deadline_completes_on_synthetic_topology() {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 0,
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::RoundRobin,
        tenants: TenantTable::new().tenant(7, 4),
        ..ServiceConfig::default()
    });
    let dim = 48usize;
    let req_flops = 2 * (dim as u64).pow(3);
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let req = problem(i, dim)
            .with_tenant(7)
            .with_deadline(Duration::from_secs(120));
        handles.push(service.submit(req).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }
    let snap = service.shutdown();
    assert_eq!(snap.completed, 6);
    assert_eq!(snap.failed, 0);
    assert_eq!(snap.shed_deadline, 0);
    let t7 = snap
        .per_tenant
        .iter()
        .find(|t| t.tenant == 7)
        .expect("tenant 7 row");
    assert_eq!(t7.admitted, 6);
    assert_eq!(t7.completed, 6);
    assert_eq!(t7.deadline_met, 6);
    assert_eq!(t7.deadline_missed, 0);
    assert_eq!(t7.served_flops, 6 * req_flops);
}

/// Expired-while-queued requests are shed at dispatch with
/// `DeadlineExceeded` on **every** submit surface: the handle, the future,
/// and the completion channel all resolve (nothing hangs), the shed
/// requests roll into `failed` (so `completed + failed == submitted`
/// still balances), and the tenant's shed counter matches. Routing is
/// pinned — a fixed policy has no ns/flop model, so admission control
/// waves everything through and the *dispatch-time* check is what fires.
#[test]
fn expired_requests_shed_at_dispatch_on_every_surface() {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 1,
        max_batch: 4,
        routing: RoutingPolicy::Fixed(2 * 96 * 96 * 96),
        topology: Some(Topology::single(1)),
        tenants: TenantTable::new().tenant(3, 2),
        ..ServiceConfig::default()
    });

    // A 1ns deadline is always expired by the time the dispatcher pops the
    // envelope — deterministically shed, no sleeps needed. Admission lets
    // it through because Fixed routing carries no completion-time model.
    let dead = Duration::from_nanos(1);

    let handle = service
        .submit(problem(1, 24).with_tenant(3).with_deadline(dead))
        .expect("fixed routing has no model: admission must wave this through");
    let future = service
        .submit_async(problem(2, 24).with_tenant(3).with_deadline(dead))
        .unwrap();
    let (sink, mut completions) = completion_channel::<f64>();
    let streamed_id = service
        .submit_streamed(problem(3, 24).with_tenant(3).with_deadline(dead), &sink)
        .unwrap();
    drop(sink);

    // Every surface resolves with the shed error (bounded waits — the
    // regression would be a hang or a silent drop).
    match handle
        .wait_timeout(Duration::from_secs(60))
        .expect("shed handle hung")
    {
        Err(ServeError::DeadlineExceeded(detail)) => {
            assert!(detail.contains("expired while queued"), "{detail}");
        }
        other => panic!("handle: expected shed, got {other:?}"),
    }
    match block_on_all(vec![future]).pop().unwrap() {
        Err(ServeError::DeadlineExceeded(_)) => {}
        other => panic!("future: expected shed, got {other:?}"),
    }
    let completion = completions.recv().expect("channel must observe the shed");
    assert_eq!(completion.id, streamed_id);
    assert!(matches!(
        completion.result,
        Err(ServeError::DeadlineExceeded(_))
    ));
    assert!(completions.recv().is_none(), "exactly one streamed request");

    // Shed requests were admitted, so they stay in `submitted` and roll
    // into `failed` — the PR-4 accounting invariant holds under shedding.
    let snap = service.shutdown();
    assert_eq!(snap.submitted, 3);
    assert_eq!(snap.completed, 0);
    assert_eq!(snap.failed, 3);
    assert_eq!(snap.shed_deadline, 3);
    assert_eq!(snap.rejected_deadline, 0);
    assert_eq!(snap.completed + snap.failed, snap.submitted);
    let t3 = snap
        .per_tenant
        .iter()
        .find(|t| t.tenant == 3)
        .expect("tenant 3 row");
    assert_eq!(t3.admitted, 3);
    assert_eq!(t3.shed, 3);
    assert_eq!(t3.completed, 0);
    assert_eq!(t3.served_flops, 0);
}
