//! Fault-injection and error-policy coverage of the TCP wire frontend:
//! the error-aware escalation monitor and the operand-store scrubber
//! observed end to end through a live `NetServer`.
//!
//! Wire submits never carry an injector (`conn::build_request` builds
//! every wire request with `injector: None` — fault campaigns are a
//! trusted in-process surface, not a client capability). So the campaign
//! here drives injector-attached submits *in process* against the same
//! `Arc<GemmService>` a `NetServer` is serving, while wire clients work
//! the same service over TCP: escalation state must be node-local, wire
//! results must stay correct, and the `ftgemm_ftpolicy_*` /
//! `ftgemm_scrub_*` families must show up (with the escalated floor's
//! value) in a real `/metrics` scrape over TCP.

use ftgemm::core::reference::naive_gemm;
use ftgemm::faults::{ErrorModel, Rate};
use ftgemm::net::proto::error_code;
use ftgemm::net::{ClientError, NetClient, NetServer, NetServerConfig, NetSubmit};
use ftgemm::serve::{
    FaultPolicyConfig, FtPolicy, GemmRequest, GemmService, PlacementPolicy, RoutingPolicy,
    ServiceConfig, Topology,
};
use ftgemm::{FaultInjector, Matrix};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Same pinned routing as the in-process fault campaign: 96^3 requests
/// land on the batched path deterministically.
const CUTOFF: u64 = 2 * 96 * 96 * 96;

fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET /metrics HTTP/1.0\r\nHost: ftgemm\r\n\r\n").unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    body
}

/// Spin until `cond` holds (the scrubber runs on a background server
/// thread, so quarantine is eventually-consistent).
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// An in-process injection campaign at node 0 escalates that node's floor
/// while a wire client keeps getting correct answers from the same
/// service — and the whole policy state is visible in a TCP `/metrics`
/// scrape: per-node `ftgemm_ftpolicy_node_floor` shows the faulty node at
/// 2 (DetectCorrect) and the clean node at 0.
#[test]
fn wire_campaign_escalates_node_and_exports_policy_metrics() {
    let svc = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 0,
        max_batch: 4,
        routing: RoutingPolicy::Fixed(CUTOFF),
        topology: Some(Topology::synthetic(2, 2)),
        placement: PlacementPolicy::OperandHome,
        obs_addr: Some("127.0.0.1:0".parse().unwrap()),
        // Same tuning as the in-process escalation test: one detected
        // error per 96^3 request reads ≈3.3e-7 errors/flop after one
        // observation and ≈4.7e-7 after two.
        fault_policy: Some(FaultPolicyConfig {
            tau_flops: 2.0e6,
            detect_threshold: 1.0e-7,
            correct_threshold: 4.0e-7,
            quiet_flops: 5_000_000,
        }),
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(Arc::clone(&svc), "127.0.0.1:0", NetServerConfig::default())
        .expect("bind wire frontend");
    let mut client = NetClient::connect(server.addr()).unwrap();

    // In-process campaign pinned at node 0: serial submit-and-wait keeps
    // the queues under the steal gate, so the home hint holds.
    let mut campaign_detected = 0u64;
    let mut campaign_injected = 0u64;
    let mut campaign_corrected = 0u64;
    for i in 0..3u64 {
        let a = Matrix::<f64>::random(96, 96, 40_000 + 2 * i);
        let b = Matrix::<f64>::random(96, 96, 40_001 + 2 * i);
        let inj = FaultInjector::new(
            41_000 + i,
            ErrorModel::Additive { magnitude: 1.0e6 },
            Rate::Count(4),
        );
        let resp = svc
            .submit(
                GemmRequest::new(a, b)
                    .with_policy(FtPolicy::DetectCorrect)
                    .with_injector(inj.clone())
                    .with_home(0),
            )
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.executed_node, 0, "campaign request stolen off node 0");
        assert!(resp.report.detected > 0);
        // Cross-layer agreement request by request: report vs injector.
        assert_eq!(resp.report.injected as u64, inj.stats().injected());
        assert_eq!(resp.report.detected as u64, inj.stats().detected());
        campaign_detected += resp.report.detected as u64;
        campaign_injected += resp.report.injected as u64;
        campaign_corrected += resp.report.corrected as u64;
    }

    // Wire traffic on the same service stays correct while node 0 is
    // floored (small requests: their clean flops stay far below the quiet
    // volume, so they cannot de-escalate node 0 mid-test).
    let a = Matrix::<f64>::random(32, 32, 42_000);
    let b = Matrix::<f64>::random(32, 32, 42_001);
    let ha = client.upload(&a).unwrap();
    let hb = client.upload(&b).unwrap();
    let mut expected = Matrix::<f64>::zeros(32, 32);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
    for policy in [FtPolicy::Off, FtPolicy::Detect, FtPolicy::DetectCorrect] {
        let id = client
            .submit(NetSubmit::new(ha, hb).with_policy(policy))
            .unwrap();
        let ok = client.wait(id).unwrap().result.expect("wire submit failed");
        assert!(
            ok.to_matrix().rel_max_diff(&expected) < 1e-12,
            "wire result wrong under escalation ({policy:?})"
        );
    }

    // Node-local escalation state, service-wide counter agreement.
    let snap = svc.stats();
    let floor = |node: usize| {
        snap.per_node
            .iter()
            .find(|n| n.node == node)
            .unwrap_or_else(|| panic!("no stats for node {node}"))
    };
    assert_eq!(floor(0).ft_floor, 2, "faulty node floored at DetectCorrect");
    assert!(floor(0).ft_escalations >= 1);
    assert_eq!(floor(1).ft_floor, 0, "clean node keeps no floor");
    assert_eq!(floor(1).ft_escalations, 0);
    assert_eq!(snap.detected, campaign_detected);
    assert_eq!(snap.injected, campaign_injected);
    assert_eq!(snap.corrected, campaign_corrected);

    // The whole policy surface is scrapeable over TCP.
    let body = scrape(svc.obs_addr().expect("obs endpoint bound"));
    for family in [
        "ftgemm_ftpolicy_node_floor",
        "ftgemm_ftpolicy_escalations_total",
        "ftgemm_ftpolicy_deescalations_total",
        "ftgemm_ftpolicy_error_rate_per_flop",
        "ftgemm_scrub_passes_total",
        "ftgemm_scrub_operands_verified_total",
        "ftgemm_scrub_corrupted_total",
        "ftgemm_scrub_quarantined",
    ] {
        assert!(
            body.contains(&format!("# TYPE {family}")),
            "family {family} missing from /metrics scrape"
        );
    }
    assert!(
        body.contains("ftgemm_ftpolicy_node_floor{node=\"0\"} 2\n"),
        "escalated floor not exported"
    );
    assert!(
        body.contains("ftgemm_ftpolicy_node_floor{node=\"1\"} 0\n"),
        "clean floor not exported"
    );
}

/// The background scrubber catches a resident operand that rots *after*
/// upload — before a reusing submit can compute on the bad bits. The
/// poisoned handle answers `OPERAND_QUARANTINED` (not a silent wrong
/// result, not a plain `UNKNOWN_HANDLE`), and re-uploading recovers.
#[test]
fn scrubber_quarantines_corrupted_operand_before_reuse() {
    let svc = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 2,
        topology: Some(Topology::single(2)),
        ..ServiceConfig::default()
    }));
    let server = NetServer::start(
        Arc::clone(&svc),
        "127.0.0.1:0",
        NetServerConfig {
            scrub_interval: Some(Duration::from_millis(10)),
            scrub_batch: 16,
            ..NetServerConfig::default()
        },
    )
    .expect("bind wire frontend");
    let mut client = NetClient::connect(server.addr()).unwrap();

    let a = Matrix::<f64>::random(24, 24, 43_000);
    let b = Matrix::<f64>::random(24, 24, 43_001);
    let ha = client.upload(&a).unwrap();
    let hb = client.upload(&b).unwrap();
    let mut expected = Matrix::<f64>::zeros(24, 24);
    naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());

    // Clean reuse works, and scrub passes verify the residents clean.
    let id = client.submit(NetSubmit::new(ha, hb)).unwrap();
    let ok = client.wait(id).unwrap().result.unwrap();
    assert!(ok.to_matrix().rel_max_diff(&expected) < 1e-12);
    wait_until("a clean scrub pass", || {
        server.store().scrub_passes() >= 1 && server.store().scrub_verified() >= 2
    });
    assert_eq!(server.store().scrub_corrupted(), 0);

    // Rot one element of the resident A *without* touching its stored
    // checksums, then wait for the background scrubber to catch it.
    assert!(server.store().corrupt_resident_for_test(ha));
    wait_until("the scrubber to quarantine the rotten operand", || {
        server.store().quarantined_count() == 1
    });
    assert!(server.store().scrub_corrupted() >= 1);
    // Quarantine evicted the bytes: only B remains resident.
    assert_eq!(server.store().handle_count(), 1);

    // A reusing submit gets the typed quarantine error instead of wrong
    // bits; the untouched operand still resolves.
    match client.submit(NetSubmit::new(ha, hb)) {
        Err(ClientError::Server { code, message, .. }) => {
            assert_eq!(code, error_code::OPERAND_QUARANTINED);
            assert!(message.contains("quarantined"), "{message}");
        }
        other => panic!("expected OPERAND_QUARANTINED wire error, got {other:?}"),
    }

    // Releasing the poisoned handle clears the quarantine marker, and a
    // fresh upload of the same data serves correct results again.
    client.release(ha).unwrap();
    assert_eq!(server.store().quarantined_count(), 0);
    let ha2 = client.upload(&a).unwrap();
    let id = client.submit(NetSubmit::new(ha2, hb)).unwrap();
    let ok = client.wait(id).unwrap().result.unwrap();
    assert!(ok.to_matrix().rel_max_diff(&expected) < 1e-12);
    server.stop();
}
