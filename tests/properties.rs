//! Property-based tests (proptest) on the core invariants of the system:
//! GEMM algebra, checksum identities, packing round-trips, corrector
//! guarantees, partitioning, and DMR voting.

use ftgemm::abft::checksum;
use ftgemm::abft::corrector::{correct_block, find_discrepancies, CorrectionOutcome};
use ftgemm::abft::{ft_gemm, FtConfig};
use ftgemm::blas::level1;
use ftgemm::core::reference::naive_gemm;
use ftgemm::core::{gemm, pack, GemmContext, Matrix};
use ftgemm::pool::partition_aligned;
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..48
}

fn mat(m: usize, n: usize, seed: u64) -> Matrix<f64> {
    Matrix::random(m, n, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// gemm matches the naive oracle on arbitrary small shapes/scalars.
    #[test]
    fn gemm_matches_oracle(
        m in small_dim(), n in small_dim(), k in small_dim(),
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in 0u64..1000
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed + 1);
        let mut c = mat(m, n, seed + 2);
        let mut c_ref = c.clone();
        let mut ctx = GemmContext::<f64>::new();
        gemm(&mut ctx, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c.as_mut()).unwrap();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        prop_assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    /// GEMM is linear in A: (A1 + A2)B = A1*B + A2*B.
    #[test]
    fn gemm_linearity(
        m in small_dim(), n in small_dim(), k in small_dim(), seed in 0u64..1000
    ) {
        let a1 = mat(m, k, seed);
        let a2 = mat(m, k, seed + 7);
        let b = mat(k, n, seed + 13);
        let a_sum = Matrix::from_fn(m, k, |i, j| a1.get(i, j) + a2.get(i, j));

        let mut ctx = GemmContext::<f64>::new();
        let mut c_sum = Matrix::<f64>::zeros(m, n);
        gemm(&mut ctx, 1.0, &a_sum.as_ref(), &b.as_ref(), 0.0, &mut c_sum.as_mut()).unwrap();

        let mut c_parts = Matrix::<f64>::zeros(m, n);
        gemm(&mut ctx, 1.0, &a1.as_ref(), &b.as_ref(), 0.0, &mut c_parts.as_mut()).unwrap();
        gemm(&mut ctx, 1.0, &a2.as_ref(), &b.as_ref(), 1.0, &mut c_parts.as_mut()).unwrap();

        prop_assert!(c_sum.rel_max_diff(&c_parts) < 1e-10);
    }

    /// The checksum identity: col_sums(A*B) == (e^T A) * B applied via the
    /// fused packing encoders.
    #[test]
    fn checksum_identity_holds(
        m in small_dim(), n in small_dim(), k in small_dim(), seed in 0u64..1000
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed + 3);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut ctx = GemmContext::<f64>::new();
        gemm(&mut ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();

        // encoded prediction
        let mut ar = vec![0.0; k];
        pack::col_sums_scaled(&a.as_ref(), 1.0, &mut ar);
        let mut enc_col = vec![0.0; n];
        checksum::accumulate_enc_col(&b.as_ref(), &ar, &mut enc_col);

        // reference read-back
        let mut ref_row = vec![0.0; m];
        let mut ref_col = vec![0.0; n];
        checksum::encode_c(&c.as_ref(), &mut ref_row, &mut ref_col);

        let scale = 1.0 + k as f64 * m as f64;
        for j in 0..n {
            prop_assert!((enc_col[j] - ref_col[j]).abs() < 1e-12 * scale,
                "col {j}: {} vs {}", enc_col[j], ref_col[j]);
        }
    }

    /// Packing A then reading the packed panels back reproduces alpha*A.
    #[test]
    fn pack_a_round_trip(
        m in 1usize..40, k in 1usize..20, alpha in -2.0f64..2.0, seed in 0u64..1000
    ) {
        let mr = 8;
        let a = mat(m, k, seed);
        let mut out = vec![0.0; m.div_ceil(mr) * mr * k];
        pack::pack_a(&a.as_ref(), alpha, mr, &mut out);
        for i in 0..m {
            for q in 0..k {
                let p = i / mr;
                let v = out[p * mr * k + q * mr + (i % mr)];
                prop_assert!((v - alpha * a.get(i, q)).abs() < 1e-15);
            }
        }
    }

    /// Packing B round-trip.
    #[test]
    fn pack_b_round_trip(
        k in 1usize..20, n in 1usize..40, seed in 0u64..1000
    ) {
        let nr = 4;
        let b = mat(k, n, seed);
        let mut out = vec![0.0; n.div_ceil(nr) * nr * k];
        pack::pack_b(&b.as_ref(), nr, &mut out);
        for p in 0..k {
            for j in 0..n {
                let q = j / nr;
                let v = out[q * nr * k + p * nr + (j % nr)];
                prop_assert!((v - b.get(p, j)).abs() < 1e-15);
            }
        }
    }

    /// Any single injected error (any position, wide magnitude range) is
    /// located and corrected exactly by the checksum corrector.
    #[test]
    fn corrector_fixes_any_single_error(
        m in 2usize..32, n in 2usize..32,
        i in 0usize..32, j in 0usize..32,
        mag in prop::sample::select(vec![1e-3, 1.0, 1e3, 1e9]),
        positive in any::<bool>(),
        seed in 0u64..1000
    ) {
        let i = i % m;
        let j = j % n;
        let clean = mat(m, n, seed);
        let sums = |c: &Matrix<f64>| {
            let mut row = vec![0.0; m];
            let mut col = vec![0.0; n];
            for jj in 0..n { for ii in 0..m {
                row[ii] += c.get(ii, jj);
                col[jj] += c.get(ii, jj);
            }}
            (row, col)
        };
        let (enc_row, enc_col) = sums(&clean);
        let mut dirty = clean.clone();
        let delta = if positive { mag } else { -mag };
        dirty.set(i, j, dirty.get(i, j) + delta);
        let (ref_row, ref_col) = sums(&dirty);

        let th = 1e-4 * mag.min(1.0); // below the injected magnitude
        let rd = find_discrepancies(&enc_row, &ref_row, th);
        let cd = find_discrepancies(&enc_col, &ref_col, th);
        let out = correct_block(&mut dirty.as_mut(), &rd, &cd, th);
        prop_assert!(matches!(out, CorrectionOutcome::Corrected { count: 1 }), "{out:?}");
        prop_assert!(clean.max_abs_diff(&dirty) < 1e-9 * mag.max(1.0));
    }

    /// FT-GEMM with a default config never reports false positives and
    /// matches the oracle, for arbitrary shapes.
    #[test]
    fn ft_gemm_no_false_positives(
        m in small_dim(), n in small_dim(), k in small_dim(), seed in 0u64..500
    ) {
        let a = mat(m, k, seed);
        let b = mat(k, n, seed + 1);
        let mut c = mat(m, n, seed + 2);
        let mut c_ref = c.clone();
        let rep = ft_gemm(&FtConfig::default(), 1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        prop_assert_eq!(rep.detected, 0);
        prop_assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    /// partition_aligned always tiles [0, len) exactly, in order, aligned.
    #[test]
    fn partition_tiles_exactly(
        len in 0usize..10_000, parts in 1usize..64, align in 1usize..64
    ) {
        let mut cursor = 0;
        for p in 0..parts {
            let r = partition_aligned(len, parts, p, align);
            prop_assert_eq!(r.start, cursor);
            prop_assert!(r.start == len || r.start % align == 0);
            cursor = r.end;
        }
        prop_assert_eq!(cursor, len);
    }

    /// Level-1 axpy/dot agree with a scalar model.
    #[test]
    fn level1_axpy_dot_model(
        len in 0usize..300, alpha in -3.0f64..3.0, seed in 0u64..1000
    ) {
        let x: Vec<f64> = (0..len).map(|i| ((i as u64 ^ seed) % 17) as f64 - 8.0).collect();
        let y0: Vec<f64> = (0..len).map(|i| (((i as u64 * 31) ^ seed) % 13) as f64 - 6.0).collect();
        let mut y = y0.clone();
        level1::axpy(alpha, &x, &mut y);
        for i in 0..len {
            prop_assert!((y[i] - (alpha * x[i] + y0[i])).abs() < 1e-12);
        }
        let d = level1::dot(&x, &y0);
        let want: f64 = (0..len).map(|i| x[i] * y0[i]).sum();
        prop_assert!((d - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    /// scale_encode_c is exactly equivalent to scale-then-encode.
    #[test]
    fn fused_c_encode_equivalence(
        m in 1usize..40, n in 1usize..40, beta in -2.0f64..2.0, seed in 0u64..1000
    ) {
        let base = mat(m, n, seed);
        let mut c1 = base.clone();
        let mut c2 = base.clone();
        let (mut er1, mut ec1) = (vec![0.0; m], vec![0.0; n]);
        let (mut er2, mut ec2) = (vec![0.0; m], vec![0.0; n]);
        checksum::scale_encode_c(&mut c1.as_mut(), beta, &mut er1, &mut ec1);
        checksum::scale_then_encode_c(&mut c2.as_mut(), beta, &mut er2, &mut ec2);
        prop_assert_eq!(c1.as_slice(), c2.as_slice());
        for i in 0..m { prop_assert!((er1[i] - er2[i]).abs() < 1e-10); }
        for j in 0..n { prop_assert!((ec1[j] - ec2[j]).abs() < 1e-10); }
    }
}
