//! End-to-end tests of the serving subsystem: concurrent mixed-size traffic
//! must be bit-identical to the serial reference per request, and injected
//! faults under `DetectCorrect` must be corrected and surfaced.

use ftgemm::core::reference::naive_gemm;
use ftgemm::serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
use ftgemm::{FaultInjector, Matrix};
use std::sync::Arc;

fn service(threads: usize, max_batch: usize) -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads,
        max_batch,
        queue_shards: 3,
        // Pin the routing cutoff so the test's size mix deterministically
        // exercises both paths regardless of the config default.
        small_flops_cutoff: 2 * 96 * 96 * 96,
    })
}

/// (a) N concurrent mixed-size requests, submitted from several frontend
/// threads, each produce the same result as a serial naive GEMM.
#[test]
fn concurrent_mixed_sizes_match_serial_reference() {
    // Shapes straddle the small/large cutoff so both paths are exercised;
    // alpha/beta vary per request.
    let shapes = [
        (8usize, 8usize, 8usize),
        (33, 17, 25),
        (64, 64, 64),
        (1, 96, 40),
        (200, 160, 120), // above the pinned cutoff: matrix-parallel path
        (50, 3, 77),
        (128, 128, 96),  // above the pinned cutoff
        (240, 200, 100), // above the pinned cutoff
    ];
    let service = Arc::new(service(4, 4));

    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for (i, &(m, n, k)) in shapes.iter().enumerate() {
                    let seed = (t * 100 + i) as u64;
                    let a = Matrix::<f64>::random(m, k, seed);
                    let b = Matrix::<f64>::random(k, n, seed + 1);
                    let c0 = Matrix::<f64>::random(m, n, seed + 2);
                    let alpha = 1.0 + (i as f64) * 0.25;
                    let beta = if i % 2 == 0 { 0.5 } else { 0.0 };
                    let policy = match i % 3 {
                        0 => FtPolicy::Off,
                        1 => FtPolicy::Detect,
                        _ => FtPolicy::DetectCorrect,
                    };
                    let req = GemmRequest::new(a.clone(), b.clone())
                        .with_alpha(alpha)
                        .with_c(beta, c0.clone())
                        .with_policy(policy);
                    let handle = service.submit(req).unwrap();
                    out.push((a, b, c0, alpha, beta, handle));
                }
                // Wait for all of this thread's requests and check them.
                for (a, b, c0, alpha, beta, handle) in out {
                    let resp = handle.wait().unwrap();
                    let mut expected = c0;
                    naive_gemm(
                        alpha,
                        &a.as_ref(),
                        &b.as_ref(),
                        beta,
                        &mut expected.as_mut(),
                    );
                    let d = resp.c.rel_max_diff(&expected);
                    assert!(d < 1e-10, "diff {d} for {}x{}", a.nrows(), b.ncols());
                    assert_eq!(resp.report.detected, 0, "false positive");
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }

    let snap = service.stats();
    assert_eq!(snap.submitted, (4 * shapes.len()) as u64);
    assert_eq!(snap.completed, snap.submitted);
    assert_eq!(snap.failed, 0);
    // Both routing paths must have been used.
    assert!(snap.direct_large >= 8, "large path unused: {snap:?}");
    assert!(snap.batched_requests > 0, "batched path unused: {snap:?}");
}

/// (b) With a per-request `FaultInjector` and `DetectCorrect`, injected
/// errors are corrected (result matches the clean reference) and surfaced in
/// the request's own `FtReport`.
#[test]
fn injected_errors_corrected_and_surfaced() {
    let service = service(3, 8);
    let mut checks = Vec::new();
    for i in 0..6u64 {
        let (m, n, k) = (96, 80, 64);
        let a = Matrix::<f64>::random(m, k, 10 + i);
        let b = Matrix::<f64>::random(k, n, 20 + i);
        let inj = FaultInjector::counted(300 + i, 2);
        let req = GemmRequest::new(a.clone(), b.clone())
            .with_policy(FtPolicy::DetectCorrect)
            .with_injector(inj);
        checks.push((a, b, service.submit(req).unwrap()));
    }

    let mut total_injected = 0;
    for (a, b, handle) in checks {
        let resp = handle.wait().unwrap();
        let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        assert!(
            resp.c.rel_max_diff(&expected) < 1e-9,
            "corrupted result slipped through: diff {} report {:?}",
            resp.c.rel_max_diff(&expected),
            resp.report
        );
        // Surfaced per request: every injected error was corrected.
        assert!(
            resp.report.injected > 0,
            "injector never fired: {:?}",
            resp.report
        );
        assert_eq!(
            resp.report.corrected, resp.report.injected,
            "{:?}",
            resp.report
        );
        total_injected += resp.report.injected;
    }
    assert!(total_injected >= 6);

    // And service-wide counters aggregate the per-request reports.
    let snap = service.stats();
    assert_eq!(snap.injected, total_injected as u64);
    assert_eq!(snap.corrected, snap.injected);
}

/// Handles outstanding at shutdown still resolve (drain-on-drop), and the
/// final stats balance.
#[test]
fn shutdown_drains_outstanding_requests() {
    let service = service(2, 4);
    let mut handles = Vec::new();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(24, 24, i);
        let b = Matrix::<f64>::random(24, 24, i + 1000);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 32);
    assert_eq!(stats.completed + stats.failed, 32);
    for h in handles {
        h.wait().unwrap();
    }
}
