//! End-to-end tests of the serving subsystem: concurrent mixed-size traffic
//! must be bit-identical to the serial reference per request, and injected
//! faults under `DetectCorrect` must be corrected and surfaced.

use ftgemm::core::reference::naive_gemm;
use ftgemm::serve::exec::block_on_all;
use ftgemm::serve::{
    completion_channel, AdaptiveConfig, FtPolicy, GemmRequest, GemmService, RoutingPolicy,
    ServiceConfig,
};
use ftgemm::{FaultInjector, Matrix};
use std::sync::Arc;

fn service(threads: usize, max_batch: usize) -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads,
        max_batch,
        queue_shards: 3,
        // Pin the routing cutoff so the test's size mix deterministically
        // exercises both paths regardless of the config default.
        routing: RoutingPolicy::Fixed(2 * 96 * 96 * 96),
        ..ServiceConfig::default()
    })
}

/// (a) N concurrent mixed-size requests, submitted from several frontend
/// threads, each produce the same result as a serial naive GEMM.
#[test]
fn concurrent_mixed_sizes_match_serial_reference() {
    // Shapes straddle the small/large cutoff so both paths are exercised;
    // alpha/beta vary per request.
    let shapes = [
        (8usize, 8usize, 8usize),
        (33, 17, 25),
        (64, 64, 64),
        (1, 96, 40),
        (200, 160, 120), // above the pinned cutoff: matrix-parallel path
        (50, 3, 77),
        (128, 128, 96),  // above the pinned cutoff
        (240, 200, 100), // above the pinned cutoff
    ];
    let service = Arc::new(service(4, 4));

    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for (i, &(m, n, k)) in shapes.iter().enumerate() {
                    let seed = (t * 100 + i) as u64;
                    let a = Matrix::<f64>::random(m, k, seed);
                    let b = Matrix::<f64>::random(k, n, seed + 1);
                    let c0 = Matrix::<f64>::random(m, n, seed + 2);
                    let alpha = 1.0 + (i as f64) * 0.25;
                    let beta = if i % 2 == 0 { 0.5 } else { 0.0 };
                    let policy = match i % 3 {
                        0 => FtPolicy::Off,
                        1 => FtPolicy::Detect,
                        _ => FtPolicy::DetectCorrect,
                    };
                    let req = GemmRequest::new(a.clone(), b.clone())
                        .with_alpha(alpha)
                        .with_c(beta, c0.clone())
                        .with_policy(policy);
                    let handle = service.submit(req).unwrap();
                    out.push((a, b, c0, alpha, beta, handle));
                }
                // Wait for all of this thread's requests and check them.
                for (a, b, c0, alpha, beta, handle) in out {
                    let resp = handle.wait().unwrap();
                    let mut expected = c0;
                    naive_gemm(
                        alpha,
                        &a.as_ref(),
                        &b.as_ref(),
                        beta,
                        &mut expected.as_mut(),
                    );
                    let d = resp.c.rel_max_diff(&expected);
                    assert!(d < 1e-10, "diff {d} for {}x{}", a.nrows(), b.ncols());
                    assert_eq!(resp.report.detected, 0, "false positive");
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }

    let snap = service.stats();
    assert_eq!(snap.submitted, (4 * shapes.len()) as u64);
    assert_eq!(snap.completed, snap.submitted);
    assert_eq!(snap.failed, 0);
    // Both routing paths must have been used.
    assert!(snap.direct_large >= 8, "large path unused: {snap:?}");
    assert!(snap.batched_requests > 0, "batched path unused: {snap:?}");
}

/// (b) With a per-request `FaultInjector` and `DetectCorrect`, injected
/// errors are corrected (result matches the clean reference) and surfaced in
/// the request's own `FtReport`.
#[test]
fn injected_errors_corrected_and_surfaced() {
    let service = service(3, 8);
    let mut checks = Vec::new();
    for i in 0..6u64 {
        let (m, n, k) = (96, 80, 64);
        let a = Matrix::<f64>::random(m, k, 10 + i);
        let b = Matrix::<f64>::random(k, n, 20 + i);
        let inj = FaultInjector::counted(300 + i, 2);
        let req = GemmRequest::new(a.clone(), b.clone())
            .with_policy(FtPolicy::DetectCorrect)
            .with_injector(inj);
        checks.push((a, b, service.submit(req).unwrap()));
    }

    let mut total_injected = 0;
    for (a, b, handle) in checks {
        let resp = handle.wait().unwrap();
        let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        assert!(
            resp.c.rel_max_diff(&expected) < 1e-9,
            "corrupted result slipped through: diff {} report {:?}",
            resp.c.rel_max_diff(&expected),
            resp.report
        );
        // Surfaced per request: every injected error was corrected.
        assert!(
            resp.report.injected > 0,
            "injector never fired: {:?}",
            resp.report
        );
        assert_eq!(
            resp.report.corrected, resp.report.injected,
            "{:?}",
            resp.report
        );
        total_injected += resp.report.injected;
    }
    assert!(total_injected >= 6);

    // And service-wide counters aggregate the per-request reports.
    let snap = service.stats();
    assert_eq!(snap.injected, total_injected as u64);
    assert_eq!(snap.corrected, snap.injected);
}

/// (d) 96 concurrent async submissions across both routing paths, driven by
/// one executor thread, each matching the serial reference; the in-flight
/// gauge returns to zero and per-surface counters balance.
#[test]
fn concurrent_async_requests_match_serial_reference() {
    let service = service(3, 8);
    let mut futures = Vec::new();
    let mut references = Vec::new();
    for i in 0..96u64 {
        // Every 8th request is above the pinned cutoff → matrix-parallel.
        let (m, n, k) = if i % 8 == 0 {
            (160, 128, 96)
        } else {
            (40, 32, 24)
        };
        let a = Matrix::<f64>::random(m, k, 700 + i);
        let b = Matrix::<f64>::random(k, n, 800 + i);
        let mut expected = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        futures.push(service.submit_async(GemmRequest::new(a, b)).unwrap());
        references.push(expected);
    }
    assert_eq!(service.stats().in_flight_async, 96);

    let results = block_on_all(futures);
    for (i, (result, expected)) in results.iter().zip(&references).enumerate() {
        let resp = result.as_ref().unwrap();
        let d = resp.c.rel_max_diff(expected);
        assert!(d < 1e-10, "request {i}: diff {d}");
    }

    let snap = service.stats();
    assert_eq!(snap.submitted_async, 96);
    assert_eq!(snap.submitted_sync, 0);
    assert_eq!(snap.completed, 96);
    assert_eq!(snap.in_flight_async, 0);
    assert!(snap.direct_large >= 12, "large path unused: {snap:?}");
    assert!(snap.batched_requests > 0, "batched path unused: {snap:?}");
}

/// (e) The completion-channel bridge: submissions from several threads all
/// drain through one stream, tagged with the ids submit returned.
#[test]
fn streamed_completions_drain_from_many_submitters() {
    let service = Arc::new(service(2, 4));
    let (sink, mut completions) = completion_channel::<f64>();

    let mut expected_ids = Vec::new();
    let submitters: Vec<_> = (0..3)
        .map(|t| {
            let service = Arc::clone(&service);
            let sink = sink.clone();
            std::thread::spawn(move || {
                (0..16u64)
                    .map(|i| {
                        let seed = t * 1000 + i;
                        let a = Matrix::<f64>::random(20, 20, seed);
                        let b = Matrix::<f64>::random(20, 20, seed + 1);
                        service
                            .submit_streamed(GemmRequest::new(a, b), &sink)
                            .unwrap()
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    for s in submitters {
        expected_ids.extend(s.join().unwrap());
    }

    let mut got_ids = Vec::new();
    while let Some(completion) = completions.recv() {
        completion.result.unwrap();
        got_ids.push(completion.id);
    }
    expected_ids.sort_unstable();
    got_ids.sort_unstable();
    assert_eq!(got_ids, expected_ids);
    assert_eq!(service.stats().submitted_streamed, 48);
}

/// (f) Batch-path load metrics accumulate: after batched traffic the
/// per-thread busy times are populated, bounded by the summed region wall
/// time, and the derived occupancy is a sane fraction.
#[test]
fn batch_load_metrics_populated() {
    let service = service(2, 8);
    let mut handles = Vec::new();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(48, 48, i);
        let b = Matrix::<f64>::random(48, 48, i + 300);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }
    let snap = service.stats();
    assert_eq!(snap.batch_busy_per_thread.len(), 2);
    assert!(snap.batch_wall > std::time::Duration::ZERO);
    let slack = std::time::Duration::from_millis(2);
    for (t, busy) in snap.batch_busy_per_thread.iter().enumerate() {
        assert!(
            *busy <= snap.batch_wall + slack,
            "thread {t} busy {busy:?} exceeds wall {:?}",
            snap.batch_wall
        );
    }
    assert!(snap.batch_thread_occupancy > 0.0);
    assert!(snap.batch_thread_occupancy <= 1.0 + 1e-6);
}

/// (g) Adaptive routing converges away from the seed under a mixed
/// workload of real traffic. Which *direction* the machine's timings imply
/// is itself machine- and load-dependent (that is the point of learning
/// it), and the learner's direction rule is pinned deterministically with
/// synthetic timings in `ftgemm_serve::routing`'s unit tests
/// (`parallel_slower_everywhere_pushes_cutoff_up` and its dual); what this
/// end-to-end test asserts is the deterministic part of the contract:
/// both paths feed observations, the first eligible re-estimate always
/// moves the published cutoff off the seed (every reachable target
/// differs from it), and the scheduler's routing coherently follows the
/// moved value.
#[test]
fn adaptive_cutoff_moves_off_seed_and_routing_follows() {
    const SMALL: usize = 96; // routed batched by the seed below
    const LARGE: usize = 160; // routed matrix-parallel by the seed below
    let small_flops = 2 * (SMALL as u64).pow(3);
    let large_flops = 2 * (LARGE as u64).pow(3);

    let seed = 2 * 128 * 128 * 128;
    assert!(
        small_flops < seed && seed < large_flops,
        "workload must straddle the seed"
    );
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 4,
        max_batch: 4,
        routing: RoutingPolicy::Adaptive(AdaptiveConfig {
            seed_cutoff: seed,
            min_observations: 2,
            update_interval: 8,
            ..AdaptiveConfig::default()
        }),
        ..ServiceConfig::default()
    });
    assert_eq!(service.current_cutoff(), seed, "learner not seeded");

    // Sequential mixed traffic: every run() completes before the next is
    // submitted, so each size lands squarely on the path the live cutoff
    // dictates and both paths produce clean per-request timings.
    for i in 0..48u64 {
        let dim = if i % 2 == 0 { SMALL } else { LARGE };
        let a = Matrix::<f64>::random(dim, dim, i);
        let b = Matrix::<f64>::random(dim, dim, i + 4_000);
        service.run(GemmRequest::new(a, b)).unwrap();
    }

    let snap = service.stats();
    assert!(
        snap.routing_batched_observations > 0,
        "batched path never observed: {snap:?}"
    );
    assert!(
        snap.routing_parallel_observations > 0,
        "parallel path never observed: {snap:?}"
    );
    // By observation 8 both paths have >= min_observations, and no
    // reachable re-estimate target equals the power-of-two seed (targets
    // are the clamps or `2^b - 1`), so the cutoff must have updated.
    assert!(snap.cutoff_updates >= 1, "cutoff never updated: {snap:?}");
    // "Moved away from the seed": either it sits off the seed now, or it
    // moved and noise walked it back (which still takes >= 2 updates).
    assert!(
        snap.current_cutoff != seed || snap.cutoff_updates >= 2,
        "cutoff never left the seed: {snap:?}"
    );
    assert_eq!(service.current_cutoff(), snap.current_cutoff);

    // Routing must follow the learned value. Asserting on the *past*
    // traffic's path counts is racy — the cutoff may cross the
    // [small, large] bracket on its very last update, after the request
    // that could have proven it — so probe with fresh requests instead:
    // with no other traffic in flight, the cutoff read here is exactly the
    // one the scheduler dispatches the next sequential request by (updates
    // only happen on observation boundaries, i.e. between these runs).
    assert_eq!(snap.batched_requests + snap.direct_large, 48);
    for probe in 0..4u64 {
        let dim = if probe % 2 == 0 { SMALL } else { LARGE };
        let flops = 2 * (dim as u64).pow(3);
        let live_cutoff = service.current_cutoff();
        let a = Matrix::<f64>::random(dim, dim, 90_000 + probe);
        let b = Matrix::<f64>::random(dim, dim, 91_000 + probe);
        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert_eq!(
            resp.batched,
            flops <= live_cutoff,
            "probe {probe}: {dim}^3 ({flops} flops) did not follow the live \
             cutoff {live_cutoff}"
        );
    }
}

/// (h) Routing choice never changes numerical results: the same problems
/// through an all-batched service, an all-parallel service, and an
/// adaptive service (whose cutoff is free to move mid-run) produce
/// bit-identical outputs. Both execution paths preserve each element's
/// accumulation order, so this is exact equality on the bits, not a
/// tolerance check.
#[test]
fn routing_choice_never_changes_results() {
    let mk_service = |routing| {
        GemmService::<f64>::new(ServiceConfig {
            threads: 3,
            max_batch: 4,
            routing,
            ..ServiceConfig::default()
        })
    };
    let all_batched = mk_service(RoutingPolicy::Fixed(u64::MAX));
    let all_parallel = mk_service(RoutingPolicy::Fixed(0));
    let adaptive = mk_service(RoutingPolicy::Adaptive(AdaptiveConfig {
        seed_cutoff: 2 * 64 * 64 * 64,
        min_observations: 1,
        update_interval: 4,
        ..AdaptiveConfig::default()
    }));

    let shapes = [(48usize, 40usize, 32usize), (96, 80, 64), (130, 110, 70)];
    for round in 0..4u64 {
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            let seed = round * 100 + i as u64;
            let a = Matrix::<f64>::random(m, k, seed);
            let b = Matrix::<f64>::random(k, n, seed + 1);
            let c0 = Matrix::<f64>::random(m, n, seed + 2);
            let policy = if i % 2 == 0 {
                FtPolicy::DetectCorrect
            } else {
                FtPolicy::Off
            };
            let req = || {
                GemmRequest::new(a.clone(), b.clone())
                    .with_alpha(1.25)
                    .with_c(0.5, c0.clone())
                    .with_policy(policy)
            };
            let batched = all_batched.run(req()).unwrap();
            let parallel = all_parallel.run(req()).unwrap();
            let learned = adaptive.run(req()).unwrap();
            assert!(batched.batched, "forced-batched service took large path");
            assert!(!parallel.batched, "forced-parallel service batched");

            let bits = |m: &Matrix<f64>| -> Vec<u64> {
                m.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(
                bits(&batched.c),
                bits(&parallel.c),
                "paths disagree at {m}x{n}x{k} round {round}"
            );
            assert_eq!(
                bits(&learned.c),
                bits(&batched.c),
                "adaptive routing changed bits at {m}x{n}x{k} round {round}"
            );
        }
    }
    // The adaptive service genuinely saw traffic (and possibly moved its
    // cutoff) during the comparison.
    let snap = adaptive.stats();
    assert_eq!(snap.completed, 12);
    assert!(snap.routing_batched_observations + snap.routing_parallel_observations > 0);
}

/// Satellite regression (counter race): `submitted` is counted at
/// admission, so a snapshot racing the scheduler can never observe
/// `completed + failed > submitted`. Hammers tiny requests from several
/// submitter threads while a watcher thread validates every snapshot.
#[test]
fn snapshot_invariant_holds_under_concurrent_submit() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let service = Arc::new(GemmService::<f64>::new(ServiceConfig {
        threads: 2,
        max_batch: 8,
        ..ServiceConfig::default()
    }));
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut checked = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = service.stats();
                assert!(
                    snap.completed + snap.failed <= snap.submitted,
                    "invariant violated: {snap:?}"
                );
                checked += 1;
            }
            checked
        })
    };

    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..64u64 {
                    let seed = t * 1_000 + i;
                    let a = Matrix::<f64>::random(8, 8, seed);
                    let b = Matrix::<f64>::random(8, 8, seed + 1);
                    // Tiny problems complete almost instantly, maximizing
                    // the submit/complete race window the fix closes.
                    service
                        .submit(GemmRequest::new(a, b))
                        .unwrap()
                        .wait()
                        .unwrap();
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    assert!(watcher.join().unwrap() > 0, "watcher never snapshotted");

    let snap = service.stats();
    assert_eq!(snap.submitted, 256);
    assert_eq!(snap.completed + snap.failed, 256);
}

/// Satellite regression (counter rollback): submissions rejected by a full
/// bounded queue must not inflate `submitted` — the admission count is
/// rolled back, so accepted == completed == submitted once drained.
#[test]
fn rejected_submissions_do_not_inflate_counters() {
    let service = GemmService::<f64>::new(ServiceConfig {
        threads: 1,
        max_batch: 1,
        queue_capacity: 2,
        ..ServiceConfig::default()
    });
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..64u64 {
        let a = Matrix::<f64>::random(32, 32, i);
        let b = Matrix::<f64>::random(32, 32, i + 1);
        match service.submit_async(GemmRequest::new(a, b)) {
            Ok(fut) => accepted.push(fut),
            Err(ftgemm::serve::ServeError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let accepted_count = accepted.len() as u64;
    for result in block_on_all(accepted) {
        result.unwrap();
    }
    let snap = service.stats();
    assert_eq!(accepted_count + rejected, 64);
    assert_eq!(
        snap.submitted, accepted_count,
        "rejections leaked into submitted"
    );
    assert_eq!(snap.submitted_async, accepted_count);
    assert_eq!(snap.completed, accepted_count);
}

/// Handles outstanding at shutdown still resolve (drain-on-drop), and the
/// final stats balance.
#[test]
fn shutdown_drains_outstanding_requests() {
    let service = service(2, 4);
    let mut handles = Vec::new();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(24, 24, i);
        let b = Matrix::<f64>::random(24, 24, i + 1000);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 32);
    assert_eq!(stats.completed + stats.failed, 32);
    for h in handles {
        h.wait().unwrap();
    }
}
