//! End-to-end tests of the serving subsystem: concurrent mixed-size traffic
//! must be bit-identical to the serial reference per request, and injected
//! faults under `DetectCorrect` must be corrected and surfaced.

use ftgemm::core::reference::naive_gemm;
use ftgemm::serve::exec::block_on_all;
use ftgemm::serve::{completion_channel, FtPolicy, GemmRequest, GemmService, ServiceConfig};
use ftgemm::{FaultInjector, Matrix};
use std::sync::Arc;

fn service(threads: usize, max_batch: usize) -> GemmService<f64> {
    GemmService::new(ServiceConfig {
        threads,
        max_batch,
        queue_shards: 3,
        // Pin the routing cutoff so the test's size mix deterministically
        // exercises both paths regardless of the config default.
        small_flops_cutoff: 2 * 96 * 96 * 96,
        ..ServiceConfig::default()
    })
}

/// (a) N concurrent mixed-size requests, submitted from several frontend
/// threads, each produce the same result as a serial naive GEMM.
#[test]
fn concurrent_mixed_sizes_match_serial_reference() {
    // Shapes straddle the small/large cutoff so both paths are exercised;
    // alpha/beta vary per request.
    let shapes = [
        (8usize, 8usize, 8usize),
        (33, 17, 25),
        (64, 64, 64),
        (1, 96, 40),
        (200, 160, 120), // above the pinned cutoff: matrix-parallel path
        (50, 3, 77),
        (128, 128, 96),  // above the pinned cutoff
        (240, 200, 100), // above the pinned cutoff
    ];
    let service = Arc::new(service(4, 4));

    let submitters: Vec<_> = (0..4)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                for (i, &(m, n, k)) in shapes.iter().enumerate() {
                    let seed = (t * 100 + i) as u64;
                    let a = Matrix::<f64>::random(m, k, seed);
                    let b = Matrix::<f64>::random(k, n, seed + 1);
                    let c0 = Matrix::<f64>::random(m, n, seed + 2);
                    let alpha = 1.0 + (i as f64) * 0.25;
                    let beta = if i % 2 == 0 { 0.5 } else { 0.0 };
                    let policy = match i % 3 {
                        0 => FtPolicy::Off,
                        1 => FtPolicy::Detect,
                        _ => FtPolicy::DetectCorrect,
                    };
                    let req = GemmRequest::new(a.clone(), b.clone())
                        .with_alpha(alpha)
                        .with_c(beta, c0.clone())
                        .with_policy(policy);
                    let handle = service.submit(req).unwrap();
                    out.push((a, b, c0, alpha, beta, handle));
                }
                // Wait for all of this thread's requests and check them.
                for (a, b, c0, alpha, beta, handle) in out {
                    let resp = handle.wait().unwrap();
                    let mut expected = c0;
                    naive_gemm(
                        alpha,
                        &a.as_ref(),
                        &b.as_ref(),
                        beta,
                        &mut expected.as_mut(),
                    );
                    let d = resp.c.rel_max_diff(&expected);
                    assert!(d < 1e-10, "diff {d} for {}x{}", a.nrows(), b.ncols());
                    assert_eq!(resp.report.detected, 0, "false positive");
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().unwrap();
    }

    let snap = service.stats();
    assert_eq!(snap.submitted, (4 * shapes.len()) as u64);
    assert_eq!(snap.completed, snap.submitted);
    assert_eq!(snap.failed, 0);
    // Both routing paths must have been used.
    assert!(snap.direct_large >= 8, "large path unused: {snap:?}");
    assert!(snap.batched_requests > 0, "batched path unused: {snap:?}");
}

/// (b) With a per-request `FaultInjector` and `DetectCorrect`, injected
/// errors are corrected (result matches the clean reference) and surfaced in
/// the request's own `FtReport`.
#[test]
fn injected_errors_corrected_and_surfaced() {
    let service = service(3, 8);
    let mut checks = Vec::new();
    for i in 0..6u64 {
        let (m, n, k) = (96, 80, 64);
        let a = Matrix::<f64>::random(m, k, 10 + i);
        let b = Matrix::<f64>::random(k, n, 20 + i);
        let inj = FaultInjector::counted(300 + i, 2);
        let req = GemmRequest::new(a.clone(), b.clone())
            .with_policy(FtPolicy::DetectCorrect)
            .with_injector(inj);
        checks.push((a, b, service.submit(req).unwrap()));
    }

    let mut total_injected = 0;
    for (a, b, handle) in checks {
        let resp = handle.wait().unwrap();
        let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        assert!(
            resp.c.rel_max_diff(&expected) < 1e-9,
            "corrupted result slipped through: diff {} report {:?}",
            resp.c.rel_max_diff(&expected),
            resp.report
        );
        // Surfaced per request: every injected error was corrected.
        assert!(
            resp.report.injected > 0,
            "injector never fired: {:?}",
            resp.report
        );
        assert_eq!(
            resp.report.corrected, resp.report.injected,
            "{:?}",
            resp.report
        );
        total_injected += resp.report.injected;
    }
    assert!(total_injected >= 6);

    // And service-wide counters aggregate the per-request reports.
    let snap = service.stats();
    assert_eq!(snap.injected, total_injected as u64);
    assert_eq!(snap.corrected, snap.injected);
}

/// (d) 96 concurrent async submissions across both routing paths, driven by
/// one executor thread, each matching the serial reference; the in-flight
/// gauge returns to zero and per-surface counters balance.
#[test]
fn concurrent_async_requests_match_serial_reference() {
    let service = service(3, 8);
    let mut futures = Vec::new();
    let mut references = Vec::new();
    for i in 0..96u64 {
        // Every 8th request is above the pinned cutoff → matrix-parallel.
        let (m, n, k) = if i % 8 == 0 {
            (160, 128, 96)
        } else {
            (40, 32, 24)
        };
        let a = Matrix::<f64>::random(m, k, 700 + i);
        let b = Matrix::<f64>::random(k, n, 800 + i);
        let mut expected = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        futures.push(service.submit_async(GemmRequest::new(a, b)).unwrap());
        references.push(expected);
    }
    assert_eq!(service.stats().in_flight_async, 96);

    let results = block_on_all(futures);
    for (i, (result, expected)) in results.iter().zip(&references).enumerate() {
        let resp = result.as_ref().unwrap();
        let d = resp.c.rel_max_diff(expected);
        assert!(d < 1e-10, "request {i}: diff {d}");
    }

    let snap = service.stats();
    assert_eq!(snap.submitted_async, 96);
    assert_eq!(snap.submitted_sync, 0);
    assert_eq!(snap.completed, 96);
    assert_eq!(snap.in_flight_async, 0);
    assert!(snap.direct_large >= 12, "large path unused: {snap:?}");
    assert!(snap.batched_requests > 0, "batched path unused: {snap:?}");
}

/// (e) The completion-channel bridge: submissions from several threads all
/// drain through one stream, tagged with the ids submit returned.
#[test]
fn streamed_completions_drain_from_many_submitters() {
    let service = Arc::new(service(2, 4));
    let (sink, mut completions) = completion_channel::<f64>();

    let mut expected_ids = Vec::new();
    let submitters: Vec<_> = (0..3)
        .map(|t| {
            let service = Arc::clone(&service);
            let sink = sink.clone();
            std::thread::spawn(move || {
                (0..16u64)
                    .map(|i| {
                        let seed = t * 1000 + i;
                        let a = Matrix::<f64>::random(20, 20, seed);
                        let b = Matrix::<f64>::random(20, 20, seed + 1);
                        service
                            .submit_streamed(GemmRequest::new(a, b), &sink)
                            .unwrap()
                    })
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    for s in submitters {
        expected_ids.extend(s.join().unwrap());
    }

    let mut got_ids = Vec::new();
    while let Some(completion) = completions.recv() {
        completion.result.unwrap();
        got_ids.push(completion.id);
    }
    expected_ids.sort_unstable();
    got_ids.sort_unstable();
    assert_eq!(got_ids, expected_ids);
    assert_eq!(service.stats().submitted_streamed, 48);
}

/// (f) Batch-path load metrics accumulate: after batched traffic the
/// per-thread busy times are populated, bounded by the summed region wall
/// time, and the derived occupancy is a sane fraction.
#[test]
fn batch_load_metrics_populated() {
    let service = service(2, 8);
    let mut handles = Vec::new();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(48, 48, i);
        let b = Matrix::<f64>::random(48, 48, i + 300);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    for h in handles {
        h.wait().unwrap();
    }
    let snap = service.stats();
    assert_eq!(snap.batch_busy_per_thread.len(), 2);
    assert!(snap.batch_wall > std::time::Duration::ZERO);
    let slack = std::time::Duration::from_millis(2);
    for (t, busy) in snap.batch_busy_per_thread.iter().enumerate() {
        assert!(
            *busy <= snap.batch_wall + slack,
            "thread {t} busy {busy:?} exceeds wall {:?}",
            snap.batch_wall
        );
    }
    assert!(snap.batch_thread_occupancy > 0.0);
    assert!(snap.batch_thread_occupancy <= 1.0 + 1e-6);
}

/// Handles outstanding at shutdown still resolve (drain-on-drop), and the
/// final stats balance.
#[test]
fn shutdown_drains_outstanding_requests() {
    let service = service(2, 4);
    let mut handles = Vec::new();
    for i in 0..32u64 {
        let a = Matrix::<f64>::random(24, 24, i);
        let b = Matrix::<f64>::random(24, 24, i + 1000);
        handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 32);
    assert_eq!(stats.completed + stats.failed, 32);
    for h in handles {
        h.wait().unwrap();
    }
}
