//! Cross-crate integration: every GEMM implementation in the workspace
//! agrees with the naive oracle over a grid of shapes, scalars, and ISA
//! tiers, including through the public facade.

use ftgemm::baselines::{BlockedGemm, NaiveGemm, ReferenceGemm, ReferenceParGemm, Tier};
use ftgemm::core::reference::naive_gemm;
use ftgemm::core::{gemm, GemmContext, IsaLevel, Matrix};
use ftgemm::parallel::{par_gemm, ParGemmContext};
use ftgemm::{ft_gemm, par_ft_gemm, FtConfig};

const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 1, 3),
    (16, 8, 4),
    (17, 19, 23),
    (64, 64, 64),
    (96, 33, 120),
    (128, 128, 128),
    (130, 70, 150),
];

/// Returns `(A, B, (C0, alpha*A*B + beta*C0))` with deterministic contents.
#[allow(clippy::type_complexity)]
fn oracle(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    beta: f64,
) -> (Matrix<f64>, Matrix<f64>, (Matrix<f64>, Matrix<f64>)) {
    let a = Matrix::<f64>::random(m, k, 1000 + m as u64);
    let b = Matrix::<f64>::random(k, n, 2000 + n as u64);
    let mut c = Matrix::<f64>::random(m, n, 3000 + k as u64);
    let c0 = c.clone();
    naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c.as_mut());
    (a, b, (c0, c))
}

#[test]
fn serial_gemm_grid() {
    for &(m, n, k) in SHAPES {
        for &(alpha, beta) in &[(1.0, 1.0), (0.5, -1.0), (1.0, 0.0)] {
            let (a, b, (c0, c_exp)) = oracle(m, n, k, alpha, beta);
            let mut ctx = GemmContext::<f64>::new();
            let mut c = c0.clone();
            gemm(
                &mut ctx,
                alpha,
                &a.as_ref(),
                &b.as_ref(),
                beta,
                &mut c.as_mut(),
            )
            .unwrap();
            assert!(
                c.rel_max_diff(&c_exp) < 1e-10,
                "gemm {m}x{n}x{k} a={alpha} b={beta}"
            );
        }
    }
}

#[test]
fn ft_gemm_grid() {
    for &(m, n, k) in SHAPES {
        let (a, b, (c0, c_exp)) = oracle(m, n, k, 1.0, 1.0);
        let mut c = c0.clone();
        let rep = ft_gemm(
            &FtConfig::default(),
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        assert!(c.rel_max_diff(&c_exp) < 1e-10, "ft {m}x{n}x{k}");
        assert_eq!(rep.detected, 0, "false positive at {m}x{n}x{k}");
    }
}

#[test]
fn parallel_gemm_grid() {
    for threads in [2, 5] {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        for &(m, n, k) in SHAPES {
            let (a, b, (c0, c_exp)) = oracle(m, n, k, 1.0, 1.0);
            let mut c = c0.clone();
            par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut()).unwrap();
            assert!(
                c.rel_max_diff(&c_exp) < 1e-10,
                "par {m}x{n}x{k} t={threads}"
            );
        }
    }
}

#[test]
fn parallel_ft_gemm_grid() {
    let ctx = ParGemmContext::<f64>::with_threads(4);
    for &(m, n, k) in SHAPES {
        let (a, b, (c0, c_exp)) = oracle(m, n, k, 1.0, 1.0);
        let mut c = c0.clone();
        let rep = par_ft_gemm(
            &ctx,
            &FtConfig::default(),
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        assert!(c.rel_max_diff(&c_exp) < 1e-10, "par-ft {m}x{n}x{k}");
        assert_eq!(rep.detected, 0, "false positive at {m}x{n}x{k}");
    }
}

#[test]
fn baselines_grid() {
    for &(m, n, k) in &SHAPES[..6] {
        let (a, b, (c0, c_exp)) = oracle(m, n, k, 1.0, 1.0);

        let mut c = c0.clone();
        NaiveGemm.run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut());
        assert!(c.rel_max_diff(&c_exp) < 1e-10, "naive {m}x{n}x{k}");

        let mut c = c0.clone();
        BlockedGemm::default().run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut());
        assert!(c.rel_max_diff(&c_exp) < 1e-10, "blocked {m}x{n}x{k}");

        for tier in [Tier::Blis, Tier::OpenBlas, Tier::Mkl] {
            let mut g = ReferenceGemm::<f64>::new(tier);
            let mut c = c0.clone();
            g.run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut())
                .unwrap();
            assert!(c.rel_max_diff(&c_exp) < 1e-10, "{} {m}x{n}x{k}", g.name());

            let gp = ReferenceParGemm::<f64>::new(tier, 3);
            let mut c = c0.clone();
            gp.run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut())
                .unwrap();
            assert!(
                c.rel_max_diff(&c_exp) < 1e-10,
                "par {} {m}x{n}x{k}",
                gp.name()
            );
        }
    }
}

#[test]
fn all_isa_tiers_agree_with_each_other() {
    let (m, n, k) = (97, 85, 110);
    let a = Matrix::<f64>::random(m, k, 5);
    let b = Matrix::<f64>::random(k, n, 6);
    let mut results = Vec::new();
    for isa in IsaLevel::available() {
        let mut ctx = GemmContext::<f64>::with_isa(isa);
        let mut c = Matrix::<f64>::zeros(m, n);
        gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        results.push((isa, c));
    }
    for w in results.windows(2) {
        let d = w[0].1.rel_max_diff(&w[1].1);
        assert!(d < 1e-12, "{} vs {} differ by {d}", w[0].0, w[1].0);
    }
}

#[test]
fn serial_and_parallel_bitwise_consistent_structure() {
    // Not bit-identical in general (different summation splits), but well
    // within the analytic bound.
    let (m, n, k) = (150, 130, 170);
    let a = Matrix::<f64>::random(m, k, 7);
    let b = Matrix::<f64>::random(k, n, 8);
    let mut c1 = Matrix::<f64>::zeros(m, n);
    let mut c2 = Matrix::<f64>::zeros(m, n);
    let mut ctx = GemmContext::<f64>::new();
    gemm(
        &mut ctx,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c1.as_mut(),
    )
    .unwrap();
    let par = ParGemmContext::<f64>::with_threads(6);
    par_gemm(&par, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c2.as_mut()).unwrap();
    assert!(c1.rel_max_diff(&c2) < 1e-12);
}

#[test]
fn facade_reexports_work() {
    // The one-stop `ftgemm` API surface: types reachable, call compiles.
    let a = ftgemm::Matrix::<f64>::identity(8);
    let b = ftgemm::Matrix::<f64>::identity(8);
    let mut c = ftgemm::Matrix::<f64>::zeros(8, 8);
    let mut ctx = ftgemm::GemmContext::<f64>::new();
    ftgemm::gemm(
        &mut ctx,
        1.0,
        &a.as_ref(),
        &b.as_ref(),
        0.0,
        &mut c.as_mut(),
    )
    .unwrap();
    assert_eq!(c.get(3, 3), 1.0);
}
