//! Property tests for the serving layer and the batched driver it rides on:
//! batched execution over an arbitrary batch must equal a per-request serial
//! `ft_gemm` loop, and the service must agree with the oracle for arbitrary
//! shapes, policies, and batch geometry.

use ftgemm::abft::{ft_gemm, FtConfig};
use ftgemm::core::reference::naive_gemm;
use ftgemm::core::Matrix;
use ftgemm::parallel::{par_batch_ft_gemm, BatchItem, BatchWorkspace, ParGemmContext};
use ftgemm::serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// par_batch_ft_gemm over a randomly sized batch of randomly shaped
    /// problems equals running ft_gemm serially per item.
    #[test]
    fn batch_equals_serial_ft_gemm_loop(
        batch_len in 1usize..12, threads in 1usize..6,
        alpha in -2.0f64..2.0, beta in -2.0f64..2.0, seed in 0u64..500
    ) {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        let ws = BatchWorkspace::new(&ctx);
        let cfg = FtConfig::default();

        let mut problems = Vec::new();
        for i in 0..batch_len {
            let s = seed + i as u64 * 13;
            let (m, n, k) = (1 + (s % 60) as usize, 1 + (s % 47) as usize, 1 + (s % 33) as usize);
            problems.push((
                Matrix::<f64>::random(m, k, s),
                Matrix::<f64>::random(k, n, s + 1),
                Matrix::<f64>::random(m, n, s + 2),
            ));
        }
        let mut expected: Vec<Matrix<f64>> = problems.iter().map(|(_, _, c)| c.clone()).collect();
        for ((a, b, _), c_exp) in problems.iter().zip(expected.iter_mut()) {
            ft_gemm(&cfg, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_exp.as_mut()).unwrap();
        }

        let mut items: Vec<BatchItem<'_, f64>> = problems
            .iter_mut()
            .map(|(a, b, c)| BatchItem {
                alpha,
                a: a.as_ref(),
                b: b.as_ref(),
                beta,
                c: c.as_mut(),
                cfg: Some(&cfg),
            })
            .collect();
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);

        for (i, r) in results.iter().enumerate() {
            prop_assert_eq!(r.as_ref().unwrap().detected, 0, "item {}", i);
        }
        for (i, ((_, _, c), c_exp)) in problems.iter().zip(expected.iter()).enumerate() {
            prop_assert!(c.rel_max_diff(c_exp) < 1e-12, "item {} diff {}", i, c.rel_max_diff(c_exp));
        }
    }

    /// The service agrees with the naive oracle for arbitrary geometry,
    /// thread counts, batching limits, and policies.
    #[test]
    fn service_matches_oracle(
        n_requests in 1usize..10, threads in 1usize..5,
        max_batch in 1usize..6, policy_pick in 0usize..3, seed in 0u64..300
    ) {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads,
            max_batch,
            queue_shards: 2,
            ..ServiceConfig::default()
        });
        let policy = [FtPolicy::Off, FtPolicy::Detect, FtPolicy::DetectCorrect][policy_pick];

        let mut pending = Vec::new();
        for i in 0..n_requests {
            let s = seed + i as u64 * 31;
            let (m, n, k) = (1 + (s % 70) as usize, 1 + (s % 51) as usize, 1 + (s % 41) as usize);
            let a = Matrix::<f64>::random(m, k, s);
            let b = Matrix::<f64>::random(k, n, s + 1);
            let req = GemmRequest::new(a.clone(), b.clone()).with_policy(policy);
            let handle = service.submit(req).unwrap();
            pending.push((a, b, handle));
        }
        for (a, b, handle) in pending {
            let resp = handle.wait().unwrap();
            let mut expected = Matrix::<f64>::zeros(a.nrows(), b.ncols());
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
            prop_assert!(resp.c.rel_max_diff(&expected) < 1e-10);
            prop_assert_eq!(resp.report.detected, 0);
        }
        let snap = service.stats();
        prop_assert_eq!(snap.completed, n_requests as u64);
        prop_assert_eq!(snap.failed, 0);
    }
}
