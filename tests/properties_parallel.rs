//! Property-based tests for the parallel drivers and the pool substrate:
//! arbitrary shapes and thread counts must agree with the serial oracle,
//! and fault-injection campaigns must preserve correctness.

use ftgemm::abft::FtConfig;
use ftgemm::core::reference::naive_gemm;
use ftgemm::core::Matrix;
use ftgemm::faults::{ErrorModel, FaultInjector, Rate};
use ftgemm::parallel::{par_ft_gemm, par_gemm, ParGemmContext};
use ftgemm::pool::{ShardedBuffer, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel GEMM equals the naive oracle for arbitrary shapes and
    /// thread counts (including more threads than rows).
    #[test]
    fn par_gemm_matches_oracle(
        m in 1usize..96, n in 1usize..96, k in 1usize..64,
        threads in 1usize..7, seed in 0u64..500
    ) {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        let a = Matrix::<f64>::random(m, k, seed);
        let b = Matrix::<f64>::random(k, n, seed + 1);
        let mut c = Matrix::<f64>::random(m, n, seed + 2);
        let mut c_ref = c.clone();
        par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        prop_assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    /// Parallel FT-GEMM under injection still produces the clean result.
    #[test]
    fn par_ft_gemm_corrects_under_injection(
        m in 32usize..128, n in 32usize..128, k in 16usize..96,
        threads in 2usize..6, errors in 1usize..4, seed in 0u64..300
    ) {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        let a = Matrix::<f64>::random(m, k, seed);
        let b = Matrix::<f64>::random(k, n, seed + 1);
        let mut truth = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut truth.as_mut());

        let inj = FaultInjector::new(seed, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(errors));
        let cfg = FtConfig::with_injector(inj);
        let mut c = Matrix::<f64>::zeros(m, n);
        match par_ft_gemm(&ctx, &cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()) {
            Ok(rep) => {
                prop_assert!(
                    truth.rel_max_diff(&c) < 1e-9,
                    "diff {} rep {rep:?}", truth.rel_max_diff(&c)
                );
                prop_assert_eq!(rep.corrected, rep.injected);
            }
            // Colliding patterns are flagged, never silent — acceptable.
            Err(_) => {}
        }
    }

    /// Pool partition + barrier: every element of a shared vector is
    /// written exactly once regardless of geometry.
    #[test]
    fn pool_partition_covers_all(
        len in 0usize..2048, threads in 1usize..9, align in 1usize..32
    ) {
        let pool = ThreadPool::new(threads);
        let counter = AtomicUsize::new(0);
        pool.run(|w| {
            let r = w.partition(len, align);
            counter.fetch_add(r.len(), Ordering::Relaxed);
            w.barrier();
        });
        prop_assert_eq!(counter.load(Ordering::Relaxed), len);
    }

    /// Sharded reduction equals a serial sum for arbitrary lane counts.
    #[test]
    fn sharded_reduce_matches_serial(
        lanes in 1usize..9, len in 0usize..256, seed in 0u64..100
    ) {
        let buf = ShardedBuffer::<f64>::new(lanes, len);
        let mut expected = vec![0.0; len];
        for t in 0..lanes {
            // SAFETY: sequential exclusive access in the test.
            let lane = unsafe { buf.lane_mut(t) };
            for (i, v) in lane.iter_mut().enumerate() {
                *v = ((seed as usize + t * 31 + i * 7) % 23) as f64 - 11.0;
                expected[i] += *v;
            }
        }
        let mut out = vec![0.0; len];
        buf.reduce_into(&mut out, |x, y| x + y);
        for i in 0..len {
            prop_assert!((out[i] - expected[i]).abs() < 1e-12);
        }
    }
}
