//! The unified GEMM operation API: describe once, plan once, execute many.
//!
//! The workspace historically grew four unrelated one-shot entry points
//! (`ft_gemm`, `ft_gemm_with_ctx`, `par_ft_gemm`, `par_batch_ft_gemm`) with
//! two context types callers had to thread by hand. This module folds them
//! behind one typed builder in the spirit of faer-rs's operation builders:
//!
//! ```
//! use ftgemm::api::{Exec, GemmOp};
//! use ftgemm::{FtPolicy, Matrix};
//!
//! let a = Matrix::<f64>::random(64, 48, 1);
//! let b = Matrix::<f64>::random(48, 40, 2);
//! let mut c = Matrix::<f64>::zeros(64, 40);
//!
//! // Describe the problem, validate + preallocate once, run many times.
//! let mut plan = GemmOp::new(&a, &b)
//!     .alpha(1.0)
//!     .beta(0.0)
//!     .ft(FtPolicy::DetectCorrect)
//!     .plan(Exec::Auto)
//!     .unwrap();
//! for _ in 0..3 {
//!     let report = plan.run(&mut c.as_mut()).unwrap();
//!     assert_eq!(report.detected, 0);
//! }
//! ```
//!
//! * [`GemmOp`] — a problem description: operands, `alpha`/`beta`, and one
//!   [`FtPolicy`](crate::FtPolicy) shared with the serving layer.
//! * [`Exec`] — where it runs: [`Serial`](Exec::Serial),
//!   [`Parallel`](Exec::Parallel) on a caller's pool, or
//!   [`Auto`](Exec::Auto), which routes through the same flops cutoff
//!   [`GemmService`](crate::GemmService) uses.
//! * [`GemmPlan`] — shapes validated, blocking parameters fixed, checksum
//!   workspaces and thread context preallocated; repeated
//!   [`run`](GemmPlan::run) calls perform **zero heap allocation**.
//! * [`GemmBatch`] — the batched driver under the same roof: many small
//!   problems through one parallel region with reusable per-thread
//!   workspaces.
//!
//! The pre-existing free functions ([`ft_gemm`](crate::ft_gemm()),
//! [`par_ft_gemm`](crate::par_ft_gemm()),
//! [`par_batch_ft_gemm`](crate::par_batch_ft_gemm())) still exist as thin
//! wrappers that build a single-use plan, so no caller breaks.

mod batch;
mod op;
mod plan;

pub use batch::GemmBatch;
pub use op::{AsMatRef, GemmOp};
pub use plan::{Exec, GemmPlan};
