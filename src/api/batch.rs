//! [`GemmBatch`]: the batched driver under the unified API roof.

use ftgemm_abft::{FtReport, FtResult};
use ftgemm_core::Scalar;
use ftgemm_parallel::{
    par_batch_ft_gemm_timed, BatchItem, BatchTiming, BatchWorkspace, ParGemmContext,
};

/// A reusable batched-GEMM executor: many small problems distributed over
/// one parallel region, each item running the serial fused-ABFT driver on
/// its owning thread with that thread's persistent packed-buffer workspace.
///
/// This is the plan-style wrapper over
/// [`par_batch_ft_gemm`](crate::par_batch_ft_gemm()): build once (the
/// per-thread workspaces are allocated here), then [`run`](GemmBatch::run)
/// any number of heterogeneous batches. [`GemmService`](crate::GemmService)
/// keeps the equivalent state alive internally; `GemmBatch` is the same
/// capability for callers that own their batching loop.
pub struct GemmBatch<'a, T: Scalar> {
    ctx: &'a ParGemmContext<T>,
    ws: WorkspaceSlot<'a, T>,
}

enum WorkspaceSlot<'a, T: Scalar> {
    Owned(BatchWorkspace<T>),
    Borrowed(&'a BatchWorkspace<T>),
}

impl<'a, T: Scalar> GemmBatch<'a, T> {
    /// Batch executor on `ctx`'s pool with freshly allocated per-thread
    /// workspaces.
    pub fn new(ctx: &'a ParGemmContext<T>) -> Self {
        GemmBatch {
            ws: WorkspaceSlot::Owned(BatchWorkspace::new(ctx)),
            ctx,
        }
    }

    /// Batch executor sharing an existing [`BatchWorkspace`] (the legacy
    /// `par_batch_ft_gemm` signature delegates through this).
    pub fn with_workspace(ctx: &'a ParGemmContext<T>, ws: &'a BatchWorkspace<T>) -> Self {
        GemmBatch {
            ws: WorkspaceSlot::Borrowed(ws),
            ctx,
        }
    }

    fn workspace(&self) -> &BatchWorkspace<T> {
        match &self.ws {
            WorkspaceSlot::Owned(ws) => ws,
            WorkspaceSlot::Borrowed(ws) => ws,
        }
    }

    /// Executes every item across the pool; one result per item
    /// (index-aligned). A shape error in one item is confined to its slot.
    pub fn run(&self, items: &mut [BatchItem<'_, T>]) -> Vec<FtResult<FtReport>> {
        self.run_timed(items).0
    }

    /// [`run`](GemmBatch::run) plus per-thread occupancy measurement.
    pub fn run_timed(
        &self,
        items: &mut [BatchItem<'_, T>],
    ) -> (Vec<FtResult<FtReport>>, BatchTiming) {
        par_batch_ft_gemm_timed(self.ctx, self.workspace(), items)
    }
}
