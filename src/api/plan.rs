//! [`Exec`] targets and the reusable [`GemmPlan`].

use crate::api::op::GemmOp;
use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtError, FtGemmContext, FtReport, FtResult};
use ftgemm_core::{CoreError, IsaLevel, MatMut, MatRef, Scalar};
use ftgemm_parallel::{par_ft_gemm_with_ws, par_gemm_with_ws, ParFtWorkspace, ParGemmContext};
use ftgemm_pool::ThreadPool;
use ftgemm_serve::DEFAULT_SMALL_FLOPS_CUTOFF;
use std::sync::{Arc, OnceLock};

/// Where a planned GEMM executes.
#[derive(Debug, Clone, Copy)]
pub enum Exec<'p, T: Scalar> {
    /// One thread, the serial fused-ABFT driver (best for small problems —
    /// no region overhead, no checksum reductions).
    Serial,
    /// The matrix-parallel driver on the caller's pool. The context is
    /// `Arc`-backed, so the plan clones it cheaply and shares the workers.
    Parallel(&'p ParGemmContext<T>),
    /// Route by problem size through the *seed* flops cutoff
    /// [`GemmService`](crate::GemmService) starts from
    /// ([`DEFAULT_SMALL_FLOPS_CUTOFF`]): small problems plan serial, large
    /// ones plan onto a process-wide shared worker pool (created on first
    /// use, one per process — repeated `Auto` plans reuse it).
    Auto,
    /// [`Exec::Auto`] with a caller-supplied cutoff instead of the default
    /// seed — the hook for carrying a served workload's *learned* crossover
    /// into planned one-shots:
    /// `op.plan(Exec::AutoAt(service.current_cutoff()))` routes this plan
    /// by the value an adaptive
    /// [`GemmService`](crate::GemmService) converged to on this machine.
    AutoAt(u64),
}

/// The process-wide pool backing [`Exec::Auto`] for large problems. Shared
/// across scalar types (the pool is type-erased; kernels are per-plan).
static AUTO_POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

fn auto_parallel_ctx<T: Scalar>() -> ParGemmContext<T> {
    let pool = Arc::clone(
        AUTO_POOL.get_or_init(|| Arc::new(ThreadPool::new(ftgemm_core::cpu::num_cpus()))),
    );
    ParGemmContext::with_pool(pool, IsaLevel::detect())
}

/// How a [`GemmPlan`] executes — the resolved form of [`Exec`], workspace
/// included.
enum Backend<T: Scalar> {
    Serial(Box<FtGemmContext<T>>),
    Parallel {
        ctx: ParGemmContext<T>,
        ws: Box<ParFtWorkspace<T>>,
    },
}

impl<T: Scalar> std::fmt::Debug for Backend<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Serial(_) => f.write_str("Serial"),
            Backend::Parallel { ctx, .. } => {
                write!(f, "Parallel({} threads)", ctx.nthreads())
            }
        }
    }
}

/// A validated, preallocated GEMM ready to execute many times.
///
/// Built by [`GemmOp::plan`]. The plan owns everything the hot path needs —
/// blocking parameters, packing scratch, checksum work vectors, checkpoint
/// buffers, and (for parallel plans) the shared reduction workspace and the
/// `Arc` of the thread pool — so repeated [`run`](GemmPlan::run) calls
/// perform **zero heap allocation** (pinned by `tests/plan_alloc.rs`).
///
/// The plan borrows the op's operands; [`run_with`](GemmPlan::run_with)
/// substitutes different same-shaped operands without replanning.
#[derive(Debug)]
pub struct GemmPlan<'a, T: Scalar> {
    a: MatRef<'a, T>,
    b: MatRef<'a, T>,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    beta: T,
    cfg: Option<FtConfig>,
    backend: Backend<T>,
}

impl<'a, T: Scalar> GemmPlan<'a, T> {
    /// Resolves `exec`, preallocates workspaces. Shape consistency of
    /// `A`/`B` was checked by [`GemmOp::plan`] before calling this.
    pub(crate) fn build(op: GemmOp<'a, T>, exec: Exec<'_, T>) -> FtResult<Self> {
        let (m, n, k) = op.dims();
        let cfg = op.resolve_config();

        let backend = match exec {
            Exec::Serial => Self::serial_backend(&cfg, m, n, k)?,
            Exec::Parallel(ctx) => Self::parallel_backend(ctx.clone(), &cfg, m, n, k)?,
            Exec::Auto | Exec::AutoAt(_) => {
                let cutoff = match exec {
                    Exec::AutoAt(cutoff) => cutoff,
                    _ => DEFAULT_SMALL_FLOPS_CUTOFF,
                };
                if op.flops() <= cutoff {
                    Self::serial_backend(&cfg, m, n, k)?
                } else {
                    Self::parallel_backend(auto_parallel_ctx::<T>(), &cfg, m, n, k)?
                }
            }
        };

        Ok(GemmPlan {
            a: op.a,
            b: op.b,
            m,
            n,
            k,
            alpha: op.alpha,
            beta: op.beta,
            cfg,
            backend,
        })
    }

    fn serial_backend(
        cfg: &Option<FtConfig>,
        m: usize,
        n: usize,
        k: usize,
    ) -> FtResult<Backend<T>> {
        let mut ctx = FtGemmContext::<T>::new();
        match cfg {
            Some(cfg) => ctx.reserve(cfg, m, n, k)?,
            None => {
                // Unprotected plans only need the packing scratch warm.
                let p = ctx.core.params;
                p.validate().map_err(FtError::Core)?;
                ctx.core
                    .pack_buffers(p.packed_a_len(), p.packed_b_len())
                    .map_err(FtError::Core)?;
            }
        }
        Ok(Backend::Serial(Box::new(ctx)))
    }

    fn parallel_backend(
        ctx: ParGemmContext<T>,
        cfg: &Option<FtConfig>,
        m: usize,
        n: usize,
        k: usize,
    ) -> FtResult<Backend<T>> {
        ctx.params.validate().map_err(FtError::Core)?;
        // Unprotected plans only need the packed B~ / per-thread A~ slots;
        // the checksum vectors and reduction lanes stay zero-capacity.
        let ws = Box::new(if cfg.is_some() {
            ParFtWorkspace::for_problem(&ctx, m, n, k)
        } else {
            ParFtWorkspace::for_plain(&ctx)
        });
        Ok(Backend::Parallel { ctx, ws })
    }

    /// Executes the planned GEMM into `c` using the operands the plan was
    /// built over: `c = alpha * A * B + beta * c`. Allocation-free.
    pub fn run(&mut self, c: &mut MatMut<'_, T>) -> FtResult<FtReport> {
        let (a, b) = (self.a, self.b);
        self.dispatch(&a, &b, c)
    }

    /// Executes the plan over *different* operands of the exact shape the
    /// plan was built for (workspaces are shape-bound, operand values are
    /// not). Rejects any other shape.
    pub fn run_with(
        &mut self,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        c: &mut MatMut<'_, T>,
    ) -> FtResult<FtReport> {
        if a.nrows() != self.m || a.ncols() != self.k || b.nrows() != self.k || b.ncols() != self.n
        {
            return Err(FtError::Core(CoreError::ShapeMismatch {
                context: format!(
                    "plan is {}x{}x{} but operands are A {}x{}, B {}x{}",
                    self.m,
                    self.n,
                    self.k,
                    a.nrows(),
                    a.ncols(),
                    b.nrows(),
                    b.ncols()
                ),
            }));
        }
        self.dispatch(a, b, c)
    }

    fn dispatch(
        &mut self,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        c: &mut MatMut<'_, T>,
    ) -> FtResult<FtReport> {
        if c.nrows() != self.m || c.ncols() != self.n {
            return Err(FtError::Core(CoreError::ShapeMismatch {
                context: format!(
                    "C is {}x{} but the plan computes {}x{}",
                    c.nrows(),
                    c.ncols(),
                    self.m,
                    self.n
                ),
            }));
        }
        match (&mut self.backend, &self.cfg) {
            (Backend::Serial(ctx), Some(cfg)) => {
                ft_gemm_with_ctx(ctx, cfg, self.alpha, a, b, self.beta, c)
            }
            (Backend::Serial(ctx), None) => {
                ftgemm_core::gemm(&mut ctx.core, self.alpha, a, b, self.beta, c)
                    .map(|()| FtReport::default())
                    .map_err(FtError::Core)
            }
            (Backend::Parallel { ctx, ws }, Some(cfg)) => {
                par_ft_gemm_with_ws(ctx, ws, cfg, self.alpha, a, b, self.beta, c)
            }
            (Backend::Parallel { ctx, ws }, None) => {
                par_gemm_with_ws(ctx, ws, self.alpha, a, b, self.beta, c)
                    .map(|()| FtReport::default())
                    .map_err(FtError::Core)
            }
        }
    }

    /// Problem dimensions `(m, n, k)` the plan is bound to.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.k)
    }

    /// True when the plan executes on a worker pool (matrix-parallel).
    pub fn is_parallel(&self) -> bool {
        matches!(self.backend, Backend::Parallel { .. })
    }

    /// True when the plan runs the fused-ABFT driver.
    pub fn is_protected(&self) -> bool {
        self.cfg.is_some()
    }

    /// Threads the plan executes on (1 for serial plans).
    pub fn nthreads(&self) -> usize {
        match &self.backend {
            Backend::Serial(_) => 1,
            Backend::Parallel { ctx, .. } => ctx.nthreads(),
        }
    }

    /// Stable address of the parallel workspace (`None` for serial plans).
    ///
    /// Diagnostics hook: the address not changing across [`run`] calls
    /// proves the hot path reuses — rather than reallocates — its buffers
    /// (used by the allocation-stability tests).
    ///
    /// [`run`]: GemmPlan::run
    pub fn workspace_addr(&self) -> Option<usize> {
        match &self.backend {
            Backend::Serial(_) => None,
            Backend::Parallel { ws, .. } => Some(ws.base_addr()),
        }
    }
}
