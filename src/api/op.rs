//! The [`GemmOp`] problem builder.

use crate::api::plan::{Exec, GemmPlan};
use ftgemm_abft::{FtConfig, FtError, FtPolicy, FtResult};
use ftgemm_core::{CoreError, MatRef, Matrix, Scalar};
use ftgemm_faults::FaultInjector;
use ftgemm_serve::{GemmRequest, GemmRequestBuilder, Priority, TenantId};
use std::time::Duration;

/// Anything that can lend a [`MatRef`] view: owned matrices and existing
/// views alike, so `GemmOp::new(&a, &b)` works for both.
pub trait AsMatRef<T: Scalar> {
    /// Borrows the value as a column-major matrix view.
    fn as_mat_ref(&self) -> MatRef<'_, T>;
}

impl<T: Scalar> AsMatRef<T> for Matrix<T> {
    fn as_mat_ref(&self) -> MatRef<'_, T> {
        self.as_ref()
    }
}

impl<T: Scalar> AsMatRef<T> for MatRef<'_, T> {
    fn as_mat_ref(&self) -> MatRef<'_, T> {
        *self
    }
}

/// A GEMM problem description: `C = alpha * A * B + beta * C`.
///
/// Build one with [`GemmOp::new`], adjust it with the chained setters, then
/// either turn it into a reusable [`GemmPlan`] with [`plan`](GemmOp::plan)
/// or into a serving-layer [`GemmRequest`] with
/// [`to_request`](GemmOp::to_request). The operands are *borrowed*: the op
/// (and any plan made from it) stays valid for as long as `A` and `B` live.
#[derive(Debug, Clone)]
pub struct GemmOp<'a, T: Scalar> {
    pub(crate) a: MatRef<'a, T>,
    pub(crate) b: MatRef<'a, T>,
    pub(crate) alpha: T,
    pub(crate) beta: T,
    pub(crate) policy: FtPolicy,
    pub(crate) injector: Option<FaultInjector>,
    pub(crate) cfg_override: Option<FtConfig>,
    pub(crate) tenant: TenantId,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
}

impl<'a, T: Scalar> GemmOp<'a, T> {
    /// Describes `C = A * B` (i.e. `alpha = 1`, `beta = 0`) with the
    /// default fault-tolerance policy
    /// ([`FtPolicy::DetectCorrect`](FtPolicy)).
    pub fn new(a: &'a impl AsMatRef<T>, b: &'a impl AsMatRef<T>) -> Self {
        GemmOp {
            a: a.as_mat_ref(),
            b: b.as_mat_ref(),
            alpha: T::ONE,
            beta: T::ZERO,
            policy: FtPolicy::default(),
            injector: None,
            cfg_override: None,
            tenant: ftgemm_serve::DEFAULT_TENANT,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Tags the op with the submitting tenant (default tenant `0`): served
    /// requests built from it compete under that tenant's weighted-fair
    /// share ([`ServiceConfig::tenants`](crate::ServiceConfig)). Only the
    /// serving layer reads this; one-shot plans ignore it.
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the scheduling class within the tenant's lane (default
    /// [`Priority::Normal`]). Only the serving layer reads this.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a relative completion deadline: served requests built from
    /// this op are EDF-ordered within their class, admission-checked
    /// against the learned completion-time model, and shed if the deadline
    /// expires in queue. Only the serving layer reads this.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the scale on `A*B` (default `1`).
    #[must_use]
    pub fn alpha(mut self, alpha: T) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the scale on the input `C` (default `0`).
    #[must_use]
    pub fn beta(mut self, beta: T) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the fault-tolerance policy (default
    /// [`FtPolicy::DetectCorrect`](FtPolicy)).
    #[must_use]
    pub fn ft(mut self, policy: FtPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault injector (fault-injection campaigns and tests).
    #[must_use]
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Overrides the full driver configuration (tolerance model, fusion
    /// switches, recovery budget) instead of deriving it from the policy.
    /// Power-user/ablation hook; the legacy `ft_gemm`-style wrappers use it
    /// to preserve their exact semantics.
    #[must_use]
    pub fn ft_config(mut self, cfg: FtConfig) -> Self {
        self.cfg_override = Some(cfg);
        self
    }

    /// Problem dimensions `(m, n, k)` as described (not yet validated).
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.a.nrows(), self.b.ncols(), self.a.ncols())
    }

    /// Multiply-add count (`2*m*n*k`) — the size measure [`Exec::Auto`] and
    /// the serving scheduler route by.
    pub fn flops(&self) -> u64 {
        let (m, n, k) = self.dims();
        2 * m as u64 * n as u64 * k as u64
    }

    /// Resolves the effective driver configuration: `None` means "run the
    /// unprotected driver".
    pub(crate) fn resolve_config(&self) -> Option<FtConfig> {
        match &self.cfg_override {
            Some(cfg) => {
                let mut cfg = cfg.clone();
                if let Some(inj) = &self.injector {
                    cfg.injector = Some(inj.clone());
                }
                Some(cfg)
            }
            None => self.policy.to_config(self.injector.clone()),
        }
    }

    /// Validates the operand shapes and precomputes a reusable
    /// [`GemmPlan`]: blocking parameters, checksum workspaces, and the
    /// execution context are all fixed here, so every subsequent
    /// [`GemmPlan::run`] is allocation-free.
    ///
    /// Fails with [`FtError::Core`] if `a.ncols() != b.nrows()`; the output
    /// shape is checked by [`GemmPlan::run`], which is when `C` first
    /// appears.
    pub fn plan(self, exec: Exec<'_, T>) -> FtResult<GemmPlan<'a, T>> {
        let (m, k) = (self.a.nrows(), self.a.ncols());
        let (kb, n) = (self.b.nrows(), self.b.ncols());
        if k != kb {
            return Err(FtError::Core(CoreError::ShapeMismatch {
                context: format!("A is {m}x{k} but B is {kb}x{n}"),
            }));
        }
        GemmPlan::build(self, exec)
    }

    /// Copies the operands into an owned, shape-validated serving-layer
    /// request builder carrying this op's `alpha`, policy, and injector.
    /// A request owns its output, so `beta`/`C` are attached on the builder
    /// ([`GemmRequestBuilder::c`]) rather than inherited from the op.
    /// Finish with [`GemmRequestBuilder::build`] and submit the result to a
    /// [`GemmService`](crate::GemmService).
    ///
    /// # Panics
    /// If [`ft_config`](GemmOp::ft_config) was used: a served request
    /// carries an [`FtPolicy`] only, so a full configuration override
    /// cannot be expressed — dropping it silently would run the request
    /// under different semantics than the op described. Use
    /// [`ft`](GemmOp::ft) for ops that become requests.
    pub fn to_request(&self) -> GemmRequestBuilder<T> {
        assert!(
            self.cfg_override.is_none(),
            "GemmOp::to_request cannot carry an ft_config override: served \
             requests are configured by FtPolicy only (use GemmOp::ft)"
        );
        let mut builder = GemmRequest::builder(self.a.to_owned(), self.b.to_owned())
            .alpha(self.alpha)
            .ft(self.policy)
            .tenant(self.tenant)
            .priority(self.priority);
        if let Some(deadline) = self.deadline {
            builder = builder.deadline(deadline);
        }
        if let Some(inj) = &self.injector {
            builder = builder.injector(inj.clone());
        }
        builder
    }
}
