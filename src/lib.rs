//! # ftgemm — facade crate
//!
//! Re-exports the full FT-GEMM workspace behind one dependency:
//!
//! * [`core`](ftgemm_core) — matrices, packing, micro-kernels, serial GEMM
//! * [`abft`](ftgemm_abft) — fused ABFT checksums, serial FT-GEMM
//! * [`pool`](ftgemm_pool) — persistent worker pool (OpenMP-style regions)
//! * [`parallel`](ftgemm_parallel) — multithreaded (FT-)GEMM
//! * [`faults`](ftgemm_faults) — deterministic soft-error injection
//! * [`baselines`](ftgemm_baselines) — comparator GEMMs and unfused ABFT
//! * [`blas`](ftgemm_blas) — DMR-protected Level-1/2 routines (FT-BLAS)

pub use ftgemm_abft as abft;
pub use ftgemm_baselines as baselines;
pub use ftgemm_blas as blas;
pub use ftgemm_core as core;
pub use ftgemm_faults as faults;
pub use ftgemm_parallel as parallel;
pub use ftgemm_pool as pool;

pub use ftgemm_abft::{ft_gemm, FtConfig, FtReport};
pub use ftgemm_core::{gemm, GemmContext, MatMut, MatRef, Matrix};
pub use ftgemm_faults::FaultInjector;
pub use ftgemm_parallel::{par_ft_gemm, par_gemm, ParGemmContext};
