//! # ftgemm — facade crate
//!
//! Re-exports the full FT-GEMM workspace behind one dependency:
//!
//! * [`core`] — matrices, packing, micro-kernels, serial GEMM
//! * [`abft`] — fused ABFT checksums, serial FT-GEMM
//! * [`pool`] — persistent worker pool (OpenMP-style regions)
//! * [`parallel`] — multithreaded and batched (FT-)GEMM
//! * [`serve`] — batched GEMM serving: request queue, sharded dispatch,
//!   per-request fault-tolerance policy
//! * [`faults`] — deterministic soft-error injection
//! * [`baselines`] — comparator GEMMs and unfused ABFT
//! * [`blas`] — DMR-protected Level-1/2 routines (FT-BLAS)
//!
//! ## One-shot calls
//!
//! [`ft_gemm`](fn@ft_gemm) (serial) and [`par_ft_gemm`] (multithreaded)
//! compute a single fault-tolerant `C = alpha*A*B + beta*C` with the
//! paper's fused-checksum scheme; [`gemm`](fn@gemm)/[`par_gemm`] are the
//! unprotected equivalents.
//!
//! ## Serving many requests
//!
//! [`GemmService`] accepts concurrent [`GemmRequest`]s, coalesces small
//! problems into batched parallel regions, routes large ones to the
//! matrix-parallel driver, and applies a per-request [`FtPolicy`]. Three
//! submit surfaces share one scheduler: blocking handles
//! ([`submit`](serve::GemmService::submit)), waker-based futures
//! ([`submit_async`](serve::GemmService::submit_async) — no parked thread
//! per request), and a completion-channel stream
//! ([`submit_streamed`](serve::GemmService::submit_streamed)). See
//! `examples/serving_throughput.rs` and `examples/async_serving.rs`.
//!
//! For the crate-by-crate map and the request lifecycle, read
//! `docs/ARCHITECTURE.md`.

pub use ftgemm_abft as abft;
pub use ftgemm_baselines as baselines;
pub use ftgemm_blas as blas;
pub use ftgemm_core as core;
pub use ftgemm_faults as faults;
pub use ftgemm_parallel as parallel;
pub use ftgemm_pool as pool;
pub use ftgemm_serve as serve;

pub use ftgemm_abft::{ft_gemm, FtConfig, FtReport};
pub use ftgemm_core::{gemm, GemmContext, MatMut, MatRef, Matrix};
pub use ftgemm_faults::FaultInjector;
pub use ftgemm_parallel::{par_batch_ft_gemm, par_ft_gemm, par_gemm, ParGemmContext};
pub use ftgemm_serve::{FtPolicy, GemmRequest, GemmResponse, GemmService, ServiceConfig};
