//! # ftgemm — facade crate
//!
//! Re-exports the full FT-GEMM workspace behind one dependency:
//!
//! * [`core`] — matrices, packing, micro-kernels, serial GEMM
//! * [`abft`] — fused ABFT checksums, serial FT-GEMM, the shared
//!   [`FtPolicy`]
//! * [`pool`] — persistent worker pool (OpenMP-style regions)
//! * [`parallel`] — multithreaded and batched (FT-)GEMM
//! * [`serve`] — batched GEMM serving: request queue, sharded dispatch,
//!   per-request fault-tolerance policy
//! * [`net`] — TCP wire frontend: versioned binary protocol,
//!   server-resident operand handles, [`NetServer`]/[`NetClient`]
//! * [`faults`] — deterministic soft-error injection
//! * [`baselines`] — comparator GEMMs and unfused ABFT
//! * [`blas`] — DMR-protected Level-1/2 routines (FT-BLAS)
//!
//! ## One-shot and planned calls — the [`api`] module
//!
//! [`GemmOp`] describes a problem; [`GemmOp::plan`] validates it once and
//! returns a [`GemmPlan`] whose [`run`](GemmPlan::run) executes it with
//! zero per-call allocation, serial or parallel:
//!
//! ```
//! use ftgemm::{Exec, FtPolicy, GemmOp, Matrix};
//!
//! let a = Matrix::<f64>::random(96, 64, 1);
//! let b = Matrix::<f64>::random(64, 80, 2);
//! let mut c = Matrix::<f64>::zeros(96, 80);
//! let mut plan = GemmOp::new(&a, &b)
//!     .ft(FtPolicy::DetectCorrect)
//!     .plan(Exec::Auto)
//!     .unwrap();
//! let report = plan.run(&mut c.as_mut()).unwrap();
//! assert_eq!(report.detected, 0);
//! ```
//!
//! The pre-existing free functions ([`ft_gemm`](fn@ft_gemm),
//! [`par_ft_gemm`], [`par_batch_ft_gemm`]) remain available as thin
//! wrappers over the same machinery; [`gemm`](fn@gemm)/[`par_gemm`] are the
//! unprotected equivalents.
//!
//! ## Serving many requests
//!
//! [`GemmService`] accepts concurrent [`GemmRequest`]s, coalesces small
//! problems into batched parallel regions, routes large ones to the
//! matrix-parallel driver, and applies the same per-request [`FtPolicy`]
//! the one-shot API uses. Build requests with the validating
//! [`GemmRequest::builder`] (or [`GemmOp::to_request`]). Three submit
//! surfaces feed per-node dispatchers: blocking handles
//! ([`submit`](serve::GemmService::submit)), waker-based futures
//! ([`submit_async`](serve::GemmService::submit_async) — no parked thread
//! per request), and a completion-channel stream
//! ([`submit_streamed`](serve::GemmService::submit_streamed)). See
//! `examples/serving_throughput.rs` and `examples/async_serving.rs`.
//!
//! The service is NUMA-sharded: a [`Topology`] (detected, or
//! [`Topology::synthetic`] for deterministic tests) gives every memory
//! domain its own queue shard group and pinned worker subset, and a
//! [`PlacementPolicy`] stamps each request's node affinity at submit time
//! (`ServiceConfig { topology, placement, .. }`).
//!
//! For the crate-by-crate map and the request lifecycle, read
//! `docs/ARCHITECTURE.md`.

pub use ftgemm_abft as abft;
pub use ftgemm_baselines as baselines;
pub use ftgemm_blas as blas;
pub use ftgemm_core as core;
pub use ftgemm_faults as faults;
pub use ftgemm_net as net;
pub use ftgemm_obs as obs;
pub use ftgemm_parallel as parallel;
pub use ftgemm_pool as pool;
pub use ftgemm_serve as serve;

pub mod api;

pub use api::{AsMatRef, Exec, GemmBatch, GemmOp, GemmPlan};
pub use ftgemm_abft::{FtConfig, FtPolicy, FtReport, FtResult};
pub use ftgemm_core::{gemm, GemmContext, MatMut, MatRef, Matrix};
pub use ftgemm_faults::FaultInjector;
pub use ftgemm_net::{NetClient, NetServer, NetServerConfig, NetSubmit};
pub use ftgemm_parallel::{par_gemm, BatchItem, BatchWorkspace, ParFtWorkspace, ParGemmContext};
pub use ftgemm_pool::{NodeSpec, PoolPartition, Topology};
pub use ftgemm_serve::{
    AdaptiveConfig, CutoffLearner, GemmRequest, GemmRequestBuilder, GemmResponse, GemmService,
    NodeStats, PlacementPolicy, Priority, RoutePath, RoutingPolicy, RoutingSnapshot, ServiceConfig,
    TenantId, TenantTable,
};

use ftgemm_core::Scalar;

/// Serial fault-tolerant `C = alpha*A*B + beta*C` with a fresh context.
///
/// Legacy one-shot entry point; delegates to a single-use
/// [`GemmPlan`] (`GemmOp::new(..).ft_config(..).plan(Exec::Serial)`).
/// Callers repeating one shape should hold the plan instead.
pub fn ft_gemm<T: Scalar>(
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    GemmOp::new(a, b)
        .alpha(alpha)
        .beta(beta)
        .ft_config(cfg.clone())
        .plan(Exec::Serial)?
        .run(c)
}

/// Parallel fault-tolerant `C = alpha*A*B + beta*C` on `ctx`'s pool.
///
/// Legacy one-shot entry point; delegates to a single-use [`GemmPlan`]
/// (`GemmOp::new(..).ft_config(..).plan(Exec::Parallel(ctx))`). Callers
/// repeating one shape should hold the plan instead — it keeps the
/// reduction workspace alive across calls.
pub fn par_ft_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    GemmOp::new(a, b)
        .alpha(alpha)
        .beta(beta)
        .ft_config(cfg.clone())
        .plan(Exec::Parallel(ctx))?
        .run(c)
}

/// Batched (FT-)GEMM: every item of `items` across the pool, one serial
/// driver per item; one result per item, index-aligned.
///
/// Legacy entry point; delegates to [`GemmBatch::with_workspace`].
pub fn par_batch_ft_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    ws: &BatchWorkspace<T>,
    items: &mut [BatchItem<'_, T>],
) -> Vec<FtResult<FtReport>> {
    GemmBatch::with_workspace(ctx, ws).run(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;

    #[test]
    fn legacy_wrappers_match_underlying_drivers() {
        let a = Matrix::<f64>::random(48, 36, 1);
        let b = Matrix::<f64>::random(36, 40, 2);
        let mut c_wrap = Matrix::<f64>::random(48, 40, 3);
        let mut c_direct = c_wrap.clone();
        let cfg = FtConfig::default();

        ft_gemm(
            &cfg,
            1.5,
            &a.as_ref(),
            &b.as_ref(),
            0.5,
            &mut c_wrap.as_mut(),
        )
        .unwrap();
        ftgemm_abft::ft_gemm(
            &cfg,
            1.5,
            &a.as_ref(),
            &b.as_ref(),
            0.5,
            &mut c_direct.as_mut(),
        )
        .unwrap();
        assert_eq!(c_wrap.as_slice(), c_direct.as_slice());

        let ctx = ParGemmContext::<f64>::with_threads(3);
        let mut c_wrap = Matrix::<f64>::random(48, 40, 4);
        let mut c_direct = c_wrap.clone();
        par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c_wrap.as_mut(),
        )
        .unwrap();
        ftgemm_parallel::par_ft_gemm(
            &ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c_direct.as_mut(),
        )
        .unwrap();
        assert_eq!(c_wrap.as_slice(), c_direct.as_slice());
    }

    #[test]
    fn legacy_batch_wrapper_runs() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let ws = BatchWorkspace::new(&ctx);
        let cfg = FtConfig::default();
        let a = Matrix::<f64>::random(20, 16, 1);
        let b = Matrix::<f64>::random(16, 24, 2);
        let mut c = Matrix::<f64>::zeros(20, 24);
        let mut c_ref = Matrix::<f64>::zeros(20, 24);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        let mut items = vec![BatchItem {
            alpha: 1.0,
            a: a.as_ref(),
            b: b.as_ref(),
            beta: 0.0,
            c: c.as_mut(),
            cfg: Some(&cfg),
        }];
        let results = par_batch_ft_gemm(&ctx, &ws, &mut items);
        drop(items);
        assert!(results[0].is_ok());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn shape_mismatch_surfaces_at_plan_time() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(5, 6);
        assert!(matches!(
            GemmOp::new(&a, &b).plan(Exec::Serial),
            Err(ftgemm_abft::FtError::Core(
                ftgemm_core::CoreError::ShapeMismatch { .. }
            ))
        ));
    }
}
