//! # ftgemm-serve
//!
//! A batched GEMM serving subsystem on top of the FT-GEMM stack: the layer
//! that turns single-call fault-tolerant GEMM into a service that can absorb
//! heavy concurrent traffic.
//!
//! ## Architecture
//!
//! ```text
//! submit() x N threads
//!     │  round-robin over queue shards (uncontended submit path)
//!     ▼
//! ShardedQueue ──► scheduler thread ──► route by problem size
//!                                        │
//!                      small (≤ cutoff)  │  large (> cutoff)
//!                 ┌─────────────────────┐│┌──────────────────────┐
//!                 │ coalesce ≤ max_batch│││ par_ft_gemm /        │
//!                 │ par_batch_ft_gemm   │││ par_gemm             │
//!                 │ (batch-parallel,    │││ (matrix-parallel)    │
//!                 │  per-thread reused  ││└──────────────────────┘
//!                 │  packed workspaces) ││
//!                 └─────────────────────┘│     one persistent ThreadPool
//!                                        ▼
//!                            RequestHandle::wait() → GemmResponse
//! ```
//!
//! * **Batching.** Small GEMMs cannot amortize a parallel region each; the
//!   scheduler coalesces up to `max_batch` of them and distributes the
//!   *batch* across the pool ([`ftgemm_parallel::par_batch_ft_gemm`]), each
//!   item running the serial fused-ABFT driver with that pool thread's
//!   reused packed-buffer workspace.
//! * **Per-request fault tolerance.** Every request carries an [`FtPolicy`]
//!   (`Off` / `Detect` / `DetectCorrect`) mapped onto the paper's
//!   [`FtConfig`](ftgemm_abft::FtConfig); each response carries its own
//!   [`FtReport`](ftgemm_abft::FtReport).
//! * **Observability.** [`GemmService::stats`] reports throughput, queue
//!   depth, batch occupancy, corrected-error counters, and worker-pool
//!   activity ([`ftgemm_pool::PoolStats`]).
//!
//! ## Example
//!
//! ```
//! use ftgemm_core::Matrix;
//! use ftgemm_serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
//!
//! let service = GemmService::<f64>::new(ServiceConfig {
//!     threads: 2,
//!     ..ServiceConfig::default()
//! });
//! let a = Matrix::<f64>::random(48, 32, 1);
//! let b = Matrix::<f64>::random(32, 40, 2);
//! let handle = service
//!     .submit(GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect))
//!     .unwrap();
//! let resp = handle.wait().unwrap();
//! assert_eq!(resp.c.nrows(), 48);
//! assert_eq!(resp.report.detected, 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod handle;
mod policy;
mod queue;
mod request;
mod service;
mod stats;

pub use handle::RequestHandle;
pub use policy::FtPolicy;
pub use request::{GemmRequest, GemmResponse, ServeError};
pub use service::{GemmService, ServiceConfig};
pub use stats::StatsSnapshot;

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    fn tiny_service() -> GemmService<f64> {
        GemmService::new(ServiceConfig {
            threads: 2,
            queue_shards: 2,
            max_batch: 4,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn single_request_round_trip() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(20, 12, 1);
        let b = Matrix::<f64>::random(12, 16, 2);
        let mut expected = Matrix::<f64>::zeros(20, 16);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());

        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert!(resp.c.rel_max_diff(&expected) < 1e-12);
        assert!(resp.batched);
        assert!(resp.report.verifications > 0);
    }

    #[test]
    fn shape_mismatch_rejected_at_submit() {
        let service = tiny_service();
        let req = GemmRequest {
            alpha: 1.0,
            a: Matrix::<f64>::zeros(4, 4),
            b: Matrix::<f64>::zeros(3, 4),
            beta: 0.0,
            c: Matrix::<f64>::zeros(4, 4),
            policy: FtPolicy::Off,
            injector: None,
        };
        assert!(matches!(service.submit(req), Err(ServeError::Shape(_))));
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let service = tiny_service();
        let stats = service.shutdown();
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn stats_reflect_traffic() {
        let service = tiny_service();
        let mut handles = Vec::new();
        for i in 0..10 {
            let a = Matrix::<f64>::random(16, 16, i);
            let b = Matrix::<f64>::random(16, 16, i + 100);
            handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.batched_requests, 10);
        assert!(snap.batches >= 3, "max_batch=4 over 10 requests: {snap:?}");
        assert!(snap.mean_batch_occupancy > 1.0);
        assert!(snap.requests_per_sec > 0.0);
        assert!(snap.pool.regions > 0);
    }

    #[test]
    fn large_requests_take_matrix_parallel_path() {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 2,
            small_flops_cutoff: 2 * 8 * 8 * 8, // everything bigger is "large"
            ..ServiceConfig::default()
        });
        let a = Matrix::<f64>::random(64, 32, 5);
        let b = Matrix::<f64>::random(32, 48, 6);
        let mut expected = Matrix::<f64>::zeros(64, 48);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert!(!resp.batched);
        assert!(resp.c.rel_max_diff(&expected) < 1e-10);
        assert_eq!(service.stats().direct_large, 1);
    }

    #[test]
    fn off_policy_reports_zero() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(10, 10, 3);
        let b = Matrix::<f64>::random(10, 10, 4);
        let resp = service
            .run(GemmRequest::new(a, b).with_policy(FtPolicy::Off))
            .unwrap();
        assert_eq!(resp.report, Default::default());
    }
}
