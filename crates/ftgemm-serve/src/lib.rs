//! # ftgemm-serve
//!
//! A batched GEMM serving subsystem on top of the FT-GEMM stack: the layer
//! that turns single-call fault-tolerant GEMM into a service that can absorb
//! heavy concurrent traffic.
//!
//! ## Architecture
//!
//! ```text
//! submit() / submit_async() / submit_streamed()  x N threads
//!     │  round-robin over queue shards (uncontended submit path;
//!     │  bounded queue: sync parks, async gets Overloaded back)
//!     ▼
//! ShardedQueue ──► per-node dispatcher ──► route by problem size
//!                                        │
//!                      small (≤ cutoff)  │  large (> cutoff)
//!                 ┌─────────────────────┐│┌──────────────────────┐
//!                 │ coalesce ≤ max_batch│││ par_ft_gemm /        │
//!                 │ par_batch_ft_gemm   │││ par_gemm             │
//!                 │ (batch-parallel,    │││ (matrix-parallel)    │
//!                 │  per-thread reused  ││└──────────────────────┘
//!                 │  packed workspaces) ││
//!                 └─────────────────────┘│   one persistent pool per node
//!                                        ▼
//!                               fulfill: store + condvar + fire waker
//!                                 │            │            │
//!                    RequestHandle::wait   .await on     Completions
//!                       (blocking)      AsyncRequestHandle  stream
//! ```
//!
//! * **Batching.** Small GEMMs cannot amortize a parallel region each; the
//!   scheduler coalesces up to `max_batch` of them and distributes the
//!   *batch* across the pool ([`ftgemm_parallel::par_batch_ft_gemm`]), each
//!   item running the serial fused-ABFT driver with that pool thread's
//!   reused packed-buffer workspace. Coalesced batches run before the
//!   sweep's large requests so a small request never queues behind a long
//!   matrix-parallel run it arrived with.
//! * **Learned routing.** The small/large boundary is a [`RoutingPolicy`]:
//!   pinned ([`RoutingPolicy::Fixed`]) or — the default — learned online
//!   ([`RoutingPolicy::Adaptive`]) by a [`CutoffLearner`] that watches both
//!   paths' observed ns/flop and converges the cutoff to this machine's
//!   real batched-vs-matrix-parallel break-even
//!   ([`GemmService::current_cutoff`] exposes the live value).
//! * **Three redemption surfaces, one scheduler.** `submit` returns a
//!   blocking [`RequestHandle`] (condvar; `wait`/`try_wait`/`wait_timeout`),
//!   `submit_async` returns an [`AsyncRequestHandle`] future (the fulfill
//!   path fires the task's waker — zero parked threads per request, any
//!   executor), and `submit_streamed` forwards results into a
//!   [`completion_channel`] drained blocking or async.
//! * **NUMA-aware sharding.** The service shards itself around a
//!   [`Topology`] (detected, or [`Topology::synthetic`] for deterministic
//!   tests / `ServiceConfig::topology`): one queue shard group and one
//!   pinned node-scoped worker pool per memory domain. A
//!   [`PlacementPolicy`] stamps each request's node affinity at submit
//!   time (`RoundRobin` / `OperandHome` / `LeastLoaded`); work leaves its
//!   affinity node only when a dry node steals off the deepest backlog
//!   ([`GemmResponse::stolen`], [`StatsSnapshot::per_node`]).
//! * **Per-request fault tolerance.** Every request carries an [`FtPolicy`]
//!   (`Off` / `Detect` / `DetectCorrect`) mapped onto the paper's
//!   [`FtConfig`](ftgemm_abft::FtConfig); each response carries its own
//!   [`FtReport`](ftgemm_abft::FtReport).
//! * **Error-aware escalation.** With [`ServiceConfig::fault_policy`] set,
//!   a monitor tracks each node's detected errors per flop (an EWMA fed by
//!   every completed request's report) and raises that node's *policy
//!   floor* (`Off → Detect → DetectCorrect`) when the rate crosses the
//!   configured thresholds — applied on top of each request's own policy
//!   via [`FtPolicy::at_least`], never below it — then steps it back down
//!   after a configured quiet volume of clean flops. Clean nodes keep
//!   serving `Off` requests at the unprotected driver's cost.
//! * **Observability.** [`GemmService::stats`] reports throughput, queue
//!   depth, batch occupancy, per-surface submission counts, live async
//!   futures, per-thread batch busy time (occupancy imbalance),
//!   corrected-error counters, and worker-pool activity
//!   ([`ftgemm_pool::PoolStats`]). Setting
//!   [`ServiceConfig::obs_addr`] additionally serves every snapshot field
//!   as Prometheus text exposition at `GET /metrics` (stable names
//!   documented in [`export`]), records each request's lifecycle
//!   (`admitted → queued → dispatched → computed → verified/corrected →
//!   completed|failed`) into bounded per-node trace rings dumped at
//!   `/trace`, and answers `/healthz` — all from one `std::net` endpoint
//!   thread, with zero recording cost when the address is unset.
//!
//! ## Example
//!
//! ```
//! use ftgemm_core::Matrix;
//! use ftgemm_serve::{FtPolicy, GemmRequest, GemmService, ServiceConfig};
//!
//! let service = GemmService::<f64>::new(ServiceConfig {
//!     threads: 2,
//!     ..ServiceConfig::default()
//! });
//! let a = Matrix::<f64>::random(48, 32, 1);
//! let b = Matrix::<f64>::random(32, 40, 2);
//! let handle = service
//!     .submit(GemmRequest::new(a, b).with_policy(FtPolicy::DetectCorrect))
//!     .unwrap();
//! let resp = handle.wait().unwrap();
//! assert_eq!(resp.c.nrows(), 48);
//! assert_eq!(resp.report.detected, 0);
//! ```
//!
//! Draining a burst through a completion channel (no thread parked per
//! request; the same stream also has an async `next()`):
//!
//! ```
//! use ftgemm_core::Matrix;
//! use ftgemm_serve::{completion_channel, GemmRequest, GemmService, ServiceConfig};
//!
//! let service = GemmService::<f64>::new(ServiceConfig {
//!     threads: 2,
//!     ..ServiceConfig::default()
//! });
//! let (sink, mut completions) = completion_channel::<f64>();
//! for seed in 0..8 {
//!     let a = Matrix::<f64>::random(24, 16, seed);
//!     let b = Matrix::<f64>::random(16, 20, seed + 100);
//!     service.submit_streamed(GemmRequest::new(a, b), &sink).unwrap();
//! }
//! let mut done = 0;
//! while let Some(completion) = completions.recv() {
//!     assert!(completion.result.is_ok());
//!     done += 1;
//! }
//! assert_eq!(done, 8);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod exec;
pub mod export;
mod fault_policy;
mod handle;
mod placement;
pub mod qos;
mod queue;
mod request;
pub mod routing;
mod service;
mod stats;
mod stream;

/// The workspace-wide fault-tolerance policy (defined in
/// [`ftgemm_abft::policy`] so the one-shot drivers, the facade's
/// `GemmOp`/`GemmPlan` builder, and this serving layer all share one type).
pub use ftgemm_abft::FtPolicy;
/// The memory-domain layout the service shards itself around (defined in
/// [`ftgemm_pool::topology`]; [`Topology::synthetic`] makes every placement
/// decision deterministic for tests).
pub use ftgemm_pool::{NodeSpec, Topology};

pub use fault_policy::FaultPolicyConfig;
pub use handle::{AsyncRequestHandle, RequestHandle};
pub use placement::PlacementPolicy;
pub use qos::{Priority, SchedSim, TenantId, TenantTable, DEFAULT_TENANT};
pub use request::{GemmRequest, GemmRequestBuilder, GemmResponse, Operand, ServeError};
pub use routing::{AdaptiveConfig, CutoffLearner, RoutePath, RoutingPolicy, RoutingSnapshot};
pub use service::{GemmService, ServiceConfig, DEFAULT_SMALL_FLOPS_CUTOFF};
pub use stats::{NodeStats, StatsSnapshot, TenantStats};
pub use stream::{completion_channel, Completion, CompletionSink, Completions, Next};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::block_on;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    fn tiny_service() -> GemmService<f64> {
        GemmService::new(ServiceConfig {
            threads: 2,
            queue_shards: 2,
            max_batch: 4,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn single_request_round_trip() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(20, 12, 1);
        let b = Matrix::<f64>::random(12, 16, 2);
        let mut expected = Matrix::<f64>::zeros(20, 16);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());

        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert!(resp.c.rel_max_diff(&expected) < 1e-12);
        assert!(resp.batched);
        assert!(resp.report.verifications > 0);
    }

    #[test]
    fn shape_mismatch_rejected_at_submit() {
        let service = tiny_service();
        let req = GemmRequest {
            alpha: 1.0,
            a: Matrix::<f64>::zeros(4, 4).into(),
            b: Matrix::<f64>::zeros(3, 4).into(),
            beta: 0.0,
            c: Matrix::<f64>::zeros(4, 4),
            policy: FtPolicy::Off,
            injector: None,
            home: None,
            tenant: DEFAULT_TENANT,
            priority: Priority::Normal,
            deadline: None,
        };
        assert!(matches!(service.submit(req), Err(ServeError::Shape(_))));
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let service = tiny_service();
        let stats = service.shutdown();
        assert_eq!(stats.submitted, stats.completed + stats.failed);
    }

    #[test]
    fn stats_reflect_traffic() {
        let service = tiny_service();
        let mut handles = Vec::new();
        for i in 0..10 {
            let a = Matrix::<f64>::random(16, 16, i);
            let b = Matrix::<f64>::random(16, 16, i + 100);
            handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.completed, 10);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.batched_requests, 10);
        assert!(snap.batches >= 3, "max_batch=4 over 10 requests: {snap:?}");
        assert!(snap.mean_batch_occupancy > 1.0);
        assert!(snap.requests_per_sec > 0.0);
        assert!(snap.pool.regions > 0);
    }

    #[test]
    fn large_requests_take_matrix_parallel_path() {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 2,
            // Everything bigger than 8^3 is "large".
            routing: RoutingPolicy::Fixed(2 * 8 * 8 * 8),
            ..ServiceConfig::default()
        });
        let a = Matrix::<f64>::random(64, 32, 5);
        let b = Matrix::<f64>::random(32, 48, 6);
        let mut expected = Matrix::<f64>::zeros(64, 48);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());
        let resp = service.run(GemmRequest::new(a, b)).unwrap();
        assert!(!resp.batched);
        assert!(resp.c.rel_max_diff(&expected) < 1e-10);
        assert_eq!(service.stats().direct_large, 1);
    }

    #[test]
    fn off_policy_reports_zero() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(10, 10, 3);
        let b = Matrix::<f64>::random(10, 10, 4);
        let resp = service
            .run(GemmRequest::new(a, b).with_policy(FtPolicy::Off))
            .unwrap();
        assert_eq!(resp.report, Default::default());
    }

    #[test]
    fn async_round_trip_matches_reference() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(20, 12, 11);
        let b = Matrix::<f64>::random(12, 16, 12);
        let mut expected = Matrix::<f64>::zeros(20, 16);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut expected.as_mut());

        let fut = service.submit_async(GemmRequest::new(a, b)).unwrap();
        let resp = block_on(fut).unwrap();
        assert!(resp.c.rel_max_diff(&expected) < 1e-12);

        let snap = service.stats();
        assert_eq!(snap.submitted_async, 1);
        assert_eq!(snap.submitted_sync, 0);
        assert_eq!(snap.in_flight_async, 0, "future resolved, gauge released");
    }

    #[test]
    fn many_concurrent_async_requests_resolve() {
        let service = tiny_service();
        let mut futures = Vec::new();
        for i in 0..24u64 {
            let a = Matrix::<f64>::random(16, 16, i);
            let b = Matrix::<f64>::random(16, 16, i + 500);
            futures.push(service.submit_async(GemmRequest::new(a, b)).unwrap());
        }
        assert_eq!(service.stats().submitted_async, 24);
        for fut in futures {
            block_on(fut).unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.completed, 24);
        assert_eq!(snap.in_flight_async, 0);
    }

    #[test]
    fn dropped_async_future_still_runs_request() {
        let service = tiny_service();
        let a = Matrix::<f64>::random(12, 12, 1);
        let b = Matrix::<f64>::random(12, 12, 2);
        let fut = service.submit_async(GemmRequest::new(a, b)).unwrap();
        assert_eq!(service.stats().in_flight_async, 1);
        drop(fut);
        assert_eq!(service.stats().in_flight_async, 0);
        let stats = service.shutdown(); // drains the still-queued request
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn submit_surfaces_counted_separately() {
        let service = tiny_service();
        let (sink, mut completions) = completion_channel::<f64>();
        let mk = |s: u64| {
            (
                Matrix::<f64>::random(10, 10, s),
                Matrix::<f64>::random(10, 10, s + 50),
            )
        };
        let (a, b) = mk(1);
        let h = service.submit(GemmRequest::new(a, b)).unwrap();
        let (a, b) = mk(2);
        let fut = service.submit_async(GemmRequest::new(a, b)).unwrap();
        let (a, b) = mk(3);
        service
            .submit_streamed(GemmRequest::new(a, b), &sink)
            .unwrap();

        h.wait().unwrap();
        block_on(fut).unwrap();
        assert!(completions.recv().unwrap().result.is_ok());
        assert!(completions.recv().is_none());

        let snap = service.stats();
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.submitted_sync, 1);
        assert_eq!(snap.submitted_async, 1);
        assert_eq!(snap.submitted_streamed, 1);
    }

    #[test]
    fn async_submit_rejects_shape_error_without_leaking_gauge() {
        // Shutdown consumes the service, so submit-after-close is not
        // reachable from safe code (the Closed mapping is covered at the
        // queue level); what *is* reachable synchronously is shape
        // rejection, which must not leave the in-flight gauge bumped.
        let service = tiny_service();
        let bad = GemmRequest {
            alpha: 1.0f64,
            a: Matrix::zeros(4, 4).into(),
            b: Matrix::zeros(3, 4).into(), // k mismatch
            beta: 0.0,
            c: Matrix::zeros(4, 4),
            policy: FtPolicy::Off,
            injector: None,
            home: None,
            tenant: DEFAULT_TENANT,
            priority: Priority::Normal,
            deadline: None,
        };
        assert!(matches!(
            service.submit_async(bad),
            Err(ServeError::Shape(_))
        ));
        let snap = service.stats();
        assert_eq!(snap.submitted_async, 0);
        assert_eq!(snap.in_flight_async, 0);
    }

    #[test]
    fn batch_busy_time_tracks_region_wall() {
        // One pool thread: the batch region runs inline, so the summed
        // per-thread busy time must account for most of the summed region
        // wall time (the remainder is region publish/join overhead).
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 1,
            max_batch: 8,
            ..ServiceConfig::default()
        });
        let mut handles = Vec::new();
        for i in 0..16u64 {
            let a = Matrix::<f64>::random(64, 64, i);
            let b = Matrix::<f64>::random(64, 64, i + 900);
            handles.push(service.submit(GemmRequest::new(a, b)).unwrap());
        }
        for h in handles {
            h.wait().unwrap();
        }
        let snap = service.stats();
        assert_eq!(snap.batch_busy_per_thread.len(), 1);
        let busy: std::time::Duration = snap.batch_busy_per_thread.iter().sum();
        assert!(busy > std::time::Duration::ZERO);
        assert!(
            busy <= snap.batch_wall,
            "busy {busy:?} > wall {:?}",
            snap.batch_wall
        );
        assert!(
            busy >= snap.batch_wall / 2,
            "busy {busy:?} vs wall {:?}",
            snap.batch_wall
        );
        assert!(snap.batch_thread_occupancy > 0.0 && snap.batch_thread_occupancy <= 1.0 + 1e-6);
    }
}
