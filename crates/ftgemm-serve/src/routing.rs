//! Online-learned routing: where the batched-vs-matrix-parallel cutoff
//! comes from.
//!
//! The scheduler routes every request by its multiply-add count
//! (`2*m*n*k`): at most the cutoff → coalesced into a batched parallel
//! region, above it → the matrix-parallel driver. The paper's central
//! observation (fused-ABFT overhead depends sharply on problem size) is
//! exactly why the crossover matters — and why a constant eyeballed on one
//! machine ([`DEFAULT_SMALL_FLOPS_CUTOFF`](crate::DEFAULT_SMALL_FLOPS_CUTOFF))
//! is wrong on every other one.
//!
//! [`RoutingPolicy`] picks between a pinned constant
//! ([`RoutingPolicy::Fixed`]) and an online learner
//! ([`RoutingPolicy::Adaptive`]). The learner, [`CutoffLearner`], consumes
//! the timings the service already measures (batched region wall time,
//! per-request matrix-parallel wall time), buckets them by `log2(flops)`,
//! keeps an EWMA of observed ns/flop per path per bucket, and publishes its
//! current crossover estimate through an `AtomicU64` the scheduler reads
//! lock-free when partitioning each sweep.
//!
//! The decision math is pure: [`CutoffLearner::observe`] takes `(path,
//! flops, elapsed_ns)` values — the learner never reads a clock — so the
//! same observation sequence always produces the same cutoff, which is what
//! makes the learner unit-testable with synthetic timings.
//!
//! One semantic caveat worth stating plainly: the learned value is the
//! break-even **under the observed workload**, not a load-independent
//! machine constant. A batched region's wall time is attributed to its
//! items by flops share, so a full batch makes the batched path look (and
//! genuinely be) cheaper per request than an occupancy-1 batch does — the
//! amortization is the thing being measured. Likewise, once traffic goes
//! one-sided, the starved path's per-bucket estimates go stale rather than
//! decaying; the cutoff keeps steering by the last evidence it has until
//! traffic crosses the boundary again. For workloads whose mix shifts
//! violently, pin the boundary with
//! [`RoutingPolicy::Fixed`] or re-seed via [`AdaptiveConfig::seed_cutoff`].

// analyze::policy(atomics: relaxed)
// analyze::policy(publish: cutoff)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): the
// observation counters are plain Relaxed tallies, but `cutoff` is a
// publication cell — the learner Release-stores it under the model lock
// and the scheduler Acquire-loads it lock-free, so a reader that routes by
// a new cutoff also sees every model write that preceded its publication.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// How the service decides which execution path a request takes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingPolicy {
    /// Pin the batched-vs-matrix-parallel boundary to a constant
    /// multiply-add count. Deterministic routing; the right choice for
    /// tests and for deployments that have measured their crossover
    /// offline.
    Fixed(u64),
    /// Learn the boundary online from observed per-path timings (see
    /// [`CutoffLearner`]). Routing starts at
    /// [`AdaptiveConfig::seed_cutoff`] and converges toward this machine's
    /// real break-even while serving. The learner is conservative: the
    /// cutoff never moves until *both* paths have produced enough
    /// observations to compare.
    Adaptive(AdaptiveConfig),
}

impl Default for RoutingPolicy {
    fn default() -> Self {
        RoutingPolicy::Adaptive(AdaptiveConfig::default())
    }
}

/// Tuning knobs for [`RoutingPolicy::Adaptive`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Cutoff published before the learner has evidence (default:
    /// [`DEFAULT_SMALL_FLOPS_CUTOFF`](crate::DEFAULT_SMALL_FLOPS_CUTOFF)).
    pub seed_cutoff: u64,
    /// Weight of a new observation in the per-bucket EWMA, in `(0, 1]`
    /// (default `0.25`; higher reacts faster, lower smooths more).
    pub ewma_weight: f64,
    /// Observations a `(path, bucket)` cell needs before it participates in
    /// the crossover estimate (default `4`).
    pub min_observations: u64,
    /// Re-estimate the crossover every this many observations (default
    /// `16`). The estimate itself is cheap (a scan over 64 buckets) but
    /// re-running it per observation would just chase noise.
    pub update_interval: u64,
    /// Lower clamp on the published cutoff (default `2·16³`).
    pub min_cutoff: u64,
    /// Upper clamp on the published cutoff (default `2·2048³`).
    pub max_cutoff: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            seed_cutoff: crate::DEFAULT_SMALL_FLOPS_CUTOFF,
            ewma_weight: 0.25,
            min_observations: 4,
            update_interval: 16,
            min_cutoff: 2 * 16 * 16 * 16,
            max_cutoff: 2 * 2048 * 2048 * 2048,
        }
    }
}

/// Which execution path produced a timing observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePath {
    /// Coalesced into a batched parallel region (serial driver per item).
    Batched,
    /// Ran alone through the matrix-parallel driver.
    Parallel,
}

/// Point-in-time routing metrics, folded into
/// [`StatsSnapshot`](crate::StatsSnapshot).
#[derive(Debug, Clone, Copy, Default)]
pub struct RoutingSnapshot {
    /// The cutoff the scheduler is routing by right now.
    pub current_cutoff: u64,
    /// Timing observations absorbed from the batched path.
    pub batched_observations: u64,
    /// Timing observations absorbed from the matrix-parallel path.
    pub parallel_observations: u64,
    /// Times the published cutoff actually changed.
    pub cutoff_updates: u64,
}

/// Number of `log2(flops)` buckets — one per possible bit position of a
/// `u64` multiply-add count.
const BUCKETS: usize = 64;

/// EWMA cell for one `(path, bucket)` pair.
#[derive(Debug, Clone, Copy, Default)]
struct PathCell {
    /// EWMA of observed nanoseconds per multiply-add.
    ewma_ns_per_flop: f64,
    /// Observations folded into the EWMA.
    count: u64,
}

/// Mutable learner state, guarded by one mutex (observations arrive from
/// the single scheduler thread, so the lock is uncontended in the service;
/// it exists so the learner is usable — and testable — standalone).
#[derive(Debug)]
struct LearnerState {
    batched: [PathCell; BUCKETS],
    parallel: [PathCell; BUCKETS],
    /// Total observations, used to pace re-estimation.
    observations: u64,
}

/// Online estimator of the batched-vs-matrix-parallel crossover.
///
/// Feed it completed-region timings with [`observe`](Self::observe); read
/// the current estimate lock-free with [`current`](Self::current). The
/// estimate moves by at most one octave (×2 / ÷2) per update so sparse
/// early evidence cannot fling the boundary across the whole size range.
///
/// ## Decision math
///
/// Every [`AdaptiveConfig::update_interval`] observations the learner
/// re-estimates: for each bucket it predicts each path's ns/flop from the
/// nearest bucket with at least [`AdaptiveConfig::min_observations`]
/// samples for that path (ties prefer the smaller bucket), then publishes
/// a cutoff just below the first bucket where the matrix-parallel
/// prediction beats the batched one (so that whole bucket routes
/// parallel). No clock is consulted anywhere in this path — identical
/// observation sequences yield identical cutoffs.
#[derive(Debug)]
pub struct CutoffLearner {
    cfg: AdaptiveConfig,
    /// Published crossover estimate, read lock-free by the scheduler.
    cutoff: AtomicU64,
    state: Mutex<LearnerState>,
    batched_observations: AtomicU64,
    parallel_observations: AtomicU64,
    cutoff_updates: AtomicU64,
}

impl CutoffLearner {
    /// A learner seeded at `cfg.seed_cutoff` (clamped into
    /// `[min_cutoff, max_cutoff]`) with no evidence.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        assert!(
            cfg.ewma_weight > 0.0 && cfg.ewma_weight <= 1.0,
            "ewma_weight must be in (0, 1]"
        );
        assert!(cfg.min_cutoff <= cfg.max_cutoff, "empty cutoff range");
        assert!(cfg.update_interval >= 1, "update_interval must be >= 1");
        let seed = cfg.seed_cutoff.clamp(cfg.min_cutoff, cfg.max_cutoff);
        CutoffLearner {
            cfg,
            cutoff: AtomicU64::new(seed),
            state: Mutex::new(LearnerState {
                batched: [PathCell::default(); BUCKETS],
                parallel: [PathCell::default(); BUCKETS],
                observations: 0,
            }),
            batched_observations: AtomicU64::new(0),
            parallel_observations: AtomicU64::new(0),
            cutoff_updates: AtomicU64::new(0),
        }
    }

    /// The crossover estimate the scheduler should route by right now.
    pub fn current(&self) -> u64 {
        self.cutoff.load(Ordering::Acquire)
    }

    /// Folds one completed region into the model: `path` served a problem
    /// of `flops` multiply-adds in `elapsed_ns` nanoseconds. Zero-flop
    /// observations are ignored (nothing to normalize by).
    pub fn observe(&self, path: RoutePath, flops: u64, elapsed_ns: u64) {
        if flops == 0 {
            return;
        }
        match path {
            RoutePath::Batched => &self.batched_observations,
            RoutePath::Parallel => &self.parallel_observations,
        }
        .fetch_add(1, Ordering::Relaxed);

        let bucket = bucket_of(flops);
        let ns_per_flop = elapsed_ns as f64 / flops as f64;
        let mut state = self.state.lock();
        let cell = match path {
            RoutePath::Batched => &mut state.batched[bucket],
            RoutePath::Parallel => &mut state.parallel[bucket],
        };
        cell.ewma_ns_per_flop = if cell.count == 0 {
            ns_per_flop
        } else {
            self.cfg.ewma_weight * ns_per_flop
                + (1.0 - self.cfg.ewma_weight) * cell.ewma_ns_per_flop
        };
        cell.count += 1;
        state.observations += 1;
        if state.observations % self.cfg.update_interval == 0 {
            // Re-estimate while still holding the lock so concurrent
            // observers cannot interleave between model update and publish
            // (determinism under a single observer, sanity under many).
            if let Some(new_cutoff) = self.reestimate(&state) {
                self.cutoff.store(new_cutoff, Ordering::Release);
                self.cutoff_updates.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Crossover estimate from the current model, stepped at most one
    /// octave from the published cutoff and clamped; `None` when the
    /// evidence is one-sided or the estimate equals the published value.
    fn reestimate(&self, state: &LearnerState) -> Option<u64> {
        let min_obs = self.cfg.min_observations;
        // Without evidence from both paths there is nothing to compare —
        // and a freshly seeded service sees exactly that (all traffic on
        // one side of the seed), so "no movement" is the safe answer.
        let any_eligible = |cells: &[PathCell; BUCKETS]| cells.iter().any(|c| c.count >= min_obs);
        if !any_eligible(&state.batched) || !any_eligible(&state.parallel) {
            return None;
        }

        // First bucket where the matrix-parallel prediction beats the
        // batched one. The cutoff lands one below that bucket's lower edge
        // (`2^b - 1`): routing is `flops <= cutoff → batched`, so a problem
        // of exactly `2^b` flops — squarely in the bucket parallel just
        // won — must route parallel, not batched.
        let mut crossover = None;
        for b in 0..BUCKETS {
            let batched = nearest_estimate(&state.batched, min_obs, b);
            let parallel = nearest_estimate(&state.parallel, min_obs, b);
            if parallel < batched {
                crossover = Some(b);
                break;
            }
        }
        let target = match crossover {
            Some(0) => self.cfg.min_cutoff, // parallel wins even the smallest problems
            Some(b) => (1u64 << b) - 1,
            None => self.cfg.max_cutoff, // batched wins everywhere observed
        };

        let current = self.cutoff.load(Ordering::Acquire);
        let stepped = target.clamp(current / 2, current.saturating_mul(2));
        let clamped = stepped.clamp(self.cfg.min_cutoff, self.cfg.max_cutoff);
        (clamped != current).then_some(clamped)
    }

    /// Predicted nanoseconds per multiply-add for a problem of `flops`
    /// multiply-adds, evaluated on the path the current cutoff would route
    /// it to and taken from the nearest `log2(flops)` bucket with at least
    /// [`AdaptiveConfig::min_observations`] samples (ties prefer the
    /// smaller bucket, same as the crossover estimate). `None` until that
    /// path has any eligible bucket — deadline admission control treats "no
    /// evidence" as "admit", so a cold learner never rejects.
    ///
    /// Like every other learner read, this consults no clock: identical
    /// observation histories give identical estimates.
    pub fn estimate_ns_per_flop(&self, flops: u64) -> Option<f64> {
        if flops == 0 {
            return None;
        }
        let path = if flops <= self.current() {
            RoutePath::Batched
        } else {
            RoutePath::Parallel
        };
        let state = self.state.lock();
        let cells = match path {
            RoutePath::Batched => &state.batched,
            RoutePath::Parallel => &state.parallel,
        };
        let min_obs = self.cfg.min_observations;
        if !cells.iter().any(|c| c.count >= min_obs) {
            return None;
        }
        Some(nearest_estimate(cells, min_obs, bucket_of(flops)))
    }

    /// Routing metrics for [`StatsSnapshot`](crate::StatsSnapshot).
    pub fn snapshot(&self) -> RoutingSnapshot {
        RoutingSnapshot {
            current_cutoff: self.current(),
            batched_observations: self.batched_observations.load(Ordering::Relaxed),
            parallel_observations: self.parallel_observations.load(Ordering::Relaxed),
            cutoff_updates: self.cutoff_updates.load(Ordering::Relaxed),
        }
    }
}

/// `floor(log2(flops))` — the bucket index of a multiply-add count.
fn bucket_of(flops: u64) -> usize {
    debug_assert!(flops > 0);
    (63 - flops.leading_zeros()) as usize
}

/// Predicted ns/flop for bucket `b`: the EWMA of the nearest bucket with
/// enough samples (ties prefer the smaller bucket). Callers have verified
/// at least one eligible bucket exists.
fn nearest_estimate(cells: &[PathCell; BUCKETS], min_obs: u64, b: usize) -> f64 {
    for d in 0..BUCKETS {
        if b >= d && cells[b - d].count >= min_obs {
            return cells[b - d].ewma_ns_per_flop;
        }
        let up = b + d;
        if up < BUCKETS && cells[up].count >= min_obs {
            return cells[up].ewma_ns_per_flop;
        }
    }
    unreachable!("caller checked an eligible bucket exists");
}

/// The resolved routing state a service holds: either a constant or a live
/// learner (boxed — the learner's bucket tables dwarf the constant).
#[derive(Debug)]
pub(crate) enum RouteState {
    Fixed(u64),
    Adaptive(Box<CutoffLearner>),
}

impl RouteState {
    pub(crate) fn new(policy: RoutingPolicy) -> Self {
        match policy {
            RoutingPolicy::Fixed(cutoff) => RouteState::Fixed(cutoff),
            RoutingPolicy::Adaptive(cfg) => RouteState::Adaptive(Box::new(CutoffLearner::new(cfg))),
        }
    }

    /// The cutoff to partition the next sweep by (lock-free).
    pub(crate) fn cutoff(&self) -> u64 {
        match self {
            RouteState::Fixed(cutoff) => *cutoff,
            RouteState::Adaptive(learner) => learner.current(),
        }
    }

    /// Feeds a completed region's timing to the learner (no-op when fixed).
    pub(crate) fn observe(&self, path: RoutePath, flops: u64, elapsed_ns: u64) {
        if let RouteState::Adaptive(learner) = self {
            learner.observe(path, flops, elapsed_ns);
        }
    }

    /// Learned ns/flop prediction for a problem of `flops` multiply-adds
    /// (deadline admission control's completion-time model). `None` under a
    /// fixed policy — a pinned cutoff carries no timing model, so admission
    /// control stays permissive — or before the learner has evidence.
    pub(crate) fn estimate_ns_per_flop(&self, flops: u64) -> Option<f64> {
        match self {
            RouteState::Fixed(_) => None,
            RouteState::Adaptive(learner) => learner.estimate_ns_per_flop(flops),
        }
    }

    pub(crate) fn snapshot(&self) -> RoutingSnapshot {
        match self {
            RouteState::Fixed(cutoff) => RoutingSnapshot {
                current_cutoff: *cutoff,
                ..RoutingSnapshot::default()
            },
            RouteState::Adaptive(learner) => learner.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config with a fast update cadence so tests need few observations.
    fn test_cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            seed_cutoff: 1 << 20,
            min_observations: 2,
            update_interval: 4,
            min_cutoff: 1 << 10,
            max_cutoff: 1 << 40,
            ..AdaptiveConfig::default()
        }
    }

    /// Feeds `n` observations of a constant ns/flop at a fixed size.
    fn feed(l: &CutoffLearner, path: RoutePath, flops: u64, ns_per_flop: f64, n: usize) {
        for _ in 0..n {
            l.observe(path, flops, (flops as f64 * ns_per_flop) as u64);
        }
    }

    #[test]
    fn seeded_cutoff_until_both_paths_observed() {
        let l = CutoffLearner::new(test_cfg());
        assert_eq!(l.current(), 1 << 20);
        // One-sided evidence (only batched): the cutoff must not move, no
        // matter how much of it arrives.
        feed(&l, RoutePath::Batched, 1 << 12, 1.0, 64);
        assert_eq!(l.current(), 1 << 20, "one-sided evidence moved cutoff");
        assert_eq!(l.snapshot().cutoff_updates, 0);
        assert_eq!(l.snapshot().batched_observations, 64);
    }

    #[test]
    fn deterministic_same_observations_same_cutoff() {
        let run = || {
            let l = CutoffLearner::new(test_cfg());
            // An arbitrary but fixed interleaving across sizes and paths.
            for i in 0..200u64 {
                let flops = 1u64 << (10 + (i % 14));
                let (path, npf) = if i % 3 == 0 {
                    (RoutePath::Parallel, 0.4 + (i % 7) as f64 * 0.05)
                } else {
                    (RoutePath::Batched, 0.9 + (i % 5) as f64 * 0.1)
                };
                l.observe(path, flops, (flops as f64 * npf) as u64);
            }
            (l.current(), l.snapshot().cutoff_updates)
        };
        assert_eq!(run(), run(), "learner is not deterministic");
    }

    #[test]
    fn parallel_slower_everywhere_pushes_cutoff_up() {
        let l = CutoffLearner::new(test_cfg());
        // Batched is 1.0 ns/flop; parallel 5.0 ns/flop (region overhead
        // dwarfing the small problems it was given). Batched should absorb
        // everything: the cutoff climbs, one octave per update.
        feed(&l, RoutePath::Batched, 1 << 14, 1.0, 8);
        feed(&l, RoutePath::Parallel, 1 << 22, 5.0, 8);
        let after_first = l.current();
        assert!(after_first > 1 << 20, "cutoff did not rise: {after_first}");
        feed(&l, RoutePath::Batched, 1 << 14, 1.0, 64);
        assert!(l.current() > after_first, "cutoff stopped rising");
        assert!(l.current() <= 1 << 40, "clamp violated");
        assert!(l.snapshot().cutoff_updates >= 2);
    }

    #[test]
    fn parallel_faster_everywhere_pushes_cutoff_down() {
        let l = CutoffLearner::new(test_cfg());
        feed(&l, RoutePath::Batched, 1 << 14, 2.0, 8);
        feed(&l, RoutePath::Parallel, 1 << 22, 0.5, 8);
        assert!(
            l.current() < 1 << 20,
            "cutoff did not fall: {}",
            l.current()
        );
        // Keep feeding: converges to (and respects) the lower clamp.
        for _ in 0..16 {
            feed(&l, RoutePath::Parallel, 1 << 22, 0.5, 4);
        }
        assert_eq!(l.current(), test_cfg().min_cutoff);
    }

    #[test]
    fn converges_to_a_real_crossover_and_stays() {
        // Batched flat at 1.0 ns/flop; parallel expensive at small sizes
        // (3.0 at 2^16) and cheap at large ones (0.5 at 2^26). Nearest-
        // bucket prediction puts the crossover midway: parallel first wins
        // at bucket 22 (distance 6 to its cheap bucket vs 5 at bucket 21).
        let cfg = test_cfg();
        let l = CutoffLearner::new(cfg);
        for _ in 0..32 {
            feed(&l, RoutePath::Batched, 1 << 16, 1.0, 2);
            feed(&l, RoutePath::Parallel, 1 << 16, 3.0, 2);
            feed(&l, RoutePath::Batched, 1 << 26, 1.0, 2);
            feed(&l, RoutePath::Parallel, 1 << 26, 0.5, 2);
        }
        // Published just below bucket 22's lower edge: a problem of exactly
        // 2^22 flops is in the bucket parallel wins, so it must not satisfy
        // `flops <= cutoff`.
        assert_eq!(l.current(), (1 << 22) - 1, "crossover estimate off");
        let updates = l.snapshot().cutoff_updates;
        // More of the same evidence must not move a converged cutoff.
        for _ in 0..8 {
            feed(&l, RoutePath::Batched, 1 << 16, 1.0, 2);
            feed(&l, RoutePath::Parallel, 1 << 26, 0.5, 2);
        }
        assert_eq!(l.current(), (1 << 22) - 1);
        assert_eq!(
            l.snapshot().cutoff_updates,
            updates,
            "converged cutoff still updating"
        );
    }

    #[test]
    fn moves_at_most_one_octave_per_update() {
        let cfg = test_cfg();
        let l = CutoffLearner::new(cfg);
        // Evidence says "parallel wins everywhere" (target = min_cutoff,
        // ten octaves below the seed) — but each update may halve at most.
        feed(&l, RoutePath::Batched, 1 << 14, 9.0, 2);
        feed(&l, RoutePath::Parallel, 1 << 22, 0.1, 2);
        assert_eq!(l.current(), 1 << 19, "first update must step one octave");
        feed(&l, RoutePath::Parallel, 1 << 22, 0.1, 4);
        assert_eq!(l.current(), 1 << 18, "second update must step one octave");
    }

    #[test]
    fn zero_flop_observations_ignored() {
        let l = CutoffLearner::new(test_cfg());
        l.observe(RoutePath::Batched, 0, 1_000);
        let snap = l.snapshot();
        assert_eq!(snap.batched_observations, 0);
        assert_eq!(snap.cutoff_updates, 0);
    }

    #[test]
    fn bucket_of_is_floor_log2() {
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1 << 20), 20);
        assert_eq!(bucket_of((1 << 21) - 1), 20);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn estimate_ns_per_flop_follows_the_routed_path() {
        let l = CutoffLearner::new(test_cfg()); // seed cutoff 2^20
        assert_eq!(l.estimate_ns_per_flop(1 << 14), None, "no evidence yet");

        // Batched evidence at 2.0 ns/flop, parallel at 0.5 ns/flop. A
        // problem below the cutoff is predicted from the batched cells, one
        // above it from the parallel cells.
        feed(&l, RoutePath::Batched, 1 << 14, 2.0, 2);
        let below = l.estimate_ns_per_flop(1 << 14).unwrap();
        assert!((below - 2.0).abs() < 1e-9, "batched estimate: {below}");
        assert_eq!(
            l.estimate_ns_per_flop(1 << 30),
            None,
            "above-cutoff request needs parallel evidence, which is absent"
        );
        feed(&l, RoutePath::Parallel, 1 << 30, 0.5, 2);
        let above = l.estimate_ns_per_flop(1 << 30).unwrap();
        assert!((above - 0.5).abs() < 1e-9, "parallel estimate: {above}");
        assert_eq!(l.estimate_ns_per_flop(0), None);
    }

    #[test]
    fn fixed_route_state_has_no_ns_per_flop_model() {
        let r = RouteState::new(RoutingPolicy::Fixed(1234));
        r.observe(RoutePath::Batched, 1 << 20, 1 << 20);
        assert_eq!(r.estimate_ns_per_flop(1 << 20), None);
    }

    #[test]
    fn fixed_route_state_never_moves_or_counts() {
        let r = RouteState::new(RoutingPolicy::Fixed(1234));
        r.observe(RoutePath::Batched, 1 << 20, 1 << 20);
        r.observe(RoutePath::Parallel, 1 << 24, 1 << 20);
        assert_eq!(r.cutoff(), 1234);
        let snap = r.snapshot();
        assert_eq!(snap.current_cutoff, 1234);
        assert_eq!(snap.batched_observations, 0);
        assert_eq!(snap.parallel_observations, 0);
        assert_eq!(snap.cutoff_updates, 0);
    }

    #[test]
    fn seed_clamped_into_range() {
        let cfg = AdaptiveConfig {
            seed_cutoff: 1,
            min_cutoff: 1 << 12,
            max_cutoff: 1 << 30,
            ..AdaptiveConfig::default()
        };
        assert_eq!(CutoffLearner::new(cfg).current(), 1 << 12);
    }
}
