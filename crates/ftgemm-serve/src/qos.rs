//! Multi-tenant quality-of-service primitives: tenant weights, priority
//! classes, and the flops-weighted deficit-round-robin (DRR) scheduler that
//! orders work inside each node group.
//!
//! # Scheduling model
//!
//! Every request belongs to a *tenant* and carries a *priority class* and an
//! optional *deadline*. The scheduler composes three mechanisms, outermost
//! first:
//!
//! 1. **DRR across tenants** — each tenant owns a lane with a deficit counter
//!    measured in flops. When a lane is visited it is credited
//!    `quantum_flops * weight`; requests are served while the lane's deficit
//!    covers the head request's planned flops, then the lane rotates to the
//!    back of the active ring. Backlogged lanes carry their residual deficit
//!    to the next round; a lane that drains resets its deficit to zero so an
//!    idle tenant cannot bank credit. With `quantum_flops` at least as large
//!    as the biggest single request, a backlogged tenant's served-flops share
//!    over any window is within one max-request granularity of
//!    `weight / total_active_weight` — the classic Shreedhar-Varghese bound.
//! 2. **Priority classes within a lane** — `High` before `Normal` before
//!    `Low`. Classes are scoped to the lane on purpose: marking every request
//!    `High` lets a tenant reorder *its own* work but cannot grow its
//!    cross-tenant share, which is fixed by the DRR weight.
//! 3. **EDF within a class** — earliest deadline first; requests without a
//!    deadline sort last ([`NO_DEADLINE`]). Ties break FIFO by admission
//!    sequence number.
//!
//! The scheduler is purely mechanical: no clocks, no randomness. Time enters
//! only through the deadline keys the caller supplies, which is what makes
//! the [`SchedSim`] harness exact rather than statistical.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Identifies a tenant. Tenant `0` is the default for requests that do not
/// set one explicitly.
pub type TenantId = u32;

/// Tenant id assumed when a request does not name one.
pub const DEFAULT_TENANT: TenantId = 0;

/// Deadline key used for requests without a deadline: sorts after every real
/// deadline, so deadline-bearing work within the same class goes first.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Default DRR quantum in flops. One 256^3 GEMM (2·256³ flops) per weight
/// unit per round: large enough to cover typical single requests (so the
/// one-max-request fairness bound holds) without making rounds coarse.
pub const DEFAULT_QUANTUM_FLOPS: u64 = 2 * 256 * 256 * 256;

/// Priority class of a request. Classes order work *within* a tenant's lane;
/// they do not affect the cross-tenant share (that is the DRR weight's job).
///
/// `High` sorts before `Normal` before `Low`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive work: served before everything else in the lane.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background work: served only when the lane has nothing more urgent.
    Low,
}

impl Priority {
    /// Number of priority classes.
    pub const CLASSES: usize = 3;

    /// Dense index for per-class tables: `High` is 0, `Low` is
    /// `CLASSES - 1`.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// All classes in service order.
    pub fn all() -> [Priority; Self::CLASSES] {
        [Priority::High, Priority::Normal, Priority::Low]
    }
}

/// Per-tenant scheduling weights, shared by every node group's scheduler.
///
/// Weights are relative: a tenant with weight 4 receives four times the
/// flops-share of a tenant with weight 1 while both are backlogged. Tenants
/// absent from the table get `default_weight`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantTable {
    tenants: Vec<(TenantId, u64)>,
    default_weight: u64,
    quantum_flops: u64,
}

impl Default for TenantTable {
    fn default() -> Self {
        TenantTable {
            tenants: Vec::new(),
            default_weight: 1,
            quantum_flops: DEFAULT_QUANTUM_FLOPS,
        }
    }
}

impl TenantTable {
    /// Empty table: every tenant gets weight 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) the weight for `tenant`.
    pub fn tenant(mut self, tenant: TenantId, weight: u64) -> Self {
        if let Some(slot) = self.tenants.iter_mut().find(|(t, _)| *t == tenant) {
            slot.1 = weight;
        } else {
            self.tenants.push((tenant, weight));
        }
        self
    }

    /// Weight applied to tenants not listed in the table.
    pub fn default_weight(mut self, weight: u64) -> Self {
        self.default_weight = weight;
        self
    }

    /// DRR quantum in flops credited per weight unit per round.
    pub fn quantum_flops(mut self, flops: u64) -> Self {
        self.quantum_flops = flops;
        self
    }

    /// Returns the configured weight for `tenant`.
    pub fn weight_of(&self, tenant: TenantId) -> u64 {
        self.tenants
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, w)| *w)
            .unwrap_or(self.default_weight)
    }

    /// Returns the configured quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum_flops
    }

    /// Validates the table. Zero weights are rejected: a zero-weight lane
    /// would never accumulate deficit and its tenant would starve, which
    /// defeats the scheduler's no-starvation guarantee. Reject the config
    /// instead of silently wedging the tenant.
    pub fn validate(&self) -> Result<(), String> {
        if self.default_weight == 0 {
            return Err("tenant default_weight must be >= 1".into());
        }
        if self.quantum_flops == 0 {
            return Err("tenant quantum_flops must be >= 1".into());
        }
        for (tenant, weight) in &self.tenants {
            if *weight == 0 {
                return Err(format!(
                    "tenant {tenant} has weight 0; weights must be >= 1"
                ));
            }
        }
        let mut ids: Vec<TenantId> = self.tenants.iter().map(|(t, _)| *t).collect();
        ids.sort_unstable();
        if ids.windows(2).any(|w| w[0] == w[1]) {
            return Err("tenant table contains duplicate tenant ids".into());
        }
        Ok(())
    }
}

/// A request popped from the scheduler, with the keys it was ordered by.
#[derive(Debug)]
pub struct Scheduled<P> {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Priority class the request was queued under.
    pub class: Priority,
    /// Absolute deadline key supplied at push; [`NO_DEADLINE`] if none.
    pub deadline_ns: u64,
    /// Planned cost in flops, as charged against the tenant's deficit.
    pub cost_flops: u64,
    /// Admission sequence number (FIFO tie-break key).
    pub seq: u64,
    /// The caller's payload, returned unchanged.
    pub payload: P,
}

/// Heap entry: ordered by (deadline, seq) only; cost and payload ride along.
struct Item<P> {
    deadline_ns: u64,
    seq: u64,
    cost_flops: u64,
    payload: P,
}

impl<P> PartialEq for Item<P> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_ns == other.deadline_ns && self.seq == other.seq
    }
}
impl<P> Eq for Item<P> {}
impl<P> PartialOrd for Item<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for Item<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline_ns, self.seq).cmp(&(other.deadline_ns, other.seq))
    }
}

struct Lane<P> {
    tenant: TenantId,
    /// Live weight. Read at replenishment time, so `set_weight` takes effect
    /// the next time the lane starts a round — never mid-visit.
    weight: u64,
    /// Deficit in flops. Kept signed so tests can assert it never dips below
    /// zero; the pop discipline only subtracts a cost it has verified the
    /// deficit covers.
    deficit: i64,
    classes: [BinaryHeap<Reverse<Item<P>>>; Priority::CLASSES],
    pending: usize,
}

impl<P> Lane<P> {
    fn new(tenant: TenantId, weight: u64) -> Self {
        Lane {
            tenant,
            weight,
            deficit: 0,
            classes: [BinaryHeap::new(), BinaryHeap::new(), BinaryHeap::new()],
            pending: 0,
        }
    }

    /// (class index, head cost) of the most urgent pending item, if any.
    fn head(&self) -> Option<(usize, u64)> {
        for (ci, heap) in self.classes.iter().enumerate() {
            if let Some(Reverse(item)) = heap.peek() {
                return Some((ci, item.cost_flops));
            }
        }
        None
    }
}

/// Flops-weighted deficit round-robin across tenants with priority-then-EDF
/// ordering inside each lane. Deterministic: identical push/pop sequences
/// produce identical service orders.
pub struct DrrScheduler<P> {
    table: TenantTable,
    lanes: Vec<Lane<P>>,
    /// tenant id -> lane index.
    index: BTreeMap<TenantId, usize>,
    /// Ring of backlogged lanes, in visit order.
    active: VecDeque<usize>,
    /// Lane currently being served within its visit, if any.
    current: Option<usize>,
    pending: usize,
    pending_flops: u64,
}

impl<P> DrrScheduler<P> {
    /// Scheduler over `table`'s tenants (lanes materialize on first push).
    /// Debug-asserts the table validates; services validate at config time.
    pub fn new(table: TenantTable) -> Self {
        debug_assert!(table.validate().is_ok(), "invalid tenant table");
        DrrScheduler {
            table,
            lanes: Vec::new(),
            index: BTreeMap::new(),
            active: VecDeque::new(),
            current: None,
            pending: 0,
            pending_flops: 0,
        }
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.pending
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Total planned flops currently queued.
    pub fn pending_flops(&self) -> u64 {
        self.pending_flops
    }

    /// Current deficit of `tenant`'s lane, if the lane exists.
    pub fn deficit_of(&self, tenant: TenantId) -> Option<i64> {
        self.index.get(&tenant).map(|&i| self.lanes[i].deficit)
    }

    /// Updates a tenant's weight. The new weight is read at the lane's next
    /// replenishment, i.e. it takes effect at the start of the lane's next
    /// round; a visit already in progress finishes under the old credit.
    pub fn set_weight(&mut self, tenant: TenantId, weight: u64) {
        assert!(weight >= 1, "tenant weight must be >= 1");
        self.table = std::mem::take(&mut self.table).tenant(tenant, weight);
        if let Some(&i) = self.index.get(&tenant) {
            self.lanes[i].weight = weight;
        }
    }

    fn lane_of(&mut self, tenant: TenantId) -> usize {
        if let Some(&i) = self.index.get(&tenant) {
            return i;
        }
        let i = self.lanes.len();
        self.lanes
            .push(Lane::new(tenant, self.table.weight_of(tenant)));
        self.index.insert(tenant, i);
        i
    }

    /// Enqueues a request. `seq` is the FIFO tie-break key and must be
    /// monotone in admission order (the queue uses the request id; the
    /// simulator a local counter). `deadline_ns` is an absolute key on the
    /// caller's clock, [`NO_DEADLINE`] for none.
    pub fn push(
        &mut self,
        tenant: TenantId,
        class: Priority,
        deadline_ns: u64,
        cost_flops: u64,
        seq: u64,
        payload: P,
    ) {
        let li = self.lane_of(tenant);
        let lane = &mut self.lanes[li];
        let was_idle = lane.pending == 0;
        lane.classes[class.index()].push(Reverse(Item {
            deadline_ns,
            seq,
            cost_flops,
            payload,
        }));
        lane.pending += 1;
        self.pending += 1;
        self.pending_flops = self.pending_flops.saturating_add(cost_flops);
        // A lane re-entering the backlog joins the back of the ring and, per
        // DRR, starts from a zero deficit (reset when it drained).
        if was_idle && self.current != Some(li) {
            self.active.push_back(li);
        }
    }

    /// Pops the next request in DRR/priority/EDF order.
    pub fn pop(&mut self) -> Option<Scheduled<P>> {
        loop {
            if self.pending == 0 {
                return None;
            }
            let li = match self.current {
                Some(li) => li,
                None => {
                    let li = self.active.pop_front()?;
                    let lane = &mut self.lanes[li];
                    let credit = lane.weight.saturating_mul(self.table.quantum());
                    let credit = i64::try_from(credit).unwrap_or(i64::MAX);
                    lane.deficit = lane.deficit.saturating_add(credit);
                    self.current = Some(li);
                    li
                }
            };
            let lane = &mut self.lanes[li];
            match lane.head() {
                None => {
                    // Drained while current (should not happen: pop clears
                    // `current` when a lane empties) — reset defensively.
                    lane.deficit = 0;
                    self.current = None;
                }
                Some((ci, cost)) if i64::try_from(cost).unwrap_or(i64::MAX) <= lane.deficit => {
                    lane.deficit -= i64::try_from(cost).unwrap_or(i64::MAX);
                    debug_assert!(lane.deficit >= 0);
                    let Reverse(item) = lane.classes[ci].pop().expect("head exists");
                    lane.pending -= 1;
                    self.pending -= 1;
                    self.pending_flops = self.pending_flops.saturating_sub(item.cost_flops);
                    let tenant = lane.tenant;
                    if lane.pending == 0 {
                        // Idle lanes do not bank credit.
                        lane.deficit = 0;
                        self.current = None;
                    }
                    return Some(Scheduled {
                        tenant,
                        class: Priority::all()[ci],
                        deadline_ns: item.deadline_ns,
                        cost_flops: item.cost_flops,
                        seq: item.seq,
                        payload: item.payload,
                    });
                }
                Some(_) => {
                    // Deficit does not cover the head request: rotate to the
                    // back of the ring, carrying the residual deficit.
                    self.active.push_back(li);
                    self.current = None;
                }
            }
        }
    }
}

/// Deterministic scheduler simulator: a [`DrrScheduler`] plus a synthetic
/// nanosecond clock and per-tenant service tallies. Drives the exact decision
/// functions the serving queue uses, with no threads, sleeps, or real time —
/// fairness properties checked against it are exact.
pub struct SchedSim {
    sched: DrrScheduler<()>,
    now_ns: u64,
    next_seq: u64,
    served: BTreeMap<TenantId, Tally>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Tally {
    count: u64,
    flops: u64,
}

/// One serviced request as observed by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimServed {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Priority class the request was queued under.
    pub class: Priority,
    /// Admission sequence number.
    pub seq: u64,
    /// Planned cost in flops.
    pub cost_flops: u64,
    /// Absolute deadline key; [`NO_DEADLINE`] if none was set.
    pub deadline_ns: u64,
    /// Simulated clock at service time.
    pub served_at_ns: u64,
    /// True when the deadline had already passed at service time.
    pub expired: bool,
}

impl SchedSim {
    /// New simulator over a fresh scheduler configured by `table`.
    pub fn new(table: TenantTable) -> Self {
        SchedSim {
            sched: DrrScheduler::new(table),
            now_ns: 0,
            next_seq: 0,
            served: BTreeMap::new(),
        }
    }

    /// Current synthetic time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the synthetic clock.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
    }

    /// Enqueues a request arriving now. `deadline_rel_ns` is relative to the
    /// current synthetic time. Returns the admission sequence number.
    pub fn arrive(
        &mut self,
        tenant: TenantId,
        class: Priority,
        deadline_rel_ns: Option<u64>,
        cost_flops: u64,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let deadline_ns = deadline_rel_ns
            .map(|rel| self.now_ns.saturating_add(rel))
            .unwrap_or(NO_DEADLINE);
        self.sched
            .push(tenant, class, deadline_ns, cost_flops, seq, ());
        seq
    }

    /// Pops the next request per scheduler order and tallies it.
    pub fn pop(&mut self) -> Option<SimServed> {
        let s = self.sched.pop()?;
        let tally = self.served.entry(s.tenant).or_default();
        tally.count += 1;
        tally.flops = tally.flops.saturating_add(s.cost_flops);
        Some(SimServed {
            tenant: s.tenant,
            class: s.class,
            seq: s.seq,
            cost_flops: s.cost_flops,
            deadline_ns: s.deadline_ns,
            served_at_ns: self.now_ns,
            expired: s.deadline_ns != NO_DEADLINE && self.now_ns > s.deadline_ns,
        })
    }

    /// Pops and simulates service time at `ns_per_flop`, advancing the clock.
    pub fn pop_and_run(&mut self, ns_per_flop: f64) -> Option<SimServed> {
        let served = self.pop()?;
        let dur = (served.cost_flops as f64 * ns_per_flop).ceil() as u64;
        self.advance(dur);
        Some(served)
    }

    /// Total flops served for `tenant` so far.
    pub fn served_flops(&self, tenant: TenantId) -> u64 {
        self.served.get(&tenant).map(|t| t.flops).unwrap_or(0)
    }

    /// Requests served for `tenant` so far.
    pub fn served_count(&self, tenant: TenantId) -> u64 {
        self.served.get(&tenant).map(|t| t.count).unwrap_or(0)
    }

    /// Queued requests not yet served.
    pub fn backlog(&self) -> usize {
        self.sched.len()
    }

    /// Current deficit of a tenant's lane.
    pub fn deficit_of(&self, tenant: TenantId) -> Option<i64> {
        self.sched.deficit_of(tenant)
    }

    /// Re-weights a tenant mid-trace (effective at its next round).
    pub fn set_weight(&mut self, tenant: TenantId, weight: u64) {
        self.sched.set_weight(tenant, weight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2(w1: u64, w2: u64) -> TenantTable {
        TenantTable::new()
            .tenant(1, w1)
            .tenant(2, w2)
            .quantum_flops(100)
    }

    #[test]
    fn validate_rejects_zero_weight() {
        assert!(TenantTable::new().tenant(7, 0).validate().is_err());
        assert!(TenantTable::new().default_weight(0).validate().is_err());
        assert!(TenantTable::new().quantum_flops(0).validate().is_err());
        assert!(TenantTable::new().tenant(7, 3).validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_ids_built_externally() {
        // The builder replaces duplicates, so construct the degenerate case
        // is impossible through the API; the builder path must stay valid.
        let t = TenantTable::new().tenant(1, 2).tenant(1, 3);
        assert!(t.validate().is_ok());
        assert_eq!(t.weight_of(1), 3);
    }

    #[test]
    fn weights_split_flops_proportionally() {
        let mut sim = SchedSim::new(table2(3, 1));
        for _ in 0..40 {
            sim.arrive(1, Priority::Normal, None, 50);
            sim.arrive(2, Priority::Normal, None, 50);
        }
        // Serve 40 requests (half the backlog) while both stay backlogged.
        let mut flops = BTreeMap::new();
        for _ in 0..40 {
            let s = sim.pop().unwrap();
            *flops.entry(s.tenant).or_insert(0u64) += s.cost_flops;
        }
        let f1 = flops[&1] as f64;
        let f2 = flops[&2] as f64;
        // 3:1 within one quantum*weight of slack.
        assert!((f1 / f2 - 3.0).abs() <= 1.0, "share {f1}:{f2}");
    }

    #[test]
    fn deficit_never_negative_and_resets_on_drain() {
        let mut sim = SchedSim::new(table2(2, 1));
        sim.arrive(1, Priority::Normal, None, 150);
        sim.arrive(1, Priority::Normal, None, 150);
        sim.arrive(2, Priority::Normal, None, 40);
        while sim.pop().is_some() {
            for t in [1, 2] {
                if let Some(d) = sim.deficit_of(t) {
                    assert!(d >= 0, "tenant {t} deficit {d} went negative");
                }
            }
        }
        // Drained lanes bank nothing.
        assert_eq!(sim.deficit_of(1), Some(0));
        assert_eq!(sim.deficit_of(2), Some(0));
    }

    #[test]
    fn edf_orders_within_class_and_ties_break_fifo() {
        let mut sim = SchedSim::new(TenantTable::new().quantum_flops(1000));
        let late = sim.arrive(1, Priority::Normal, Some(900), 10);
        let early = sim.arrive(1, Priority::Normal, Some(100), 10);
        let tie_a = sim.arrive(1, Priority::Normal, Some(500), 10);
        let tie_b = sim.arrive(1, Priority::Normal, Some(500), 10);
        let none = sim.arrive(1, Priority::Normal, None, 10);
        let order: Vec<u64> = std::iter::from_fn(|| sim.pop()).map(|s| s.seq).collect();
        assert_eq!(order, vec![early, tie_a, tie_b, late, none]);
    }

    #[test]
    fn priority_classes_serve_high_first_within_a_lane() {
        let mut sim = SchedSim::new(TenantTable::new().quantum_flops(1000));
        let low = sim.arrive(1, Priority::Low, Some(10), 10);
        let normal = sim.arrive(1, Priority::Normal, Some(999), 10);
        let high = sim.arrive(1, Priority::High, None, 10);
        let order: Vec<u64> = std::iter::from_fn(|| sim.pop()).map(|s| s.seq).collect();
        // Class dominates deadline inside a lane.
        assert_eq!(order, vec![high, normal, low]);
    }

    #[test]
    fn weight_change_takes_effect_next_round() {
        let mut sim = SchedSim::new(table2(1, 1));
        for _ in 0..12 {
            sim.arrive(1, Priority::Normal, None, 100);
            sim.arrive(2, Priority::Normal, None, 100);
        }
        // Round 1: equal weights alternate 1, 2.
        assert_eq!(sim.pop().unwrap().tenant, 1);
        assert_eq!(sim.pop().unwrap().tenant, 2);
        // Re-weight tenant 1 to 3 mid-trace: next visits credit 3 quanta.
        sim.set_weight(1, 3);
        let mut next: Vec<TenantId> = Vec::new();
        for _ in 0..8 {
            next.push(sim.pop().unwrap().tenant);
        }
        // Tenant 1 now takes 3 of every 4 slots.
        assert_eq!(next, vec![1, 1, 1, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn background_tenant_not_starved() {
        // Foreground floods large requests; background weight 1 still gets
        // served within one round.
        let table = TenantTable::new()
            .tenant(1, 8)
            .tenant(2, 1)
            .quantum_flops(100);
        let mut sim = SchedSim::new(table);
        for _ in 0..200 {
            sim.arrive(1, Priority::High, Some(1), 100);
        }
        sim.arrive(2, Priority::Low, None, 100);
        let mut served_background_after = None;
        for i in 0..64 {
            let s = sim.pop().unwrap();
            if s.tenant == 2 {
                served_background_after = Some(i);
                break;
            }
        }
        // Weight 8 tenant serves at most 8 requests (8 quanta) per round;
        // the background lane must be visited in round 1.
        let waited = served_background_after.expect("background tenant starved");
        assert!(waited <= 8, "background waited {waited} pops");
    }

    #[test]
    fn determinism_identical_traces_identical_orders() {
        let run = || {
            let mut sim = SchedSim::new(table2(2, 3));
            for i in 0..30u64 {
                sim.arrive(
                    (i % 2) as TenantId + 1,
                    Priority::Normal,
                    Some(1000 - i),
                    10 + i,
                );
            }
            std::iter::from_fn(move || sim.pop())
                .map(|s| (s.tenant, s.seq))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
