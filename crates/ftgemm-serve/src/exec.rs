//! A minimal park-based executor for driving the async surfaces without an
//! async runtime.
//!
//! [`AsyncRequestHandle`](crate::AsyncRequestHandle) and
//! [`Completions::next`](crate::Completions::next) are executor-agnostic;
//! most frontends will poll them from tokio or similar. For benches, tests,
//! and plain binaries this module provides the smallest thing that works: a
//! single-thread executor whose waker unparks the calling thread. It is a
//! reference driver, not a production runtime — every wake re-polls all
//! still-pending futures (O(n) per wake), which is fine for the
//! drain-a-burst pattern these surfaces exist for.
//! `examples/async_serving.rs` hand-rolls the same ~40 lines to show there
//! is no magic in here.

// analyze::policy(publish: notified)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// `notified` carries waker hand-off — Release store by the completing
// thread, Acquire swap by the polling thread.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// Waker that unparks the executor thread.
struct ParkWaker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ParkWaker {
    fn wake(self: Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

impl ParkWaker {
    fn current() -> (Arc<Self>, Waker) {
        let parker = Arc::new(ParkWaker {
            thread: std::thread::current(),
            notified: AtomicBool::new(false),
        });
        let waker = Waker::from(Arc::clone(&parker));
        (parker, waker)
    }

    /// Parks until a wake arrives; returns immediately if one already did.
    fn park_until_notified(&self) {
        while !self.notified.swap(false, Ordering::Acquire) {
            std::thread::park();
        }
    }
}

/// Polls one future to completion on the calling thread, parking between
/// polls.
pub fn block_on<F: Future + Unpin>(mut future: F) -> F::Output {
    let (parker, waker) = ParkWaker::current();
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(v) = Pin::new(&mut future).poll(&mut cx) {
            return v;
        }
        parker.park_until_notified();
    }
}

/// Polls every future to completion on the calling thread and returns their
/// outputs in input order. One shared waker is enough: any completion
/// unparks the loop, which re-polls whatever is still pending.
pub fn block_on_all<F: Future + Unpin>(futures: Vec<F>) -> Vec<F::Output> {
    let (parker, waker) = ParkWaker::current();
    let mut cx = Context::from_waker(&waker);
    let mut pending: Vec<Option<F>> = futures.into_iter().map(Some).collect();
    let mut outputs: Vec<Option<F::Output>> = pending.iter().map(|_| None).collect();
    let mut remaining = pending.len();
    while remaining > 0 {
        for (slot, out) in pending.iter_mut().zip(outputs.iter_mut()) {
            if let Some(fut) = slot.as_mut() {
                if let Poll::Ready(v) = Pin::new(fut).poll(&mut cx) {
                    *out = Some(v);
                    *slot = None;
                    remaining -= 1;
                }
            }
        }
        if remaining > 0 {
            // If a wake landed while we were polling, the swap inside
            // short-circuits and we re-poll without parking.
            parker.park_until_notified();
        }
    }
    outputs.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Future that is pending until an external thread wakes it.
    struct ReadyAfterWake {
        ready: Arc<AtomicBool>,
        polls: usize,
    }
    impl Future for ReadyAfterWake {
        type Output = usize;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
            self.polls += 1;
            if self.ready.load(Ordering::Acquire) {
                Poll::Ready(self.polls)
            } else {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(std::future::ready(7)), 7);
    }

    #[test]
    fn block_on_pending_then_woken() {
        let ready = Arc::new(AtomicBool::new(false));
        let r2 = Arc::clone(&ready);
        let setter = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            r2.store(true, Ordering::Release);
        });
        let polls = block_on(ReadyAfterWake { ready, polls: 0 });
        assert!(polls >= 1);
        setter.join().unwrap();
    }

    #[test]
    fn block_on_all_preserves_order() {
        let futures: Vec<_> = (0..5).map(std::future::ready).collect();
        assert_eq!(block_on_all(futures), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn block_on_all_empty() {
        assert!(block_on_all(Vec::<std::future::Ready<()>>::new()).is_empty());
    }
}
