//! Error-aware fault policy: a per-node monitor that watches the detected
//! error rate flowing through the service and escalates a node's *policy
//! floor* when the rate crosses configured thresholds.
//!
//! Every completed request contributes one `(detected, flops)` observation
//! for the node that executed it, folded into a flop-volume-weighted EWMA
//! ([`ftgemm_faults::ErrorRateEwma`]). When a node's estimated
//! errors-per-flop crosses [`FaultPolicyConfig::detect_threshold`] its
//! floor rises to [`FtPolicy::Detect`]; past
//! [`FaultPolicyConfig::correct_threshold`] it rises to
//! [`FtPolicy::DetectCorrect`]. The floor composes with each request's own
//! policy via [`FtPolicy::at_least`] — it can only *raise* protection,
//! never lower it — so a flaky node transparently verifies even requests
//! that asked for `Off`, while clean nodes keep serving `Off` requests at
//! the unprotected driver's cost. After
//! [`FaultPolicyConfig::quiet_flops`] of consecutive clean flops the floor
//! steps back down one level (full de-escalation from `DetectCorrect` to
//! `Off` takes two quiet periods).

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// the per-node floor and escalation counters are advisory values read at
// dispatch time — Relaxed everywhere, never a synchronization point. A
// dispatch racing an escalation may run one request under the old floor;
// the next observation re-applies the new one.

use crate::stats::StatsSnapshot;
use ftgemm_abft::FtPolicy;
use ftgemm_faults::ErrorRateEwma;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Tuning knobs for the error-aware fault-policy monitor
/// ([`ServiceConfig::fault_policy`](crate::ServiceConfig::fault_policy)).
#[derive(Debug, Clone)]
pub struct FaultPolicyConfig {
    /// Decay volume of the per-node error-rate EWMA, in flops: one
    /// `tau_flops` of observed work carries ~63% of the estimate's weight.
    /// Smaller values react faster and forget faster.
    pub tau_flops: f64,
    /// Detected-errors-per-flop rate at which a node's floor rises to
    /// [`FtPolicy::Detect`].
    pub detect_threshold: f64,
    /// Detected-errors-per-flop rate at which a node's floor rises to
    /// [`FtPolicy::DetectCorrect`]. Should be ≥
    /// [`detect_threshold`](Self::detect_threshold).
    pub correct_threshold: f64,
    /// Consecutive clean (zero-detection) flops a node must serve before
    /// its floor steps down one level. The streak resets on every
    /// detection and after each de-escalation.
    pub quiet_flops: u64,
}

impl Default for FaultPolicyConfig {
    fn default() -> Self {
        // Sized for serving-scale requests (~1e6–1e9 flops each): the EWMA
        // remembers about a billion flops of history, Detect kicks in
        // around one detected error per 1e9 flops, DetectCorrect an order
        // of magnitude above that, and a node must serve ~5 tau of clean
        // work to step back down.
        FaultPolicyConfig {
            tau_flops: 1.0e9,
            detect_threshold: 1.0e-9,
            correct_threshold: 1.0e-8,
            quiet_flops: 5_000_000_000,
        }
    }
}

/// Numeric floor encoding shared with `ftgemm_ftpolicy_node_floor`:
/// `0` = Off, `1` = Detect, `2` = DetectCorrect.
fn policy_from_level(level: u8) -> FtPolicy {
    match level {
        0 => FtPolicy::Off,
        1 => FtPolicy::Detect,
        _ => FtPolicy::DetectCorrect,
    }
}

/// Mutable per-node monitor state (brief lock once per completed request).
#[derive(Debug)]
struct NodeState {
    ewma: ErrorRateEwma,
    /// Consecutive clean flops since the last detection (or de-escalation).
    clean_flops: u64,
}

/// One node's slice of the monitor.
#[derive(Debug)]
struct NodeMonitor {
    state: Mutex<NodeState>,
    /// Published floor level (`0`/`1`/`2`), read lock-free at dispatch.
    floor: AtomicU8,
    /// Times this node's floor was raised.
    escalations: AtomicU64,
    /// Times this node's floor stepped back down.
    deescalations: AtomicU64,
}

/// The service-wide error-aware policy monitor: one [`NodeMonitor`] per
/// topology node, fed by the completion path and read by the dispatchers.
#[derive(Debug)]
pub(crate) struct FaultPolicyMonitor {
    config: FaultPolicyConfig,
    nodes: Vec<NodeMonitor>,
}

impl FaultPolicyMonitor {
    pub(crate) fn new(config: FaultPolicyConfig, nnodes: usize) -> Self {
        let nodes = (0..nnodes.max(1))
            .map(|_| NodeMonitor {
                state: Mutex::new(NodeState {
                    ewma: ErrorRateEwma::new(config.tau_flops),
                    clean_flops: 0,
                }),
                floor: AtomicU8::new(0),
                escalations: AtomicU64::new(0),
                deescalations: AtomicU64::new(0),
            })
            .collect();
        FaultPolicyMonitor { config, nodes }
    }

    /// Folds one completed request into `node`'s rate estimate and applies
    /// the escalation/de-escalation rules. Called from the completion path
    /// with the *executing* node (a stolen request's errors are evidence
    /// about the hardware that ran it, not its affinity node).
    pub(crate) fn observe(&self, node: usize, detected: u64, flops: u64) {
        let Some(n) = self.nodes.get(node) else {
            return;
        };
        let mut state = n.state.lock();
        state.ewma.observe(detected, flops);
        if detected > 0 {
            state.clean_flops = 0;
        } else {
            state.clean_flops = state.clean_flops.saturating_add(flops);
        }
        let rate = state.ewma.rate();
        let current = n.floor.load(Ordering::Relaxed);
        let demanded: u8 = if rate >= self.config.correct_threshold {
            2
        } else if rate >= self.config.detect_threshold {
            1
        } else {
            0
        };
        if demanded > current {
            n.floor.store(demanded, Ordering::Relaxed);
            n.escalations.fetch_add(1, Ordering::Relaxed);
        } else if current > 0 && state.clean_flops >= self.config.quiet_flops {
            // One level per quiet period; resetting the streak makes full
            // de-escalation take one quiet period per level.
            n.floor.store(current - 1, Ordering::Relaxed);
            n.deescalations.fetch_add(1, Ordering::Relaxed);
            state.clean_flops = 0;
        }
    }

    /// The policy floor currently in force on `node` (lock-free; composed
    /// with each request's own policy via [`FtPolicy::at_least`] at
    /// dispatch).
    pub(crate) fn floor(&self, node: usize) -> FtPolicy {
        self.nodes
            .get(node)
            .map(|n| policy_from_level(n.floor.load(Ordering::Relaxed)))
            .unwrap_or(FtPolicy::Off)
    }

    /// Copies the monitor's per-node state onto a snapshot (the zeroed
    /// `ft_*` fields [`ServiceStats::snapshot`](crate::stats) constructs).
    pub(crate) fn overlay(&self, snap: &mut StatsSnapshot) {
        for row in snap.per_node.iter_mut() {
            let Some(n) = self.nodes.get(row.node) else {
                continue;
            };
            row.ft_floor = n.floor.load(Ordering::Relaxed);
            row.ft_escalations = n.escalations.load(Ordering::Relaxed);
            row.ft_deescalations = n.deescalations.load(Ordering::Relaxed);
        }
        snap.ft_error_rate_per_node = self
            .nodes
            .iter()
            .map(|n| n.state.lock().ewma.rate())
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultPolicyConfig {
        FaultPolicyConfig {
            tau_flops: 1_000.0,
            detect_threshold: 1e-4,
            correct_threshold: 1e-3,
            quiet_flops: 10_000,
        }
    }

    #[test]
    fn clean_traffic_keeps_the_floor_off() {
        let m = FaultPolicyMonitor::new(config(), 2);
        for _ in 0..100 {
            m.observe(0, 0, 1_000);
        }
        assert_eq!(m.floor(0), FtPolicy::Off);
        assert_eq!(m.floor(1), FtPolicy::Off);
    }

    #[test]
    fn error_bursts_escalate_only_the_faulty_node() {
        let m = FaultPolicyMonitor::new(config(), 2);
        // 10 detections per 1000 flops = 1e-2 >> correct_threshold.
        m.observe(1, 10, 1_000);
        assert_eq!(m.floor(0), FtPolicy::Off, "clean node untouched");
        assert_eq!(m.floor(1), FtPolicy::DetectCorrect);
        let mut snap = StatsSnapshot::empty_for_test(2, 2);
        m.overlay(&mut snap);
        assert_eq!(snap.per_node[1].ft_floor, 2);
        assert_eq!(snap.per_node[1].ft_escalations, 1);
        assert_eq!(snap.per_node[0].ft_floor, 0);
        assert!(snap.ft_error_rate_per_node[1] > snap.ft_error_rate_per_node[0]);
    }

    #[test]
    fn moderate_rates_land_on_detect() {
        let m = FaultPolicyMonitor::new(config(), 1);
        // Rate settles near 2e-4: above detect, below correct. Feed enough
        // volume for the EWMA to converge past the threshold.
        for _ in 0..20 {
            m.observe(0, 1, 5_000);
        }
        assert_eq!(m.floor(0), FtPolicy::Detect);
    }

    #[test]
    fn quiet_volume_steps_the_floor_down_one_level_at_a_time() {
        let m = FaultPolicyMonitor::new(config(), 1);
        m.observe(0, 50, 1_000);
        assert_eq!(m.floor(0), FtPolicy::DetectCorrect);
        // One quiet period (>= 10_000 clean flops) per level.
        for _ in 0..10 {
            m.observe(0, 0, 1_000);
        }
        assert_eq!(m.floor(0), FtPolicy::Detect);
        for _ in 0..10 {
            m.observe(0, 0, 1_000);
        }
        assert_eq!(m.floor(0), FtPolicy::Off);
        let mut snap = StatsSnapshot::empty_for_test(1, 1);
        m.overlay(&mut snap);
        assert_eq!(snap.per_node[0].ft_deescalations, 2);
    }

    #[test]
    fn detections_reset_the_quiet_streak() {
        let m = FaultPolicyMonitor::new(config(), 1);
        m.observe(0, 50, 1_000);
        for _ in 0..9 {
            m.observe(0, 0, 1_000);
        }
        // Streak at 9_000 of 10_000 — one detection sends it back to zero
        // (the rate has decayed below the thresholds by now, but the floor
        // only drops on quiet volume, never on rate alone).
        m.observe(0, 1, 500);
        for _ in 0..9 {
            m.observe(0, 0, 1_000);
        }
        assert_eq!(m.floor(0), FtPolicy::DetectCorrect, "streak must reset");
    }

    #[test]
    fn out_of_range_nodes_are_ignored() {
        let m = FaultPolicyMonitor::new(config(), 1);
        m.observe(7, 100, 100);
        assert_eq!(m.floor(7), FtPolicy::Off);
        assert_eq!(m.floor(0), FtPolicy::Off);
    }
}
