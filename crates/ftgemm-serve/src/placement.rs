//! Request → node placement: which memory domain a request is queued on.
//!
//! The scheduler keeps a GEMM's compute on the node that owns its operands
//! (the paper's serving results depend on exactly that locality). Placement
//! is decided **once, at submit time** — the chosen node is stamped on the
//! envelope as its *node affinity* and selects the node's shard group in the
//! [`ShardedQueue`](crate::queue::ShardedQueue). A request leaves its
//! affinity node only through explicit work stealing, when that node's
//! shard group runs dry while another node has backlog.
//!
//! Every decision path here is a pure function of the request and the
//! current queue depths — no wall clock, no RNG — so placement is
//! reproducible under [`Topology::synthetic`](ftgemm_pool::Topology):
//! identical submission sequences give identical affinities.

use crate::request::GemmRequest;
use ftgemm_core::Scalar;
use std::sync::atomic::{AtomicUsize, Ordering};

/// How the service picks a request's node affinity at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Cycle over nodes in submission order. Ignores locality; useful as a
    /// balanced-load baseline and for tests that want a known placement
    /// sequence.
    RoundRobin,
    /// The node that owns the request's operands (the default). An explicit
    /// [`GemmRequest::home`](crate::GemmRequest) hint wins; without one the
    /// home is derived deterministically from the operand buffer addresses
    /// — a stand-in for a first-touch page lookup (`move_pages(2)`) that
    /// keeps the decision cheap and reproducible on machines where real
    /// NUMA introspection is unavailable.
    #[default]
    OperandHome,
    /// The node whose shard group currently holds the fewest *planned
    /// flops* (ties break to the lowest node id). Load is measured in
    /// work, not request count — one queued 4096³ GEMM weighs thousands of
    /// times more than one 64³ — so a node buried under a single huge
    /// request is not mistaken for idle. Ignores locality in exchange for
    /// balance.
    LeastLoaded,
}

/// Submit-side placement state: the policy plus the round-robin cursor.
#[derive(Debug)]
pub(crate) struct Placer {
    policy: PlacementPolicy,
    rr: AtomicUsize,
}

impl Placer {
    pub(crate) fn new(policy: PlacementPolicy) -> Self {
        Placer {
            policy,
            rr: AtomicUsize::new(0),
        }
    }

    pub(crate) fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Stamps a node affinity for `req`. `node_load(i)` reports node `i`'s
    /// current shard-group backlog in planned flops (only consulted by
    /// `LeastLoaded`).
    pub(crate) fn place<T: Scalar>(
        &self,
        req: &GemmRequest<T>,
        nodes: usize,
        node_load: impl Fn(usize) -> u64,
    ) -> usize {
        debug_assert!(nodes >= 1);
        if nodes == 1 {
            return 0;
        }
        match self.policy {
            PlacementPolicy::RoundRobin => self.rr.fetch_add(1, Ordering::Relaxed) % nodes,
            PlacementPolicy::OperandHome => {
                req.home.unwrap_or_else(|| {
                    operand_home(
                        req.a.as_slice().as_ptr() as usize,
                        req.b.as_slice().as_ptr() as usize,
                        nodes,
                    )
                }) % nodes
            }
            PlacementPolicy::LeastLoaded => (0..nodes)
                .min_by_key(|&n| (node_load(n), n))
                .expect("nodes >= 1"),
        }
    }
}

/// Deterministic operand-home model: mixes the page-granular operand
/// addresses through a Fibonacci-hash step so adjacent allocations spread
/// over nodes instead of aliasing onto one. The math is done in `u64` so
/// the constant and the high-half extraction are well-defined on 32-bit
/// targets too.
fn operand_home(a_addr: usize, b_addr: usize, nodes: usize) -> usize {
    let page_a = a_addr as u64 >> 12;
    let page_b = b_addr as u64 >> 12;
    let mixed = (page_a ^ page_b.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (mixed >> 32) as usize % nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::Matrix;

    fn req(seed: u64) -> GemmRequest<f64> {
        GemmRequest::new(
            Matrix::<f64>::random(4, 4, seed),
            Matrix::<f64>::random(4, 4, seed + 1),
        )
    }

    #[test]
    fn single_node_short_circuits() {
        let placer = Placer::new(PlacementPolicy::LeastLoaded);
        assert_eq!(placer.place(&req(1), 1, |_| 99), 0);
    }

    #[test]
    fn round_robin_cycles() {
        let placer = Placer::new(PlacementPolicy::RoundRobin);
        let seq: Vec<usize> = (0..6).map(|i| placer.place(&req(i), 3, |_| 0)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn operand_home_honors_explicit_hint() {
        let placer = Placer::new(PlacementPolicy::OperandHome);
        let r = req(2).with_home(5);
        // Hints beyond the node count wrap rather than panic.
        assert_eq!(placer.place(&r, 4, |_| 0), 1);
        let r = req(3).with_home(2);
        assert_eq!(placer.place(&r, 4, |_| 0), 2);
    }

    #[test]
    fn operand_home_is_stable_per_request() {
        let placer = Placer::new(PlacementPolicy::OperandHome);
        let r = req(4);
        let first = placer.place(&r, 4, |_| 0);
        for _ in 0..8 {
            assert_eq!(placer.place(&r, 4, |_| 0), first);
        }
        assert!(first < 4);
    }

    #[test]
    fn least_loaded_picks_min_and_breaks_ties_low() {
        let placer = Placer::new(PlacementPolicy::LeastLoaded);
        let loads = [3u64, 1, 2, 1];
        assert_eq!(placer.place(&req(5), 4, |n| loads[n]), 1);
        let even = [2u64, 2, 2];
        assert_eq!(placer.place(&req(6), 3, |n| even[n]), 0);
    }

    #[test]
    fn least_loaded_weighs_flops_not_request_count() {
        // Node 0 holds one huge queued GEMM (2 * 1024^3 flops); node 1
        // holds four tiny ones (4 * 2 * 16^3). Counting requests would call
        // node 0 "less loaded"; counting flops must send work to node 1.
        let placer = Placer::new(PlacementPolicy::LeastLoaded);
        let huge = 2u64 * 1024 * 1024 * 1024;
        let four_tiny = 4 * 2 * 16 * 16 * 16;
        let loads = [huge, four_tiny];
        assert_eq!(placer.place(&req(7), 2, |n| loads[n]), 1);
    }
}
