//! Executor-agnostic completion channel: drain many requests as a stream.
//!
//! [`completion_channel`] builds a `(sink, stream)` pair. The sink is handed
//! to [`GemmService::submit_streamed`](crate::GemmService::submit_streamed)
//! at submit time; the scheduler's fulfill path pushes each finished
//! request's result (tagged with its id) straight into the channel instead
//! of a per-request slot. The [`Completions`] end is both a blocking
//! iterator ([`recv`](Completions::recv)) and an async stream
//! ([`poll_next`](Completions::poll_next) / [`next`](Completions::next)), so
//! the same frontend code works under a sync drain loop or any executor.
//!
//! End-of-stream is defined by in-flight accounting, not sender drops: the
//! channel knows how many submissions are outstanding, and `recv`/`next`
//! return `None` exactly when the queue is empty *and* nothing is in flight.

use crate::request::{GemmResponse, ServeError};
use ftgemm_core::Scalar;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// One finished request delivered through a completion channel.
#[derive(Debug)]
pub struct Completion<T: Scalar> {
    /// Service-assigned request id (returned by `submit_streamed`).
    pub id: u64,
    /// The request's result, exactly as a handle would have redeemed it.
    pub result: Result<GemmResponse<T>, ServeError>,
}

struct ChannelState<T: Scalar> {
    queue: VecDeque<Completion<T>>,
    /// Submitted-but-not-yet-delivered count; defines end-of-stream.
    in_flight: usize,
    /// Waker of the async consumer blocked in `poll_next`, if any.
    waker: Option<Waker>,
}

struct Channel<T: Scalar> {
    state: Mutex<ChannelState<T>>,
    ready: Condvar,
}

/// Producer end of a completion channel; cloned into each submitted
/// request's response slot.
///
/// Created by [`completion_channel`]; its only user-facing role is being
/// passed to [`GemmService::submit_streamed`](crate::GemmService::submit_streamed).
pub struct CompletionSink<T: Scalar> {
    chan: Arc<Channel<T>>,
}

impl<T: Scalar> Clone for CompletionSink<T> {
    fn clone(&self) -> Self {
        CompletionSink {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T: Scalar> CompletionSink<T> {
    /// Records one accepted submission (before it can possibly complete).
    pub(crate) fn register(&self) {
        self.chan.state.lock().in_flight += 1;
    }

    /// Rolls back `register` when the submission is rejected after all.
    /// Wakes consumers: dropping to zero in flight flips the end-of-stream
    /// predicate, and a consumer already blocked in `recv`/`poll_next` must
    /// observe that, not park forever.
    pub(crate) fn unregister(&self) {
        let waker = {
            let mut state = self.chan.state.lock();
            debug_assert!(state.in_flight > 0, "unregister without register");
            state.in_flight -= 1;
            if state.in_flight == 0 {
                self.chan.ready.notify_all();
                state.waker.take()
            } else {
                None
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Delivers one finished request and wakes the consumer.
    pub(crate) fn deliver(&self, id: u64, result: Result<GemmResponse<T>, ServeError>) {
        let waker = {
            let mut state = self.chan.state.lock();
            debug_assert!(state.in_flight > 0, "delivery without registration");
            state.in_flight -= 1;
            state.queue.push_back(Completion { id, result });
            self.chan.ready.notify_all();
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

impl<T: Scalar> std::fmt::Debug for CompletionSink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompletionSink").finish_non_exhaustive()
    }
}

/// Consumer end of a completion channel (single consumer).
///
/// `None` from [`recv`](Completions::recv) / [`next`](Completions::next)
/// means "queue empty and nothing in flight" — it is a snapshot, not a
/// permanent close: submitting more requests afterwards makes the stream
/// yield again. The usual pattern is submit-then-drain (see the crate-level
/// example).
pub struct Completions<T: Scalar> {
    chan: Arc<Channel<T>>,
}

impl<T: Scalar> Completions<T> {
    /// Completions queued right now (cheap, approximate under concurrency).
    pub fn ready_len(&self) -> usize {
        self.chan.state.lock().queue.len()
    }

    /// Submitted-but-undelivered requests right now.
    pub fn in_flight(&self) -> usize {
        self.chan.state.lock().in_flight
    }

    /// Non-blocking pop of the next completion, if one is queued.
    pub fn try_next(&mut self) -> Option<Completion<T>> {
        self.chan.state.lock().queue.pop_front()
    }

    /// Blocks for the next completion; `None` when the queue is empty and
    /// nothing is in flight.
    pub fn recv(&mut self) -> Option<Completion<T>> {
        let mut state = self.chan.state.lock();
        loop {
            if let Some(c) = state.queue.pop_front() {
                return Some(c);
            }
            if state.in_flight == 0 {
                return None;
            }
            self.chan.ready.wait(&mut state);
        }
    }

    /// Async pop: `Ready(Some)` when a completion is queued, `Ready(None)`
    /// when the stream is drained (empty and nothing in flight), `Pending`
    /// (with the waker registered) otherwise.
    pub fn poll_next(&mut self, cx: &mut Context<'_>) -> Poll<Option<Completion<T>>> {
        let mut state = self.chan.state.lock();
        if let Some(c) = state.queue.pop_front() {
            return Poll::Ready(Some(c));
        }
        if state.in_flight == 0 {
            return Poll::Ready(None);
        }
        match &mut state.waker {
            Some(existing) if existing.will_wake(cx.waker()) => {}
            slot => *slot = Some(cx.waker().clone()),
        }
        Poll::Pending
    }

    /// Future resolving to the next completion (or `None` when drained).
    ///
    /// Named after the `futures::StreamExt::next` convention rather than
    /// `Iterator::next` (which clippy flags): this is the async pop.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Next<'_, T> {
        Next { stream: self }
    }
}

impl<T: Scalar> std::fmt::Debug for Completions<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.chan.state.lock();
        f.debug_struct("Completions")
            .field("ready", &state.queue.len())
            .field("in_flight", &state.in_flight)
            .finish()
    }
}

/// Future returned by [`Completions::next`].
pub struct Next<'a, T: Scalar> {
    stream: &'a mut Completions<T>,
}

impl<T: Scalar> Future for Next<'_, T> {
    type Output = Option<Completion<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.get_mut().stream.poll_next(cx)
    }
}

/// Builds a connected `(sink, stream)` completion-channel pair.
///
/// Pass the sink to [`GemmService::submit_streamed`](crate::GemmService::submit_streamed)
/// (any number of times, from any thread — it is `Clone`); drain results
/// from the [`Completions`] end, blocking or async.
pub fn completion_channel<T: Scalar>() -> (CompletionSink<T>, Completions<T>) {
    let chan = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            in_flight: 0,
            waker: None,
        }),
        ready: Condvar::new(),
    });
    (
        CompletionSink {
            chan: Arc::clone(&chan),
        },
        Completions { chan },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_abft::FtReport;
    use ftgemm_core::Matrix;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::task::Wake;

    fn ok_response(v: f64) -> Result<GemmResponse<f64>, ServeError> {
        Ok(GemmResponse {
            c: Matrix::filled(1, 1, v),
            report: FtReport::default(),
            batched: true,
            affinity_node: 0,
            executed_node: 0,
        })
    }

    struct CountingWaker(AtomicUsize);
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn empty_channel_is_immediately_drained() {
        let (_sink, mut stream) = completion_channel::<f64>();
        assert!(stream.try_next().is_none());
        assert!(stream.recv().is_none());
        assert_eq!(stream.in_flight(), 0);
    }

    #[test]
    fn delivers_in_order_then_ends() {
        let (sink, mut stream) = completion_channel::<f64>();
        for i in 0..3u64 {
            sink.register();
            sink.deliver(i, ok_response(i as f64));
        }
        assert_eq!(stream.ready_len(), 3);
        for i in 0..3u64 {
            let c = stream.recv().unwrap();
            assert_eq!(c.id, i);
            assert_eq!(c.result.unwrap().c.get(0, 0), i as f64);
        }
        assert!(stream.recv().is_none());
    }

    #[test]
    fn recv_blocks_while_in_flight() {
        let (sink, mut stream) = completion_channel::<f64>();
        sink.register();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            sink.deliver(0, ok_response(1.0));
        });
        // Must block through the in-flight window, not return None early.
        assert_eq!(stream.recv().unwrap().id, 0);
        assert!(stream.recv().is_none());
        producer.join().unwrap();
    }

    #[test]
    fn unregister_rolls_back_end_of_stream() {
        let (sink, mut stream) = completion_channel::<f64>();
        sink.register();
        assert_eq!(stream.in_flight(), 1);
        sink.unregister();
        assert!(stream.recv().is_none());
    }

    #[test]
    fn unregister_wakes_blocked_consumer() {
        // A consumer already parked in recv() must observe the rejected
        // submission flipping in_flight to zero, not sleep forever.
        let (sink, mut stream) = completion_channel::<f64>();
        sink.register();
        let rejecter = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            sink.unregister(); // submission rejected (e.g. queue full)
        });
        assert!(stream.recv().is_none(), "recv must unblock and end");
        rejecter.join().unwrap();
    }

    #[test]
    fn unregister_fires_async_waker() {
        let (sink, mut stream) = completion_channel::<f64>();
        sink.register();
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&waker);
        assert!(stream.poll_next(&mut cx).is_pending());
        sink.unregister();
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert!(matches!(stream.poll_next(&mut cx), Poll::Ready(None)));
    }

    #[test]
    fn poll_next_registers_waker_and_fires() {
        let (sink, mut stream) = completion_channel::<f64>();
        sink.register();

        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        let mut cx = Context::from_waker(&waker);

        assert!(stream.poll_next(&mut cx).is_pending());
        sink.deliver(7, ok_response(2.0));
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        match stream.poll_next(&mut cx) {
            Poll::Ready(Some(c)) => assert_eq!(c.id, 7),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(stream.poll_next(&mut cx), Poll::Ready(None)));
    }
}
