//! Prometheus export of the serving metrics: the stable metric-name table
//! and the [`StatsSnapshot`] → exposition renderer behind `GET /metrics`.
//!
//! Every [`StatsSnapshot`] field has a documented, stable Prometheus
//! family. Service-scoped families (everything below) are rendered from a
//! quiesced snapshot, so a scrape taken while the service is idle matches
//! [`GemmService::stats`](crate::GemmService::stats) exactly; process-wide
//! families (`ftgemm_pool_*`, `ftgemm_abft_*`, `ftgemm_obs_*`) come from
//! [`ftgemm_obs::Registry::global`] and are appended to the same scrape.
//!
//! ## Metric names
//!
//! | Prometheus family | Kind | Labels | [`StatsSnapshot`] source |
//! |---|---|---|---|
//! | `ftgemm_requests_submitted_total` | counter | | `submitted` |
//! | `ftgemm_requests_submitted_sync_total` | counter | | `submitted_sync` |
//! | `ftgemm_requests_submitted_async_total` | counter | | `submitted_async` |
//! | `ftgemm_requests_submitted_streamed_total` | counter | | `submitted_streamed` |
//! | `ftgemm_requests_in_flight_async` | gauge | | `in_flight_async` |
//! | `ftgemm_requests_completed_total` | counter | | `completed` |
//! | `ftgemm_requests_failed_total` | counter | | `failed` |
//! | `ftgemm_requests_rejected_total` | counter | `reason` (`overloaded`/`closed`/`deadline`) | `rejected_overloaded`, `rejected_closed`, `rejected_deadline` |
//! | `ftgemm_requests_shed_deadline_total` | counter | | `shed_deadline` |
//! | `ftgemm_batches_total` | counter | | `batches` |
//! | `ftgemm_batched_requests_total` | counter | | `batched_requests` |
//! | `ftgemm_direct_large_total` | counter | | `direct_large` |
//! | `ftgemm_ft_detected_total` | counter | | `detected` |
//! | `ftgemm_ft_corrected_total` | counter | | `corrected` |
//! | `ftgemm_ft_injected_total` | counter | | `injected` |
//! | `ftgemm_ft_retried_panels_total` | counter | | `retried_panels` |
//! | `ftgemm_queue_depth` | gauge | | `queue_depth` |
//! | `ftgemm_uptime_seconds` | gauge | | `uptime` |
//! | `ftgemm_requests_per_second` | gauge | | `requests_per_sec` |
//! | `ftgemm_routing_cutoff_flops` | gauge | | `current_cutoff` |
//! | `ftgemm_routing_batched_observations_total` | counter | | `routing_batched_observations` |
//! | `ftgemm_routing_parallel_observations_total` | counter | | `routing_parallel_observations` |
//! | `ftgemm_routing_cutoff_updates_total` | counter | | `cutoff_updates` |
//! | `ftgemm_batch_occupancy_mean` | gauge | | `mean_batch_occupancy` |
//! | `ftgemm_request_turnaround_seconds_mean` | gauge | | `mean_turnaround` |
//! | `ftgemm_batch_wall_seconds_total` | counter | | `batch_wall` |
//! | `ftgemm_batch_thread_busy_seconds_total` | counter | `thread` | `batch_busy_per_thread` |
//! | `ftgemm_batch_thread_occupancy` | gauge | | `batch_thread_occupancy` |
//! | `ftgemm_steal_wakeups_total` | counter | | `steal_wakeups` |
//! | `ftgemm_node_threads` | gauge | `node` | `per_node[].threads` |
//! | `ftgemm_node_queue_depth` | gauge | `node` | `per_node[].queue_depth` |
//! | `ftgemm_node_dispatched_total` | counter | `node` | `per_node[].dispatched` |
//! | `ftgemm_node_stolen_total` | counter | `node` | `per_node[].stolen` |
//! | `ftgemm_node_batch_wall_seconds_total` | counter | `node` | `per_node[].batch_wall` |
//! | `ftgemm_node_batch_busy_seconds_total` | counter | `node` | `per_node[].batch_busy` |
//! | `ftgemm_ftpolicy_node_floor` | gauge | `node` | `per_node[].ft_floor` |
//! | `ftgemm_ftpolicy_escalations_total` | counter | `node` | `per_node[].ft_escalations` |
//! | `ftgemm_ftpolicy_deescalations_total` | counter | `node` | `per_node[].ft_deescalations` |
//! | `ftgemm_ftpolicy_error_rate_per_flop` | gauge | `node` | `ft_error_rate_per_node` |
//! | `ftgemm_tenant_admitted_total` | counter | `tenant` | `per_tenant[].admitted` |
//! | `ftgemm_tenant_completed_total` | counter | `tenant` | `per_tenant[].completed` |
//! | `ftgemm_tenant_shed_total` | counter | `tenant` | `per_tenant[].shed` |
//! | `ftgemm_tenant_rejected_deadline_total` | counter | `tenant` | `per_tenant[].rejected_deadline` |
//! | `ftgemm_tenant_deadline_met_total` | counter | `tenant` | `per_tenant[].deadline_met` |
//! | `ftgemm_tenant_deadline_missed_total` | counter | `tenant` | `per_tenant[].deadline_missed` |
//! | `ftgemm_tenant_served_flops_total` | counter | `tenant` | `per_tenant[].served_flops` |
//! | `ftgemm_service_pool_regions_total` | counter | | `pool.regions` |
//! | `ftgemm_service_pool_barrier_crossings_total` | counter | | `pool.barrier_crossings` |
//! | `ftgemm_request_turnaround_seconds` | histogram | | live histogram (obs-enabled services) |
//! | `ftgemm_trace_dropped_total` | counter | | tracelog ring overwrites (obs-enabled services) |
//!
//! Process-wide families appended from the global registry:
//! `ftgemm_pool_regions_total`, `ftgemm_pool_workers`,
//! `ftgemm_abft_verifications_total`, `ftgemm_abft_detected_total`,
//! `ftgemm_abft_corrected_total`, `ftgemm_abft_injected_total`,
//! `ftgemm_abft_retried_panels_total`, `ftgemm_obs_scrapes_total`,
//! `ftgemm_obs_http_requests_total`.

use crate::stats::StatsSnapshot;
use ftgemm_obs::{Exposition, Histogram, MetricKind, Registry, Tracelog};
use std::sync::Arc;

/// The per-service observability state, created when
/// [`ServiceConfig::obs_addr`](crate::ServiceConfig::obs_addr) is set: a
/// scoped registry (holding the live turnaround histogram) plus the
/// request-lifecycle tracelog. `None` on obs-disabled services, which keeps
/// their hot paths free of even the relaxed-atomic recording cost.
pub(crate) struct ServiceObs {
    pub registry: Arc<Registry>,
    pub trace: Arc<Tracelog>,
    pub turnaround: Arc<Histogram>,
}

impl ServiceObs {
    /// Trace-ring capacity per node: enough to hold the full lifecycle of
    /// a few hundred requests without the rings dominating memory.
    const TRACE_CAPACITY_PER_NODE: usize = 2048;

    pub(crate) fn new(nodes: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let turnaround = registry.histogram(
            "ftgemm_request_turnaround_seconds",
            "Submit-to-completion latency of served requests.",
        );
        ServiceObs {
            registry,
            trace: Arc::new(Tracelog::new(nodes, Self::TRACE_CAPACITY_PER_NODE)),
            turnaround,
        }
    }
}

/// Emits a single-sample family.
fn scalar(expo: &mut Exposition, name: &str, kind: MetricKind, help: &str, value: f64) {
    expo.family(name, kind, help);
    expo.sample(name, &[], value);
}

/// Renders every [`StatsSnapshot`] field into `expo` under the stable
/// family names of the module-level table (service-scoped families only —
/// callers append registries for histograms and process-wide families).
pub fn render_snapshot(expo: &mut Exposition, snap: &StatsSnapshot) {
    use MetricKind::{Counter, Gauge};
    scalar(
        expo,
        "ftgemm_requests_submitted_total",
        Counter,
        "Requests accepted across all submit surfaces.",
        snap.submitted as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_submitted_sync_total",
        Counter,
        "Requests accepted via the blocking submit surface.",
        snap.submitted_sync as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_submitted_async_total",
        Counter,
        "Requests accepted via submit_async.",
        snap.submitted_async as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_submitted_streamed_total",
        Counter,
        "Requests accepted via submit_streamed.",
        snap.submitted_streamed as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_in_flight_async",
        Gauge,
        "Async futures currently alive (neither resolved nor dropped).",
        snap.in_flight_async as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_completed_total",
        Counter,
        "Requests completed successfully.",
        snap.completed as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_failed_total",
        Counter,
        "Requests completed with an error.",
        snap.failed as f64,
    );
    expo.family(
        "ftgemm_requests_rejected_total",
        Counter,
        "Requests rejected at submit, by reason.",
    );
    expo.sample(
        "ftgemm_requests_rejected_total",
        &[("reason", "overloaded")],
        snap.rejected_overloaded as f64,
    );
    expo.sample(
        "ftgemm_requests_rejected_total",
        &[("reason", "closed")],
        snap.rejected_closed as f64,
    );
    expo.sample(
        "ftgemm_requests_rejected_total",
        &[("reason", "deadline")],
        snap.rejected_deadline as f64,
    );
    scalar(
        expo,
        "ftgemm_requests_shed_deadline_total",
        Counter,
        "Admitted requests load-shed at dispatch after their deadline expired in queue.",
        snap.shed_deadline as f64,
    );
    scalar(
        expo,
        "ftgemm_batches_total",
        Counter,
        "Coalesced parallel regions executed on the batched path.",
        snap.batches as f64,
    );
    scalar(
        expo,
        "ftgemm_batched_requests_total",
        Counter,
        "Requests served via the batched path.",
        snap.batched_requests as f64,
    );
    scalar(
        expo,
        "ftgemm_direct_large_total",
        Counter,
        "Requests served via the matrix-parallel path.",
        snap.direct_large as f64,
    );
    scalar(
        expo,
        "ftgemm_ft_detected_total",
        Counter,
        "Checksum discrepancies flagged as real errors, service-wide.",
        snap.detected as f64,
    );
    scalar(
        expo,
        "ftgemm_ft_corrected_total",
        Counter,
        "Elements corrected in place, service-wide.",
        snap.corrected as f64,
    );
    scalar(
        expo,
        "ftgemm_ft_injected_total",
        Counter,
        "Errors injected by request-attached injectors, service-wide.",
        snap.injected as f64,
    );
    scalar(
        expo,
        "ftgemm_ft_retried_panels_total",
        Counter,
        "Panels recomputed under DetectCorrect, service-wide.",
        snap.retried_panels as f64,
    );
    scalar(
        expo,
        "ftgemm_queue_depth",
        Gauge,
        "Envelopes waiting in the submission queue right now.",
        snap.queue_depth as f64,
    );
    scalar(
        expo,
        "ftgemm_uptime_seconds",
        Gauge,
        "Seconds since the service started.",
        snap.uptime.as_secs_f64(),
    );
    scalar(
        expo,
        "ftgemm_requests_per_second",
        Gauge,
        "Completed requests per second since the first submission.",
        snap.requests_per_sec,
    );
    scalar(
        expo,
        "ftgemm_routing_cutoff_flops",
        Gauge,
        "The flops cutoff the scheduler is routing by right now.",
        snap.current_cutoff as f64,
    );
    scalar(
        expo,
        "ftgemm_routing_batched_observations_total",
        Counter,
        "Timing observations the routing learner absorbed from the batched path.",
        snap.routing_batched_observations as f64,
    );
    scalar(
        expo,
        "ftgemm_routing_parallel_observations_total",
        Counter,
        "Timing observations the routing learner absorbed from the matrix-parallel path.",
        snap.routing_parallel_observations as f64,
    );
    scalar(
        expo,
        "ftgemm_routing_cutoff_updates_total",
        Counter,
        "Times the published routing cutoff actually changed.",
        snap.cutoff_updates as f64,
    );
    scalar(
        expo,
        "ftgemm_batch_occupancy_mean",
        Gauge,
        "Mean requests coalesced per batched region.",
        snap.mean_batch_occupancy,
    );
    scalar(
        expo,
        "ftgemm_request_turnaround_seconds_mean",
        Gauge,
        "Mean submit-to-completion latency.",
        snap.mean_turnaround.as_secs_f64(),
    );
    scalar(
        expo,
        "ftgemm_batch_wall_seconds_total",
        Counter,
        "Summed wall time of batched parallel regions across every node.",
        snap.batch_wall.as_secs_f64(),
    );
    expo.family(
        "ftgemm_batch_thread_busy_seconds_total",
        Counter,
        "Summed busy time per pool thread inside batched regions (global thread id).",
    );
    for (thread, busy) in snap.batch_busy_per_thread.iter().enumerate() {
        let t = thread.to_string();
        expo.sample(
            "ftgemm_batch_thread_busy_seconds_total",
            &[("thread", t.as_str())],
            busy.as_secs_f64(),
        );
    }
    scalar(
        expo,
        "ftgemm_batch_thread_occupancy",
        Gauge,
        "Mean fraction of batched-region time each thread spent busy.",
        snap.batch_thread_occupancy,
    );
    scalar(
        expo,
        "ftgemm_steal_wakeups_total",
        Counter,
        "Cross-node dispatcher wakeups fired by pushes crossing the steal threshold.",
        snap.steal_wakeups as f64,
    );

    expo.family(
        "ftgemm_node_threads",
        Gauge,
        "Worker threads pinned to each node.",
    );
    expo.family(
        "ftgemm_node_queue_depth",
        Gauge,
        "Envelopes waiting in each node's shard group right now.",
    );
    expo.family(
        "ftgemm_node_dispatched_total",
        Counter,
        "Requests executed on each node's worker subset (including stolen ones).",
    );
    expo.family(
        "ftgemm_node_stolen_total",
        Counter,
        "Requests each node executed after stealing them off another node's shard group.",
    );
    expo.family(
        "ftgemm_node_batch_wall_seconds_total",
        Counter,
        "Summed wall time of the batched regions each node executed.",
    );
    expo.family(
        "ftgemm_node_batch_busy_seconds_total",
        Counter,
        "Summed busy time of each node's threads inside its batched regions.",
    );
    expo.family(
        "ftgemm_ftpolicy_node_floor",
        Gauge,
        "Fault-policy floor the error-aware monitor enforces per node (0=Off, 1=Detect, 2=DetectCorrect).",
    );
    expo.family(
        "ftgemm_ftpolicy_escalations_total",
        Counter,
        "Times the error-aware monitor raised each node's policy floor.",
    );
    expo.family(
        "ftgemm_ftpolicy_deescalations_total",
        Counter,
        "Times the error-aware monitor stepped each node's policy floor back down.",
    );
    expo.family(
        "ftgemm_ftpolicy_error_rate_per_flop",
        Gauge,
        "Detected-errors-per-flop EWMA the error-aware monitor tracks per node.",
    );
    for n in &snap.per_node {
        let node = n.node.to_string();
        let labels = [("node", node.as_str())];
        expo.sample("ftgemm_node_threads", &labels, n.threads as f64);
        expo.sample("ftgemm_node_queue_depth", &labels, n.queue_depth as f64);
        expo.sample("ftgemm_node_dispatched_total", &labels, n.dispatched as f64);
        expo.sample("ftgemm_node_stolen_total", &labels, n.stolen as f64);
        expo.sample(
            "ftgemm_node_batch_wall_seconds_total",
            &labels,
            n.batch_wall.as_secs_f64(),
        );
        expo.sample(
            "ftgemm_node_batch_busy_seconds_total",
            &labels,
            n.batch_busy.as_secs_f64(),
        );
        expo.sample("ftgemm_ftpolicy_node_floor", &labels, n.ft_floor as f64);
        expo.sample(
            "ftgemm_ftpolicy_escalations_total",
            &labels,
            n.ft_escalations as f64,
        );
        expo.sample(
            "ftgemm_ftpolicy_deescalations_total",
            &labels,
            n.ft_deescalations as f64,
        );
        expo.sample(
            "ftgemm_ftpolicy_error_rate_per_flop",
            &labels,
            snap.ft_error_rate_per_node
                .get(n.node)
                .copied()
                .unwrap_or(0.0),
        );
    }

    expo.family(
        "ftgemm_tenant_admitted_total",
        Counter,
        "Requests admitted per tenant (past validation and admission control).",
    );
    expo.family(
        "ftgemm_tenant_completed_total",
        Counter,
        "Requests served to completion per tenant.",
    );
    expo.family(
        "ftgemm_tenant_shed_total",
        Counter,
        "Requests load-shed at dispatch per tenant (deadline expired while queued).",
    );
    expo.family(
        "ftgemm_tenant_rejected_deadline_total",
        Counter,
        "Submits turned away by deadline admission control per tenant.",
    );
    expo.family(
        "ftgemm_tenant_deadline_met_total",
        Counter,
        "Completed requests that carried a deadline and finished in time, per tenant.",
    );
    expo.family(
        "ftgemm_tenant_deadline_missed_total",
        Counter,
        "Completed requests that carried a deadline and finished late, per tenant.",
    );
    expo.family(
        "ftgemm_tenant_served_flops_total",
        Counter,
        "Planned multiply-adds of completed requests per tenant (the weighted-fair share unit).",
    );
    for t in &snap.per_tenant {
        let tenant = t.tenant.to_string();
        let labels = [("tenant", tenant.as_str())];
        expo.sample("ftgemm_tenant_admitted_total", &labels, t.admitted as f64);
        expo.sample("ftgemm_tenant_completed_total", &labels, t.completed as f64);
        expo.sample("ftgemm_tenant_shed_total", &labels, t.shed as f64);
        expo.sample(
            "ftgemm_tenant_rejected_deadline_total",
            &labels,
            t.rejected_deadline as f64,
        );
        expo.sample(
            "ftgemm_tenant_deadline_met_total",
            &labels,
            t.deadline_met as f64,
        );
        expo.sample(
            "ftgemm_tenant_deadline_missed_total",
            &labels,
            t.deadline_missed as f64,
        );
        expo.sample(
            "ftgemm_tenant_served_flops_total",
            &labels,
            t.served_flops as f64,
        );
    }

    scalar(
        expo,
        "ftgemm_service_pool_regions_total",
        Counter,
        "Parallel regions executed across this service's node pools.",
        snap.pool.regions as f64,
    );
    scalar(
        expo,
        "ftgemm_service_pool_barrier_crossings_total",
        Counter,
        "Barrier crossings across this service's node pools.",
        snap.pool.barrier_crossings as f64,
    );
}

/// Renders one service's complete `/metrics` body: the snapshot families,
/// the service-scoped registry (turnaround histogram, trace drop counter),
/// then the process-wide global registry.
pub(crate) fn render_service_metrics(snap: &StatsSnapshot, obs: Option<&ServiceObs>) -> String {
    let mut expo = Exposition::new();
    render_snapshot(&mut expo, snap);
    if let Some(obs) = obs {
        obs.registry.render_into(&mut expo);
        scalar(
            &mut expo,
            "ftgemm_trace_dropped_total",
            MetricKind::Counter,
            "Trace records overwritten because their ring was full.",
            obs.trace.dropped() as f64,
        );
    }
    Registry::global().render_into(&mut expo);
    expo.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_renders_every_family_once() {
        let mut snap = StatsSnapshot::empty_for_test(2, 3);
        snap.submitted = 7;
        snap.per_node[1].dispatched = 4;
        let mut expo = Exposition::new();
        render_snapshot(&mut expo, &snap);
        let s = expo.finish();
        assert!(s.contains("ftgemm_requests_submitted_total 7\n"), "{s}");
        assert!(s.contains("ftgemm_node_dispatched_total{node=\"1\"} 4\n"));
        assert!(s.contains("ftgemm_requests_rejected_total{reason=\"overloaded\"} 0\n"));
        assert!(s.contains("ftgemm_requests_rejected_total{reason=\"deadline\"} 0\n"));
        assert!(s.contains("ftgemm_requests_shed_deadline_total 0\n"));
        assert!(s.contains("ftgemm_batch_thread_busy_seconds_total{thread=\"2\"} 0\n"));
        assert!(s.contains("ftgemm_ftpolicy_node_floor{node=\"0\"} 0\n"));
        assert!(s.contains("ftgemm_ftpolicy_escalations_total{node=\"1\"} 0\n"));
        assert!(s.contains("ftgemm_ftpolicy_deescalations_total{node=\"0\"} 0\n"));
        assert!(s.contains("ftgemm_ftpolicy_error_rate_per_flop{node=\"1\"} 0\n"));
        // One TYPE header per family even with labeled instances.
        for family in [
            "ftgemm_node_queue_depth",
            "ftgemm_requests_rejected_total",
            "ftgemm_batch_thread_busy_seconds_total",
        ] {
            assert_eq!(
                s.matches(&format!("# TYPE {family} ")).count(),
                1,
                "{family}"
            );
        }
    }

    #[test]
    fn tenant_families_render_one_row_per_tenant() {
        use crate::stats::TenantStats;
        let mut snap = StatsSnapshot::empty_for_test(1, 1);
        snap.per_tenant = vec![
            TenantStats {
                tenant: 0,
                admitted: 5,
                completed: 4,
                shed: 1,
                rejected_deadline: 2,
                deadline_met: 3,
                deadline_missed: 1,
                served_flops: 4096,
            },
            TenantStats {
                tenant: 9,
                admitted: 1,
                ..TenantStats::default()
            },
        ];
        let mut expo = Exposition::new();
        render_snapshot(&mut expo, &snap);
        let s = expo.finish();
        assert!(
            s.contains("ftgemm_tenant_admitted_total{tenant=\"0\"} 5\n"),
            "{s}"
        );
        assert!(s.contains("ftgemm_tenant_admitted_total{tenant=\"9\"} 1\n"));
        assert!(s.contains("ftgemm_tenant_completed_total{tenant=\"0\"} 4\n"));
        assert!(s.contains("ftgemm_tenant_shed_total{tenant=\"0\"} 1\n"));
        assert!(s.contains("ftgemm_tenant_rejected_deadline_total{tenant=\"0\"} 2\n"));
        assert!(s.contains("ftgemm_tenant_deadline_met_total{tenant=\"0\"} 3\n"));
        assert!(s.contains("ftgemm_tenant_deadline_missed_total{tenant=\"0\"} 1\n"));
        assert!(s.contains("ftgemm_tenant_served_flops_total{tenant=\"0\"} 4096\n"));
        assert_eq!(s.matches("# TYPE ftgemm_tenant_admitted_total ").count(), 1);
    }

    #[test]
    fn service_metrics_appends_obs_and_global_families() {
        let snap = StatsSnapshot::empty_for_test(1, 1);
        let obs = ServiceObs::new(1);
        obs.turnaround.record(1_000);
        let s = render_service_metrics(&snap, Some(&obs));
        assert!(
            s.contains("# TYPE ftgemm_request_turnaround_seconds histogram"),
            "{s}"
        );
        assert!(s.contains("ftgemm_request_turnaround_seconds_count 1\n"));
        assert!(s.contains("ftgemm_trace_dropped_total 0\n"));
    }
}
