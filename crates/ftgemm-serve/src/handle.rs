//! The caller-side future: a blocking one-shot slot per request.

use crate::request::{GemmResponse, ServeError};
use ftgemm_core::Scalar;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// One-shot rendezvous between the scheduler (producer) and the caller.
pub(crate) struct ResponseSlot<T: Scalar> {
    state: Mutex<Option<Result<GemmResponse<T>, ServeError>>>,
    ready: Condvar,
}

impl<T: Scalar> ResponseSlot<T> {
    pub(crate) fn fulfill(&self, result: Result<GemmResponse<T>, ServeError>) {
        let mut state = self.state.lock();
        debug_assert!(state.is_none(), "response slot fulfilled twice");
        *state = Some(result);
        self.ready.notify_all();
    }
}

/// Handle returned by [`GemmService::submit`](crate::GemmService::submit);
/// redeem it with [`wait`](RequestHandle::wait) for the result.
///
/// Dropping the handle without waiting is allowed — the request still runs
/// (and its effects show up in the service stats); the response is simply
/// discarded.
pub struct RequestHandle<T: Scalar> {
    slot: Arc<ResponseSlot<T>>,
    id: u64,
}

impl<T: Scalar> RequestHandle<T> {
    /// Creates a connected (handle, slot) pair.
    pub(crate) fn pair(id: u64) -> (Self, Arc<ResponseSlot<T>>) {
        let slot = Arc::new(ResponseSlot {
            state: Mutex::new(None),
            ready: Condvar::new(),
        });
        (
            RequestHandle {
                slot: Arc::clone(&slot),
                id,
            },
            slot,
        )
    }

    /// Service-assigned request id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<GemmResponse<T>, ServeError> {
        let mut state = self.slot.state.lock();
        loop {
            if let Some(result) = state.take() {
                return result;
            }
            self.slot.ready.wait(&mut state);
        }
    }

    /// Non-blocking probe: the result if the request already completed.
    pub fn try_wait(self) -> Result<Result<GemmResponse<T>, ServeError>, Self> {
        {
            let mut state = self.slot.state.lock();
            if let Some(result) = state.take() {
                return Ok(result);
            }
        }
        Err(self)
    }
}

impl<T: Scalar> std::fmt::Debug for RequestHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_abft::FtReport;
    use ftgemm_core::Matrix;

    #[test]
    fn wait_blocks_until_fulfilled() {
        let (handle, slot) = RequestHandle::<f64>::pair(7);
        assert_eq!(handle.id(), 7);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            slot.fulfill(Ok(GemmResponse {
                c: Matrix::filled(1, 1, 3.0),
                report: FtReport::default(),
                batched: true,
            }));
        });
        let resp = handle.wait().unwrap();
        assert_eq!(resp.c.get(0, 0), 3.0);
        assert!(resp.batched);
        producer.join().unwrap();
    }

    #[test]
    fn try_wait_before_and_after() {
        let (handle, slot) = RequestHandle::<f64>::pair(0);
        let handle = handle.try_wait().unwrap_err(); // not ready yet
        slot.fulfill(Err(ServeError::Closed));
        match handle.try_wait() {
            Ok(Err(ServeError::Closed)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
