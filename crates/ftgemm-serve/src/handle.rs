//! The caller-side futures: blocking, async, and forwarding completion.
//!
//! Every request is backed by one [`ResponseSlot`], the single rendezvous
//! point between the scheduler (producer) and the caller (consumer). The
//! slot supports three redemption surfaces over the same state:
//!
//! * [`RequestHandle`] — synchronous: `wait` parks the calling thread on a
//!   condvar; `try_wait`/`wait_timeout` poll or bound the park.
//! * [`AsyncRequestHandle`] — a [`Future`]: `poll` registers the task's
//!   [`Waker`] in the slot and the scheduler's fulfill path fires it, so no
//!   thread is parked per in-flight request.
//! * forwarding — the slot carries a [`CompletionSink`] and fulfill pushes
//!   the result straight into a completion channel (see
//!   [`completion_channel`](crate::completion_channel)); there is no
//!   per-request handle at all.

use crate::request::{GemmResponse, ServeError};
use crate::stream::CompletionSink;
use ftgemm_core::Scalar;
use parking_lot::{Condvar, Mutex};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Mutable rendezvous state: the result once produced, and the waker of the
/// async task (if any) to fire when it is.
struct SlotState<T: Scalar> {
    result: Option<Result<GemmResponse<T>, ServeError>>,
    waker: Option<Waker>,
}

/// One-shot rendezvous between the scheduler (producer) and the caller.
pub(crate) struct ResponseSlot<T: Scalar> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
    /// When set, fulfill bypasses the slot state entirely and forwards the
    /// result (tagged with the request id) into a completion channel.
    forward: Option<(CompletionSink<T>, u64)>,
}

impl<T: Scalar> ResponseSlot<T> {
    fn new(forward: Option<(CompletionSink<T>, u64)>) -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState {
                result: None,
                waker: None,
            }),
            ready: Condvar::new(),
            forward,
        })
    }

    /// Slot that forwards its result into a completion channel instead of
    /// storing it for a per-request handle.
    pub(crate) fn forwarding(id: u64, sink: CompletionSink<T>) -> Arc<Self> {
        Self::new(Some((sink, id)))
    }

    /// Delivers the result: wakes the blocking waiter and/or the registered
    /// async waker, or forwards into the completion channel.
    pub(crate) fn fulfill(&self, result: Result<GemmResponse<T>, ServeError>) {
        if let Some((sink, id)) = &self.forward {
            sink.deliver(*id, result);
            return;
        }
        let waker = {
            let mut state = self.state.lock();
            debug_assert!(state.result.is_none(), "response slot fulfilled twice");
            state.result = Some(result);
            self.ready.notify_all();
            state.waker.take()
        };
        // Fire the waker outside the lock: wake() may run arbitrary executor
        // code (or poll the future inline on some executors).
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

/// Handle returned by [`GemmService::submit`](crate::GemmService::submit);
/// redeem it with [`wait`](RequestHandle::wait) for the result.
///
/// Dropping the handle without waiting is allowed — the request still runs
/// (and its effects show up in the service stats); the response is simply
/// discarded.
pub struct RequestHandle<T: Scalar> {
    slot: Arc<ResponseSlot<T>>,
    id: u64,
}

impl<T: Scalar> RequestHandle<T> {
    /// Creates a connected (handle, slot) pair.
    pub(crate) fn pair(id: u64) -> (Self, Arc<ResponseSlot<T>>) {
        let slot = ResponseSlot::new(None);
        (
            RequestHandle {
                slot: Arc::clone(&slot),
                id,
            },
            slot,
        )
    }

    /// Service-assigned request id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request completes and returns its result.
    pub fn wait(self) -> Result<GemmResponse<T>, ServeError> {
        let mut state = self.slot.state.lock();
        loop {
            if let Some(result) = state.result.take() {
                return result;
            }
            self.slot.ready.wait(&mut state);
        }
    }

    /// Non-blocking probe: the result if the request already completed.
    pub fn try_wait(self) -> Result<Result<GemmResponse<T>, ServeError>, Self> {
        {
            let mut state = self.slot.state.lock();
            if let Some(result) = state.result.take() {
                return Ok(result);
            }
        }
        Err(self)
    }

    /// Blocks for at most `timeout`; hands the handle back if the request is
    /// still in flight when the deadline passes (waiting again is allowed).
    /// A timeout too large to represent as a deadline (e.g. `Duration::MAX`)
    /// degrades to an untimed [`wait`](RequestHandle::wait).
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<GemmResponse<T>, ServeError>, Self> {
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            return Ok(self.wait());
        };
        {
            let mut state = self.slot.state.lock();
            loop {
                if let Some(result) = state.result.take() {
                    return Ok(result);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.slot.ready.wait_for(&mut state, deadline - now);
            }
        }
        Err(self)
    }
}

impl<T: Scalar> std::fmt::Debug for RequestHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestHandle")
            .field("id", &self.id)
            .finish()
    }
}

/// Handle returned by
/// [`GemmService::submit_async`](crate::GemmService::submit_async): a
/// [`Future`] resolving to the request's result without parking any thread.
///
/// The future is executor-agnostic — `poll` stores the task's [`Waker`] in
/// the response slot and the scheduler fires it on fulfill, so it runs under
/// any executor (including a hand-rolled `block_on`; see
/// `examples/async_serving.rs`). It resolves exactly once; polling after
/// completion panics, like most one-shot futures. Dropping it mid-flight is
/// allowed — the request still runs, the response is discarded, and the
/// service's in-flight gauge is released.
pub struct AsyncRequestHandle<T: Scalar> {
    slot: Arc<ResponseSlot<T>>,
    id: u64,
    /// Service-level gauge of live async futures; decremented exactly once,
    /// on resolution or drop.
    in_flight: Arc<AtomicU64>,
    done: bool,
}

impl<T: Scalar> AsyncRequestHandle<T> {
    /// Creates a connected (future, slot) pair and bumps the in-flight gauge.
    pub(crate) fn pair(id: u64, in_flight: Arc<AtomicU64>) -> (Self, Arc<ResponseSlot<T>>) {
        let slot = ResponseSlot::new(None);
        in_flight.fetch_add(1, Ordering::Relaxed);
        (
            AsyncRequestHandle {
                slot: Arc::clone(&slot),
                id,
                in_flight,
                done: false,
            },
            slot,
        )
    }

    /// Service-assigned request id (submission order).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True once the future has resolved (after which polling panics).
    pub fn is_resolved(&self) -> bool {
        self.done
    }

    fn release_gauge(&mut self) {
        if !self.done {
            self.done = true;
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<T: Scalar> Future for AsyncRequestHandle<T> {
    type Output = Result<GemmResponse<T>, ServeError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // All fields are Unpin, so projection through get_mut is safe.
        let this = self.get_mut();
        assert!(
            !this.done,
            "AsyncRequestHandle polled after it already resolved"
        );
        let mut state = this.slot.state.lock();
        if let Some(result) = state.result.take() {
            drop(state);
            this.release_gauge();
            return Poll::Ready(result);
        }
        // Register (or refresh) the waker. `will_wake` skips the clone when
        // the executor re-polls with the same task.
        match &mut state.waker {
            Some(existing) if existing.will_wake(cx.waker()) => {}
            slot_waker => *slot_waker = Some(cx.waker().clone()),
        }
        Poll::Pending
    }
}

impl<T: Scalar> Drop for AsyncRequestHandle<T> {
    fn drop(&mut self) {
        self.release_gauge();
    }
}

impl<T: Scalar> std::fmt::Debug for AsyncRequestHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncRequestHandle")
            .field("id", &self.id)
            .field("resolved", &self.done)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_abft::FtReport;
    use ftgemm_core::Matrix;
    use std::sync::atomic::AtomicUsize;
    use std::task::Wake;

    fn ok_response(v: f64) -> Result<GemmResponse<f64>, ServeError> {
        Ok(GemmResponse {
            c: Matrix::filled(1, 1, v),
            report: FtReport::default(),
            batched: true,
            affinity_node: 0,
            executed_node: 0,
        })
    }

    /// Waker that counts its wake() calls.
    struct CountingWaker(AtomicUsize);
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn counting_waker() -> (Arc<CountingWaker>, Waker) {
        let counter = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(Arc::clone(&counter));
        (counter, waker)
    }

    #[test]
    fn wait_blocks_until_fulfilled() {
        let (handle, slot) = RequestHandle::<f64>::pair(7);
        assert_eq!(handle.id(), 7);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            slot.fulfill(ok_response(3.0));
        });
        let resp = handle.wait().unwrap();
        assert_eq!(resp.c.get(0, 0), 3.0);
        assert!(resp.batched);
        producer.join().unwrap();
    }

    #[test]
    fn try_wait_before_and_after() {
        let (handle, slot) = RequestHandle::<f64>::pair(0);
        let handle = handle.try_wait().unwrap_err(); // not ready yet
        slot.fulfill(Err(ServeError::Closed));
        match handle.try_wait() {
            Ok(Err(ServeError::Closed)) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let (handle, slot) = RequestHandle::<f64>::pair(1);
        let handle = handle.wait_timeout(Duration::from_millis(10)).unwrap_err(); // nothing produced yet
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            slot.fulfill(ok_response(4.0));
        });
        let resp = handle
            .wait_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(resp.c.get(0, 0), 4.0);
        producer.join().unwrap();
    }

    #[test]
    fn async_poll_before_fulfill_fires_waker() {
        let gauge = Arc::new(AtomicU64::new(0));
        let (mut fut, slot) = AsyncRequestHandle::<f64>::pair(3, Arc::clone(&gauge));
        assert_eq!(gauge.load(Ordering::SeqCst), 1);

        let (counter, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);

        slot.fulfill(ok_response(9.0));
        assert_eq!(counter.0.load(Ordering::SeqCst), 1, "fulfill fires waker");

        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(Ok(resp)) => assert_eq!(resp.c.get(0, 0), 9.0),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(gauge.load(Ordering::SeqCst), 0, "gauge released on resolve");
    }

    #[test]
    fn async_fulfill_before_poll_resolves_immediately() {
        let gauge = Arc::new(AtomicU64::new(0));
        let (mut fut, slot) = AsyncRequestHandle::<f64>::pair(4, Arc::clone(&gauge));
        slot.fulfill(ok_response(2.5));

        let (counter, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(Ok(resp)) => assert_eq!(resp.c.get(0, 0), 2.5),
            other => panic!("unexpected: {other:?}"),
        }
        // Result was already there: no waker registration, no wake call.
        assert_eq!(counter.0.load(Ordering::SeqCst), 0);
        assert_eq!(gauge.load(Ordering::SeqCst), 0);
    }

    #[test]
    #[should_panic(expected = "polled after it already resolved")]
    fn async_resolves_exactly_once() {
        let gauge = Arc::new(AtomicU64::new(0));
        let (mut fut, slot) = AsyncRequestHandle::<f64>::pair(5, gauge);
        slot.fulfill(ok_response(1.0));
        let (_c, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_ready());
        let _ = Pin::new(&mut fut).poll(&mut cx); // must panic
    }

    #[test]
    fn dropped_future_releases_gauge_and_slot() {
        let gauge = Arc::new(AtomicU64::new(0));
        let (fut, slot) = AsyncRequestHandle::<f64>::pair(6, Arc::clone(&gauge));
        drop(fut);
        assert_eq!(gauge.load(Ordering::SeqCst), 0, "drop releases the gauge");
        // Fulfilling a dropped future's slot must not panic or wake anything.
        slot.fulfill(ok_response(0.0));
        // The scheduler-side Arc is the only one left: no slot leak.
        assert_eq!(Arc::strong_count(&slot), 1);
    }

    #[test]
    fn repolls_with_same_waker_do_not_reclone() {
        let gauge = Arc::new(AtomicU64::new(0));
        let (mut fut, slot) = AsyncRequestHandle::<f64>::pair(8, gauge);
        let (counter, waker) = counting_waker();
        let mut cx = Context::from_waker(&waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        slot.fulfill(ok_response(1.0));
        // Exactly one wake even after repeated polls with the same waker.
        assert_eq!(counter.0.load(Ordering::SeqCst), 1);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_ready());
    }
}
