//! Service-level counters and derived metrics.

use ftgemm_abft::FtReport;
use ftgemm_pool::PoolStats;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Lock-free counters updated by the submit path and the scheduler.
#[derive(Debug)]
pub(crate) struct ServiceStats {
    started: Instant,
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Coalesced parallel regions executed on the batched path.
    pub batches: AtomicU64,
    /// Requests that went through the batched path.
    pub batched_requests: AtomicU64,
    /// Requests routed straight to the matrix-parallel driver.
    pub direct_large: AtomicU64,
    pub detected: AtomicU64,
    pub corrected: AtomicU64,
    pub injected: AtomicU64,
    pub retried_panels: AtomicU64,
    /// Summed submit→completion latency, nanoseconds.
    pub turnaround_ns: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn new() -> Self {
        ServiceStats {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            direct_large: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            corrected: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            retried_panels: AtomicU64::new(0),
            turnaround_ns: AtomicU64::new(0),
        }
    }

    /// Folds one request's FT report into the service counters.
    pub(crate) fn absorb_report(&self, report: &FtReport) {
        self.detected
            .fetch_add(report.detected as u64, Ordering::Relaxed);
        self.corrected
            .fetch_add(report.corrected as u64, Ordering::Relaxed);
        self.injected
            .fetch_add(report.injected as u64, Ordering::Relaxed);
        self.retried_panels
            .fetch_add(report.retried_panels as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, pool: PoolStats) -> StatsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            failed,
            batches,
            batched_requests,
            direct_large: self.direct_large.load(Ordering::Relaxed),
            detected: self.detected.load(Ordering::Relaxed),
            corrected: self.corrected.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            retried_panels: self.retried_panels.load(Ordering::Relaxed),
            queue_depth,
            uptime,
            requests_per_sec: completed as f64 / uptime.as_secs_f64().max(1e-9),
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            mean_turnaround: self
                .turnaround_ns
                .load(Ordering::Relaxed)
                .checked_div(completed + failed)
                .map_or(Duration::ZERO, Duration::from_nanos),
            pool,
        }
    }
}

/// Point-in-time view of a service's activity.
#[derive(Debug, Clone, Copy)]
pub struct StatsSnapshot {
    /// Requests accepted by `submit`.
    pub submitted: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Coalesced parallel regions executed on the batched path.
    pub batches: u64,
    /// Requests served via the batched path.
    pub batched_requests: u64,
    /// Requests served via the matrix-parallel path.
    pub direct_large: u64,
    /// Checksum discrepancies flagged as real errors, service-wide.
    pub detected: u64,
    /// Elements corrected in place, service-wide.
    pub corrected: u64,
    /// Errors injected by request-attached injectors, service-wide.
    pub injected: u64,
    /// Panels recomputed under `DetectCorrect`, service-wide.
    pub retried_panels: u64,
    /// Envelopes waiting in the queue right now.
    pub queue_depth: usize,
    /// Time since the service started.
    pub uptime: Duration,
    /// Completed requests per second of uptime.
    pub requests_per_sec: f64,
    /// Mean requests coalesced per batched region.
    pub mean_batch_occupancy: f64,
    /// Mean submit→completion latency.
    pub mean_turnaround: Duration,
    /// Worker-pool activity (regions, barrier crossings).
    pub pool: PoolStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_rates() {
        let s = ServiceStats::new();
        s.submitted.store(10, Ordering::Relaxed);
        s.completed.store(8, Ordering::Relaxed);
        s.batches.store(2, Ordering::Relaxed);
        s.batched_requests.store(6, Ordering::Relaxed);
        s.turnaround_ns.store(8_000_000, Ordering::Relaxed);
        let snap = s.snapshot(3, PoolStats::default());
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.queue_depth, 3);
        assert!(snap.requests_per_sec > 0.0);
        assert!((snap.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert_eq!(snap.mean_turnaround, Duration::from_nanos(1_000_000));
    }

    #[test]
    fn absorb_report_accumulates() {
        let s = ServiceStats::new();
        s.absorb_report(&FtReport {
            verifications: 4,
            detected: 2,
            corrected: 2,
            injected: 3,
            retried_panels: 1,
        });
        s.absorb_report(&FtReport::default());
        let snap = s.snapshot(0, PoolStats::default());
        assert_eq!(snap.detected, 2);
        assert_eq!(snap.corrected, 2);
        assert_eq!(snap.injected, 3);
        assert_eq!(snap.retried_panels, 1);
    }
}
