//! Service-level counters and derived metrics.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// snapshot counters only — Relaxed, never a synchronization point.

use crate::qos::TenantId;
use crate::routing::RoutingSnapshot;
use ftgemm_abft::FtReport;
use ftgemm_parallel::BatchTiming;
use ftgemm_pool::PoolStats;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sentinel for "no request has been submitted yet".
const NO_SUBMIT: u64 = u64::MAX;

/// Why a submit was rejected (surfaced as the `reason` label of
/// `ftgemm_requests_rejected_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RejectReason {
    /// Bounded queue at capacity (non-blocking surfaces only).
    Overloaded,
    /// Service shutting down.
    Closed,
}

/// Lock-free counters updated by the submit path and the scheduler.
#[derive(Debug)]
pub(crate) struct ServiceStats {
    started: Instant,
    /// Nanoseconds after `started` of the first admitted submission
    /// ([`NO_SUBMIT`] until then); anchors `requests_per_sec` so idle
    /// warm-up time does not dilute the reported rate.
    first_submit_ns: AtomicU64,
    pub submitted: AtomicU64,
    /// Requests accepted through the blocking `submit` surface.
    pub submitted_sync: AtomicU64,
    /// Requests accepted through `submit_async` (waker-based futures).
    pub submitted_async: AtomicU64,
    /// Requests accepted through `submit_streamed` (completion channel).
    pub submitted_streamed: AtomicU64,
    /// Live `AsyncRequestHandle` futures (gauge, not a counter); shared
    /// with every handle via `Arc` so drops decrement it from anywhere.
    pub in_flight_async: Arc<AtomicU64>,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    /// Submits rejected because the bounded queue was full.
    pub rejected_overloaded: AtomicU64,
    /// Submits rejected because the service was shutting down.
    pub rejected_closed: AtomicU64,
    /// Coalesced parallel regions executed on the batched path.
    pub batches: AtomicU64,
    /// Requests that went through the batched path.
    pub batched_requests: AtomicU64,
    /// Requests routed straight to the matrix-parallel driver.
    pub direct_large: AtomicU64,
    pub detected: AtomicU64,
    pub corrected: AtomicU64,
    pub injected: AtomicU64,
    pub retried_panels: AtomicU64,
    /// Summed submit→completion latency, nanoseconds.
    pub turnaround_ns: AtomicU64,
    /// Summed wall time of batched parallel regions, nanoseconds, per
    /// executing node. Regions on different nodes run concurrently, so
    /// occupancy math must weight each node's wall by that node's thread
    /// count rather than pooling the walls.
    pub batch_wall_ns: Vec<AtomicU64>,
    /// Summed per-pool-thread busy time inside batched regions, indexed by
    /// *global* thread id (node thread ranges concatenated in node order).
    /// The spread across threads is the batch-path occupancy imbalance.
    pub batch_busy_ns: Vec<AtomicU64>,
    /// Threads per node, indexed by node id.
    node_threads: Vec<usize>,
    /// First global-thread index of each node's range into
    /// [`batch_busy_ns`](Self::batch_busy_ns).
    node_offsets: Vec<usize>,
    /// Requests dispatched on each node's worker subset (stolen requests
    /// count on the node that *executed* them).
    pub dispatched: Vec<AtomicU64>,
    /// Requests a node executed after stealing them off another node's
    /// shard group.
    pub stolen: Vec<AtomicU64>,
    /// Submits rejected by deadline admission control (infeasible before
    /// they reached the queue; never counted in `submitted`).
    pub rejected_deadline: AtomicU64,
    /// Admitted requests load-shed at dispatch because their deadline
    /// expired while queued (each one also counts in `failed`, preserving
    /// `completed + failed <= submitted`).
    pub shed_deadline: AtomicU64,
    /// Per-tenant QoS tallies, keyed by tenant id. A `BTreeMap` so the
    /// snapshot's per-tenant rows come out in stable id order; the lock is
    /// uncontended off the hot path (one brief touch per request event).
    tenants: Mutex<BTreeMap<TenantId, TenantCounters>>,
}

/// Mutable per-tenant tallies behind [`ServiceStats::tenants`].
#[derive(Debug, Default, Clone, Copy)]
struct TenantCounters {
    admitted: u64,
    completed: u64,
    shed: u64,
    rejected_deadline: u64,
    deadline_met: u64,
    deadline_missed: u64,
    served_flops: u64,
}

impl ServiceStats {
    /// `node_threads[i]` is node `i`'s worker-subset size.
    pub(crate) fn new(node_threads: &[usize]) -> Self {
        let total: usize = node_threads.iter().sum();
        let node_offsets = node_threads
            .iter()
            .scan(0usize, |acc, &n| {
                let start = *acc;
                *acc += n;
                Some(start)
            })
            .collect();
        ServiceStats {
            started: Instant::now(),
            first_submit_ns: AtomicU64::new(NO_SUBMIT),
            submitted: AtomicU64::new(0),
            submitted_sync: AtomicU64::new(0),
            submitted_async: AtomicU64::new(0),
            submitted_streamed: AtomicU64::new(0),
            in_flight_async: Arc::new(AtomicU64::new(0)),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            rejected_overloaded: AtomicU64::new(0),
            rejected_closed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            direct_large: AtomicU64::new(0),
            detected: AtomicU64::new(0),
            corrected: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            retried_panels: AtomicU64::new(0),
            turnaround_ns: AtomicU64::new(0),
            batch_wall_ns: node_threads.iter().map(|_| AtomicU64::new(0)).collect(),
            batch_busy_ns: (0..total).map(|_| AtomicU64::new(0)).collect(),
            node_threads: node_threads.to_vec(),
            node_offsets,
            dispatched: node_threads.iter().map(|_| AtomicU64::new(0)).collect(),
            stolen: node_threads.iter().map(|_| AtomicU64::new(0)).collect(),
            rejected_deadline: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
        }
    }

    /// Counts an admission for `tenant` (paired with
    /// [`tenant_unadmit`](Self::tenant_unadmit) if the queue push is
    /// subsequently rejected).
    pub(crate) fn tenant_admit(&self, tenant: TenantId) {
        self.tenants.lock().entry(tenant).or_default().admitted += 1;
    }

    /// Rolls back a [`tenant_admit`](Self::tenant_admit) whose queue push
    /// failed, mirroring [`reject`](Self::reject) on the tenant axis.
    pub(crate) fn tenant_unadmit(&self, tenant: TenantId) {
        let mut tenants = self.tenants.lock();
        let counters = tenants.entry(tenant).or_default();
        counters.admitted = counters.admitted.saturating_sub(1);
    }

    /// Counts a submit that deadline admission control turned away before
    /// it was admitted. No rollback is involved: the request never touched
    /// `submitted` or the per-surface counters.
    pub(crate) fn reject_deadline(&self, tenant: TenantId) {
        self.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        self.tenants
            .lock()
            .entry(tenant)
            .or_default()
            .rejected_deadline += 1;
    }

    /// Counts an admitted request shed at dispatch because its deadline
    /// expired while queued. The caller also bumps `failed` (a shed request
    /// is a failed request), so `completed + failed <= submitted` holds.
    pub(crate) fn tenant_shed(&self, tenant: TenantId) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
        self.tenants.lock().entry(tenant).or_default().shed += 1;
    }

    /// Folds one served request into its tenant's tallies. `deadline_met`
    /// is `None` for requests submitted without a deadline (they count in
    /// neither met nor missed).
    pub(crate) fn tenant_complete(&self, tenant: TenantId, flops: u64, deadline_met: Option<bool>) {
        let mut tenants = self.tenants.lock();
        let counters = tenants.entry(tenant).or_default();
        counters.completed += 1;
        counters.served_flops += flops;
        match deadline_met {
            Some(true) => counters.deadline_met += 1,
            Some(false) => counters.deadline_missed += 1,
            None => {}
        }
    }

    /// Counts a request at admission, before it can reach the queue:
    /// bumps the total and the given per-surface counter, and stamps the
    /// first-submission instant. Must be paired with [`reject`](Self::reject)
    /// if the subsequent queue push fails, so rejected requests do not
    /// inflate the totals.
    pub(crate) fn admit(&self, surface: &AtomicU64) {
        let ns = self
            .started
            .elapsed()
            .as_nanos()
            .min((NO_SUBMIT - 1) as u128) as u64;
        // First writer wins; later submissions leave the anchor alone.
        let _ = self.first_submit_ns.compare_exchange(
            NO_SUBMIT,
            ns,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        self.submitted.fetch_add(1, Ordering::Relaxed);
        surface.fetch_add(1, Ordering::Relaxed);
    }

    /// Rolls back an [`admit`](Self::admit) whose queue push was rejected,
    /// and counts the rejection under its reason. Only this request's own
    /// increments are undone, so the invariant
    /// `completed + failed <= submitted` holds throughout (the count is,
    /// at worst, transiently one high while the rejection unwinds).
    pub(crate) fn reject(&self, surface: &AtomicU64, reason: RejectReason) {
        self.submitted.fetch_sub(1, Ordering::Relaxed);
        surface.fetch_sub(1, Ordering::Relaxed);
        match reason {
            RejectReason::Overloaded => &self.rejected_overloaded,
            RejectReason::Closed => &self.rejected_closed,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one request's FT report into the service counters.
    pub(crate) fn absorb_report(&self, report: &FtReport) {
        self.detected
            .fetch_add(report.detected as u64, Ordering::Relaxed);
        self.corrected
            .fetch_add(report.corrected as u64, Ordering::Relaxed);
        self.injected
            .fetch_add(report.injected as u64, Ordering::Relaxed);
        self.retried_panels
            .fetch_add(report.retried_panels as u64, Ordering::Relaxed);
    }

    /// Folds one batched region's occupancy measurements into the
    /// accumulated batch-path load metrics. `node` maps the region's local
    /// thread ids onto the service-global busy-time slots.
    pub(crate) fn absorb_batch_timing(&self, node: usize, timing: &BatchTiming) {
        self.batch_wall_ns[node].fetch_add(
            timing.wall.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        let offset = self.node_offsets[node];
        for (slot, busy) in self.batch_busy_ns[offset..]
            .iter()
            .take(self.node_threads[node])
            .zip(&timing.thread_busy)
        {
            slot.fetch_add(
                busy.as_nanos().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        }
    }

    pub(crate) fn snapshot(
        &self,
        node_queue_depths: &[usize],
        pool: PoolStats,
        routing: RoutingSnapshot,
        steal_wakeups: u64,
    ) -> StatsSnapshot {
        let queue_depth: usize = node_queue_depths.iter().sum();
        let per_node: Vec<NodeStats> = (0..self.node_threads.len())
            .map(|node| {
                let offset = self.node_offsets[node];
                let busy_ns: u64 = self.batch_busy_ns[offset..]
                    .iter()
                    .take(self.node_threads[node])
                    .map(|ns| ns.load(Ordering::Relaxed))
                    .sum();
                NodeStats {
                    node,
                    threads: self.node_threads[node],
                    queue_depth: node_queue_depths.get(node).copied().unwrap_or(0),
                    dispatched: self.dispatched[node].load(Ordering::Relaxed),
                    stolen: self.stolen[node].load(Ordering::Relaxed),
                    batch_wall: Duration::from_nanos(
                        self.batch_wall_ns[node].load(Ordering::Relaxed),
                    ),
                    batch_busy: Duration::from_nanos(busy_ns),
                    // The fault-policy monitor lives beside the stats (it
                    // needs the topology and a lock, not atomics); the
                    // service overlays its values after this call. Zeroed
                    // here so monitor-less services report all-clear.
                    ft_floor: 0,
                    ft_escalations: 0,
                    ft_deescalations: 0,
                }
            })
            .collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        // Throughput is measured over the window from the first submission
        // to now — a service idle for an hour before its first request
        // should not report a diluted rate.
        let serving = match self.first_submit_ns.load(Ordering::Relaxed) {
            NO_SUBMIT => Duration::ZERO,
            ns => uptime.saturating_sub(Duration::from_nanos(ns)),
        };
        let batch_wall: Duration = per_node.iter().map(|n| n.batch_wall).sum();
        let batch_busy_per_thread: Vec<Duration> = self
            .batch_busy_ns
            .iter()
            .map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed)))
            .collect();
        let busy_total: Duration = batch_busy_per_thread.iter().sum();
        // Each node's batched regions run concurrently with its peers' and
        // only ever occupy that node's worker subset, so the available
        // thread-time is Σ(node wall × node threads) — not pooled wall ×
        // total threads, which would report a fully busy multi-node
        // service as 1/num_nodes occupied.
        let occupancy_denom: f64 = per_node
            .iter()
            .map(|n| n.batch_wall.as_secs_f64() * n.threads as f64)
            .sum();
        let per_tenant: Vec<TenantStats> = self
            .tenants
            .lock()
            .iter()
            .map(|(&tenant, c)| TenantStats {
                tenant,
                admitted: c.admitted,
                completed: c.completed,
                shed: c.shed,
                rejected_deadline: c.rejected_deadline,
                deadline_met: c.deadline_met,
                deadline_missed: c.deadline_missed,
                served_flops: c.served_flops,
            })
            .collect();
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            submitted_sync: self.submitted_sync.load(Ordering::Relaxed),
            submitted_async: self.submitted_async.load(Ordering::Relaxed),
            submitted_streamed: self.submitted_streamed.load(Ordering::Relaxed),
            in_flight_async: self.in_flight_async.load(Ordering::Relaxed),
            completed,
            failed,
            rejected_overloaded: self.rejected_overloaded.load(Ordering::Relaxed),
            rejected_closed: self.rejected_closed.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            per_tenant,
            batches,
            batched_requests,
            direct_large: self.direct_large.load(Ordering::Relaxed),
            detected: self.detected.load(Ordering::Relaxed),
            corrected: self.corrected.load(Ordering::Relaxed),
            injected: self.injected.load(Ordering::Relaxed),
            retried_panels: self.retried_panels.load(Ordering::Relaxed),
            queue_depth,
            uptime,
            requests_per_sec: if serving.is_zero() {
                0.0
            } else {
                completed as f64 / serving.as_secs_f64().max(1e-9)
            },
            current_cutoff: routing.current_cutoff,
            routing_batched_observations: routing.batched_observations,
            routing_parallel_observations: routing.parallel_observations,
            cutoff_updates: routing.cutoff_updates,
            mean_batch_occupancy: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            mean_turnaround: self
                .turnaround_ns
                .load(Ordering::Relaxed)
                .checked_div(completed + failed)
                .map_or(Duration::ZERO, Duration::from_nanos),
            batch_wall,
            batch_busy_per_thread,
            batch_thread_occupancy: if occupancy_denom <= 0.0 {
                0.0
            } else {
                busy_total.as_secs_f64() / occupancy_denom
            },
            steal_wakeups,
            ft_error_rate_per_node: vec![0.0; self.node_threads.len()],
            per_node,
            pool,
        }
    }
}

/// One tenant's slice of the serving activity (a row of
/// [`StatsSnapshot::per_tenant`]). A tenant appears once it has touched
/// the service — submitted, been rejected, or been shed — and rows are
/// ordered by tenant id.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant id.
    pub tenant: TenantId,
    /// Requests admitted past validation and admission control (whether or
    /// not they have finished yet).
    pub admitted: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Admitted requests load-shed at dispatch after their deadline
    /// expired in the queue (also counted in the service-wide `failed`).
    pub shed: u64,
    /// Submits turned away by deadline admission control before admission
    /// (never counted in `admitted`).
    pub rejected_deadline: u64,
    /// Completed requests that carried a deadline and finished in time.
    pub deadline_met: u64,
    /// Completed requests that carried a deadline and finished late.
    pub deadline_missed: u64,
    /// Planned multiply-adds of this tenant's completed requests — the
    /// quantity the weighted-fair scheduler shares out, so ratios between
    /// tenants' `served_flops` are what the QoS property tests bound.
    pub served_flops: u64,
}

/// One node's slice of the serving activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Node id.
    pub node: usize,
    /// Worker threads pinned to this node.
    pub threads: usize,
    /// Envelopes waiting in this node's shard group right now.
    pub queue_depth: usize,
    /// Requests executed on this node's worker subset (including stolen
    /// ones).
    pub dispatched: u64,
    /// Requests migrated to this node off another node's shard group
    /// because this node was dry (counted at migration); `0` everywhere
    /// under balanced load.
    pub stolen: u64,
    /// Summed wall time of the batched regions this node executed.
    pub batch_wall: Duration,
    /// Summed busy time of this node's threads inside those regions (its
    /// slice of [`StatsSnapshot::batch_busy_per_thread`]).
    pub batch_busy: Duration,
    /// The fault-policy floor the error-aware monitor currently enforces
    /// on this node: `0` = Off (no floor), `1` = Detect, `2` =
    /// DetectCorrect. Always `0` on services without
    /// [`ServiceConfig::fault_policy`](crate::ServiceConfig::fault_policy).
    pub ft_floor: u8,
    /// Times the monitor raised this node's floor.
    pub ft_escalations: u64,
    /// Times the monitor stepped this node's floor back down after a quiet
    /// period of clean flops.
    pub ft_deescalations: u64,
}

/// Point-in-time view of a service's activity.
#[derive(Debug, Clone)]
pub struct StatsSnapshot {
    /// Requests accepted across all submit surfaces.
    pub submitted: u64,
    /// Requests accepted via blocking [`submit`](crate::GemmService::submit).
    pub submitted_sync: u64,
    /// Requests accepted via
    /// [`submit_async`](crate::GemmService::submit_async).
    pub submitted_async: u64,
    /// Requests accepted via
    /// [`submit_streamed`](crate::GemmService::submit_streamed).
    pub submitted_streamed: u64,
    /// Async futures currently alive (neither resolved nor dropped).
    pub in_flight_async: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Submits rejected with [`ServeError::Overloaded`](crate::ServeError)
    /// (bounded queue full; non-blocking surfaces only). Rejected requests
    /// are **not** counted in [`submitted`](Self::submitted).
    pub rejected_overloaded: u64,
    /// Submits rejected with [`ServeError::Closed`](crate::ServeError)
    /// (service shutting down). Not counted in
    /// [`submitted`](Self::submitted).
    pub rejected_closed: u64,
    /// Submits rejected with
    /// [`ServeError::DeadlineExceeded`](crate::ServeError) by admission
    /// control: the learner's completion-time estimate said the deadline
    /// was infeasible given the target node's flops backlog. Not counted
    /// in [`submitted`](Self::submitted).
    pub rejected_deadline: u64,
    /// Admitted requests shed at dispatch because their deadline expired
    /// while queued. Each is also counted in [`failed`](Self::failed).
    pub shed_deadline: u64,
    /// Per-tenant QoS tallies, ordered by tenant id (one row per tenant
    /// that has touched the service).
    pub per_tenant: Vec<TenantStats>,
    /// Coalesced parallel regions executed on the batched path.
    pub batches: u64,
    /// Requests served via the batched path.
    pub batched_requests: u64,
    /// Requests served via the matrix-parallel path.
    pub direct_large: u64,
    /// Checksum discrepancies flagged as real errors, service-wide.
    pub detected: u64,
    /// Elements corrected in place, service-wide.
    pub corrected: u64,
    /// Errors injected by request-attached injectors, service-wide.
    pub injected: u64,
    /// Panels recomputed under `DetectCorrect`, service-wide.
    pub retried_panels: u64,
    /// Envelopes waiting in the queue right now.
    pub queue_depth: usize,
    /// Time since the service started.
    pub uptime: Duration,
    /// Completed requests per second, measured from the **first
    /// submission** (not service construction) to the snapshot instant, so
    /// an idle-then-busy service is not diluted toward zero by its warm-up
    /// gap. `0.0` before any request has been submitted.
    pub requests_per_sec: f64,
    /// The flops cutoff the scheduler is routing by right now: the pinned
    /// value under [`RoutingPolicy::Fixed`](crate::RoutingPolicy), the
    /// live learned estimate under
    /// [`RoutingPolicy::Adaptive`](crate::RoutingPolicy).
    pub current_cutoff: u64,
    /// Timing observations the routing learner absorbed from the batched
    /// path (always `0` under a fixed policy).
    pub routing_batched_observations: u64,
    /// Timing observations the routing learner absorbed from the
    /// matrix-parallel path (always `0` under a fixed policy).
    pub routing_parallel_observations: u64,
    /// Times the published routing cutoff actually changed (always `0`
    /// under a fixed policy).
    pub cutoff_updates: u64,
    /// Mean requests coalesced per batched region.
    pub mean_batch_occupancy: f64,
    /// Mean submit→completion latency.
    pub mean_turnaround: Duration,
    /// Summed wall time of all batched parallel regions across every node
    /// (per-node breakdown in [`per_node`](Self::per_node); nodes execute
    /// regions concurrently, so this can exceed elapsed serving time).
    pub batch_wall: Duration,
    /// Summed busy time per pool thread inside batched regions, indexed by
    /// *global* thread id (node thread ranges concatenated in node order).
    /// A wide spread within one node's range means the dynamic item cursor
    /// is leaving threads idle behind long items.
    pub batch_busy_per_thread: Vec<Duration>,
    /// Mean fraction of batched-region time each thread spent busy:
    /// `sum(batch_busy_per_thread) / Σ_nodes(node wall × node threads)`,
    /// in `[0, 1]` up to timer noise; `0.0` before any batch has run. The
    /// per-node weighting keeps the figure honest on multi-node
    /// topologies, where regions run concurrently on disjoint worker
    /// subsets.
    pub batch_thread_occupancy: f64,
    /// Cross-node dispatcher wakeups fired by pushes that lifted a shard
    /// group past the steal threshold; `0` under balanced load (below the
    /// threshold no cross-node wakeup ever fires).
    pub steal_wakeups: u64,
    /// The error-aware monitor's detected-errors-per-flop EWMA per node,
    /// indexed by node id; all zeros on services without
    /// [`ServiceConfig::fault_policy`](crate::ServiceConfig::fault_policy).
    pub ft_error_rate_per_node: Vec<f64>,
    /// Per-node serving activity, indexed by node id: shard-group depth,
    /// dispatch counts, steal counts, and batched wall/busy time (one
    /// entry per topology node).
    pub per_node: Vec<NodeStats>,
    /// Worker-pool activity (regions, barrier crossings), summed across
    /// every node's worker pool.
    pub pool: PoolStats,
}

#[cfg(test)]
impl StatsSnapshot {
    /// An all-zero snapshot shaped like a `nodes`-node service with
    /// `threads_total` worker threads (exposition-renderer tests).
    pub(crate) fn empty_for_test(nodes: usize, threads_total: usize) -> Self {
        let nodes = nodes.max(1);
        let mut node_threads = vec![threads_total / nodes; nodes];
        for slot in node_threads.iter_mut().take(threads_total % nodes) {
            *slot += 1;
        }
        ServiceStats::new(&node_threads).snapshot(
            &vec![0; nodes],
            PoolStats::default(),
            RoutingSnapshot::default(),
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_derives_rates() {
        let s = ServiceStats::new(&[2]);
        for _ in 0..10 {
            s.admit(&s.submitted_sync);
        }
        s.completed.store(8, Ordering::Relaxed);
        s.batches.store(2, Ordering::Relaxed);
        s.batched_requests.store(6, Ordering::Relaxed);
        s.turnaround_ns.store(8_000_000, Ordering::Relaxed);
        // Snapshots are taken strictly after the first admission, so the
        // serving window is non-empty and the rate is positive.
        std::thread::sleep(Duration::from_millis(2));
        let snap = s.snapshot(&[3], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.submitted_sync, 10);
        assert_eq!(snap.queue_depth, 3);
        assert!(snap.requests_per_sec > 0.0);
        assert!((snap.mean_batch_occupancy - 3.0).abs() < 1e-12);
        assert_eq!(snap.mean_turnaround, Duration::from_nanos(1_000_000));
        assert_eq!(snap.batch_thread_occupancy, 0.0, "no timing absorbed yet");
    }

    #[test]
    fn requests_per_sec_measured_from_first_submission() {
        let s = ServiceStats::new(&[1]);
        // Before any submission: no serving window, rate pinned to zero
        // (previously this divided completed work by construction uptime).
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.requests_per_sec, 0.0);

        // An idle gap before the first submission must not dilute the
        // rate: the serving window starts at `admit`, not at `new`, so the
        // reported rate is strictly above what the old construction-
        // anchored formula (completed / uptime) would give. Comparing
        // against that formula instead of a fixed rate keeps the test
        // immune to descheduling between admit and snapshot.
        std::thread::sleep(Duration::from_millis(30));
        s.admit(&s.submitted_sync);
        s.completed.store(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(2));
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        let construction_anchored = snap.completed as f64 / snap.uptime.as_secs_f64();
        assert!(
            snap.requests_per_sec > construction_anchored,
            "rate diluted by pre-submit idle time: {} vs {construction_anchored}",
            snap.requests_per_sec
        );
        assert!(snap.uptime >= Duration::from_millis(30), "uptime unchanged");
    }

    #[test]
    fn reject_rolls_back_admission() {
        let s = ServiceStats::new(&[1]);
        s.admit(&s.submitted_async);
        s.admit(&s.submitted_async);
        s.reject(&s.submitted_async, RejectReason::Overloaded);
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.submitted_async, 1);
        assert_eq!(snap.rejected_overloaded, 1);
        assert_eq!(snap.rejected_closed, 0);
    }

    #[test]
    fn tenant_counters_tally_and_roll_back() {
        let s = ServiceStats::new(&[1]);
        s.tenant_admit(7);
        s.tenant_admit(7);
        s.tenant_admit(3);
        s.tenant_unadmit(3); // queue push bounced — row stays but reads zero
        s.tenant_complete(7, 1000, Some(true));
        s.tenant_complete(7, 500, None);
        s.tenant_shed(7);
        s.reject_deadline(9);
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.shed_deadline, 1);
        assert_eq!(snap.rejected_deadline, 1);
        // BTreeMap ordering: tenants 3, 7, 9.
        let rows: Vec<TenantId> = snap.per_tenant.iter().map(|t| t.tenant).collect();
        assert_eq!(rows, vec![3, 7, 9]);
        let t7 = &snap.per_tenant[1];
        assert_eq!(t7.admitted, 2);
        assert_eq!(t7.completed, 2);
        assert_eq!(t7.served_flops, 1500);
        assert_eq!(t7.deadline_met, 1);
        assert_eq!(t7.deadline_missed, 0, "no-deadline completion is neutral");
        assert_eq!(t7.shed, 1);
        assert_eq!(snap.per_tenant[0].admitted, 0);
        assert_eq!(snap.per_tenant[2].rejected_deadline, 1);
    }

    #[test]
    fn absorb_report_accumulates() {
        let s = ServiceStats::new(&[1]);
        s.absorb_report(&FtReport {
            verifications: 4,
            detected: 2,
            corrected: 2,
            injected: 3,
            retried_panels: 1,
        });
        s.absorb_report(&FtReport::default());
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.detected, 2);
        assert_eq!(snap.corrected, 2);
        assert_eq!(snap.injected, 3);
        assert_eq!(snap.retried_panels, 1);
    }

    #[test]
    fn absorb_batch_timing_accumulates_per_thread() {
        let s = ServiceStats::new(&[2]);
        s.absorb_batch_timing(
            0,
            &BatchTiming {
                wall: Duration::from_millis(10),
                thread_busy: vec![Duration::from_millis(9), Duration::from_millis(7)],
            },
        );
        s.absorb_batch_timing(
            0,
            &BatchTiming {
                wall: Duration::from_millis(10),
                thread_busy: vec![Duration::from_millis(10), Duration::from_millis(6)],
            },
        );
        let snap = s.snapshot(&[0], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(snap.batch_wall, Duration::from_millis(20));
        assert_eq!(
            snap.batch_busy_per_thread,
            vec![Duration::from_millis(19), Duration::from_millis(13)]
        );
        // 32ms busy over 20ms * 2 threads = 0.8 occupancy.
        assert!((snap.batch_thread_occupancy - 0.8).abs() < 1e-9);
    }

    #[test]
    fn batch_timing_maps_nodes_onto_global_thread_slots() {
        // Two nodes of 2 and 1 threads: node 1's region-local thread 0 must
        // land in global slot 2, not slot 0.
        let s = ServiceStats::new(&[2, 1]);
        s.absorb_batch_timing(
            1,
            &BatchTiming {
                wall: Duration::from_millis(4),
                thread_busy: vec![Duration::from_millis(3)],
            },
        );
        s.absorb_batch_timing(
            0,
            &BatchTiming {
                wall: Duration::from_millis(6),
                thread_busy: vec![Duration::from_millis(5), Duration::from_millis(1)],
            },
        );
        let snap = s.snapshot(&[2, 5], PoolStats::default(), RoutingSnapshot::default(), 0);
        assert_eq!(
            snap.batch_busy_per_thread,
            vec![
                Duration::from_millis(5),
                Duration::from_millis(1),
                Duration::from_millis(3)
            ]
        );
        // Per-node snapshot rows carry the node-indexed queue depths.
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.per_node.len(), 2);
        assert_eq!(snap.per_node[0].threads, 2);
        assert_eq!(snap.per_node[1].threads, 1);
        assert_eq!(snap.per_node[0].queue_depth, 2);
        assert_eq!(snap.per_node[1].queue_depth, 5);
    }

    #[test]
    fn dispatch_and_steal_counters_surface_per_node() {
        let s = ServiceStats::new(&[1, 1, 1]);
        s.dispatched[0].store(7, Ordering::Relaxed);
        s.dispatched[2].store(3, Ordering::Relaxed);
        s.stolen[2].store(3, Ordering::Relaxed);
        let snap = s.snapshot(
            &[0, 0, 0],
            PoolStats::default(),
            RoutingSnapshot::default(),
            0,
        );
        assert_eq!(snap.per_node[0].dispatched, 7);
        assert_eq!(snap.per_node[0].stolen, 0);
        assert_eq!(snap.per_node[1].dispatched, 0);
        assert_eq!(snap.per_node[2].dispatched, 3);
        assert_eq!(snap.per_node[2].stolen, 3);
    }
}
