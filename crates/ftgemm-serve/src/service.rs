//! The service: scheduler thread, routing, batching, and lifecycle.

use crate::handle::{AsyncRequestHandle, RequestHandle, ResponseSlot};
use crate::queue::{Envelope, PushError, ShardedQueue};
use crate::request::{GemmRequest, GemmResponse, ServeError};
use crate::routing::{RoutePath, RouteState, RoutingPolicy};
use crate::stats::{ServiceStats, StatsSnapshot};
use crate::stream::CompletionSink;
use ftgemm_abft::{FtReport, FtResult};
use ftgemm_core::Scalar;
use ftgemm_parallel::{
    par_batch_ft_gemm_timed, par_ft_gemm, par_gemm, BatchItem, BatchWorkspace, ParGemmContext,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Default boundary between "small" (batched) and "large" (matrix-parallel)
/// problems, in multiply-adds (`2*m*n*k`): roughly where one GEMM starts
/// having enough row-panels to feed every core of a desktop part on its
/// own. Shared with the facade's `Exec::Auto` routing so a planned one-shot
/// call and a served request make the same serial-vs-parallel decision.
pub const DEFAULT_SMALL_FLOPS_CUTOFF: u64 = 2 * 192 * 192 * 192;

/// Tuning knobs for a [`GemmService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads in the compute pool (`0` = one per available core).
    pub threads: usize,
    /// Independent submission-queue shards (reduces submit-side lock
    /// contention when many frontend threads submit concurrently).
    pub queue_shards: usize,
    /// Maximum small requests coalesced into one batched parallel region.
    pub max_batch: usize,
    /// Where the batched-vs-matrix-parallel boundary comes from: requests
    /// with at most the cutoff's multiply-adds (`2*m*n*k`) take the batched
    /// path, larger ones run matrix-parallel via `par_ft_gemm`. The default
    /// learns the boundary online from observed region times, seeded at
    /// [`DEFAULT_SMALL_FLOPS_CUTOFF`]; pin it with
    /// [`RoutingPolicy::Fixed`] for deterministic routing.
    pub routing: RoutingPolicy,
    /// Submission-queue depth bound (`0` = unbounded, the default). When
    /// set, blocking [`submit`](GemmService::submit) calls park until the
    /// scheduler drains space, while the non-blocking async surfaces
    /// ([`submit_async`](GemmService::submit_async),
    /// [`submit_streamed`](GemmService::submit_streamed)) fail fast with
    /// [`ServeError::Overloaded`] so frontends can shed load. The bound is
    /// soft under concurrency (overshoot ≤ concurrent submitters).
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 0,
            queue_shards: 4,
            max_batch: 32,
            routing: RoutingPolicy::default(),
            queue_capacity: 0,
        }
    }
}

struct Inner<T: Scalar> {
    queue: ShardedQueue<T>,
    stats: ServiceStats,
    config: ServiceConfig,
    route: RouteState,
    ctx: ParGemmContext<T>,
}

/// A batched GEMM server: accepts concurrent [`GemmRequest`]s, coalesces
/// small problems into batched parallel regions, routes large problems to
/// the matrix-parallel fused-ABFT driver, and honors a per-request
/// [`FtPolicy`](crate::FtPolicy).
///
/// Three submit surfaces share one scheduler:
/// [`submit`](GemmService::submit) (blocking condvar handle),
/// [`submit_async`](GemmService::submit_async) (waker-based future — no
/// parked thread per request), and
/// [`submit_streamed`](GemmService::submit_streamed) (results forwarded
/// into a [`completion_channel`](crate::completion_channel)).
///
/// One dedicated scheduler thread drains the sharded queue; all compute
/// runs on the service's persistent worker pool. Dropping the service (or
/// calling [`shutdown`](GemmService::shutdown)) stops intake, drains every
/// queued request, and joins the scheduler — outstanding handles always
/// resolve.
pub struct GemmService<T: Scalar> {
    inner: Arc<Inner<T>>,
    scheduler: Option<JoinHandle<()>>,
}

impl<T: Scalar> GemmService<T> {
    /// Service with default configuration (all cores).
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Service with explicit configuration.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.queue_shards >= 1, "need at least one queue shard");
        assert!(config.max_batch >= 1, "need max_batch >= 1");
        let ctx = if config.threads == 0 {
            ParGemmContext::<T>::new()
        } else {
            ParGemmContext::<T>::with_threads(config.threads)
        };
        let inner = Arc::new(Inner {
            queue: ShardedQueue::new(config.queue_shards, config.queue_capacity),
            stats: ServiceStats::new(ctx.nthreads()),
            route: RouteState::new(config.routing),
            config,
            ctx,
        });
        let scheduler_inner = Arc::clone(&inner);
        let scheduler = std::thread::Builder::new()
            .name("ftgemm-serve-scheduler".into())
            .spawn(move || scheduler_loop(&scheduler_inner))
            .expect("failed to spawn scheduler thread");
        GemmService {
            inner,
            scheduler: Some(scheduler),
        }
    }

    /// Submits a request; returns a handle redeemable for the result.
    ///
    /// Shape errors are rejected here, synchronously; everything else is
    /// reported through the handle. With a bounded queue
    /// ([`ServiceConfig::queue_capacity`]), this call parks until space
    /// opens up — use [`submit_async`](GemmService::submit_async) or
    /// [`submit_streamed`](GemmService::submit_streamed) for surfaces that
    /// never block.
    pub fn submit(&self, req: GemmRequest<T>) -> Result<RequestHandle<T>, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let (handle, slot) = RequestHandle::pair(id);
        let env = Envelope {
            req,
            slot,
            id,
            submitted: Instant::now(),
        };
        // Count at admission, *before* the push: once the envelope is in
        // the queue the scheduler may complete it at any moment, and a
        // snapshot taken in that window must never see
        // `completed > submitted`. A rejected push rolls the count back.
        self.inner.stats.admit(&self.inner.stats.submitted_sync);
        self.inner.queue.push(env).map_err(|_| {
            self.inner.stats.reject(&self.inner.stats.submitted_sync);
            ServeError::Closed
        })?;
        Ok(handle)
    }

    /// Submits a request and returns a [`Future`](std::future::Future)
    /// resolving to its result — no thread is parked per in-flight request
    /// (the scheduler's fulfill path fires the task's waker directly).
    ///
    /// Never blocks: with a bounded queue
    /// ([`ServiceConfig::queue_capacity`]) a full queue is reported
    /// immediately as [`ServeError::Overloaded`] instead of parking, so an
    /// async frontend can shed load or retry on its own schedule. Shape
    /// errors and shutdown are likewise rejected synchronously.
    ///
    /// The returned future is executor-agnostic; see
    /// `examples/async_serving.rs` for a hand-rolled `block_on` driving
    /// hundreds of these concurrently from one thread.
    pub fn submit_async(&self, req: GemmRequest<T>) -> Result<AsyncRequestHandle<T>, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let (handle, slot) =
            AsyncRequestHandle::pair(id, Arc::clone(&self.inner.stats.in_flight_async));
        let env = Envelope {
            req,
            slot,
            id,
            submitted: Instant::now(),
        };
        // Counted at admission (see `submit`); a rejected push rolls the
        // count back, and the handle drops here too, releasing the
        // in-flight gauge.
        self.inner.stats.admit(&self.inner.stats.submitted_async);
        self.inner.queue.try_push(env).map_err(|e| {
            self.inner.stats.reject(&self.inner.stats.submitted_async);
            match e {
                PushError::Full => ServeError::Overloaded,
                PushError::Closed => ServeError::Closed,
            }
        })?;
        Ok(handle)
    }

    /// Submits a request whose result is delivered into a completion
    /// channel ([`completion_channel`](crate::completion_channel)) instead
    /// of a per-request handle; returns the request id used to tag the
    /// completion. Like [`submit_async`](GemmService::submit_async) this
    /// never blocks — a full bounded queue is [`ServeError::Overloaded`].
    ///
    /// One channel can absorb completions from any number of submissions
    /// (across threads and even across services), which makes it the
    /// cheapest way to drain a large burst: one drain loop, zero parked
    /// threads per request.
    pub fn submit_streamed(
        &self,
        req: GemmRequest<T>,
        sink: &CompletionSink<T>,
    ) -> Result<u64, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let slot = ResponseSlot::forwarding(id, sink.clone());
        sink.register();
        let env = Envelope {
            req,
            slot,
            id,
            submitted: Instant::now(),
        };
        // Counted at admission (see `submit`); rolled back on rejection.
        self.inner.stats.admit(&self.inner.stats.submitted_streamed);
        self.inner.queue.try_push(env).map_err(|e| {
            self.inner
                .stats
                .reject(&self.inner.stats.submitted_streamed);
            sink.unregister();
            match e {
                PushError::Full => ServeError::Overloaded,
                PushError::Closed => ServeError::Closed,
            }
        })?;
        Ok(id)
    }

    /// Convenience: submit and block for the result.
    pub fn run(&self, req: GemmRequest<T>) -> Result<GemmResponse<T>, ServeError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time service metrics.
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(
            self.inner.queue.depth(),
            self.inner.ctx.pool().stats(),
            self.inner.route.snapshot(),
        )
    }

    /// The flops cutoff the scheduler is routing by right now: the pinned
    /// constant under [`RoutingPolicy::Fixed`], the live learned estimate
    /// under [`RoutingPolicy::Adaptive`]. Callers planning one-shot calls
    /// (`Exec::Auto` is seeded by [`DEFAULT_SMALL_FLOPS_CUTOFF`]) can read
    /// this to seed their own routing with the value this machine actually
    /// converged to.
    pub fn current_cutoff(&self) -> u64 {
        self.inner.route.cutoff()
    }

    /// Threads in the compute pool.
    pub fn nthreads(&self) -> usize {
        self.inner.ctx.nthreads()
    }

    /// Stops intake, drains queued requests, joins the scheduler, and
    /// returns the final metrics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        self.inner.queue.close();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
    }
}

impl<T: Scalar> Drop for GemmService<T> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl<T: Scalar> std::fmt::Debug for GemmService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GemmService")
            .field("nthreads", &self.inner.ctx.nthreads())
            .field("config", &self.inner.config)
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

fn scheduler_loop<T: Scalar>(inner: &Inner<T>) {
    // Per-pool-thread serial FT workspaces, reused across every batch the
    // service ever runs (the packed-buffer amortization the batched path is
    // built around).
    let workspace = BatchWorkspace::new(&inner.ctx);
    loop {
        // Drain aggressively: taking more than one batch's worth per sweep
        // lets one sweep split into large/small once instead of re-locking
        // shards per region.
        let envelopes = inner.queue.pop_batch(4 * inner.config.max_batch);
        if envelopes.is_empty() {
            if !inner.queue.wait_nonempty() {
                return; // closed and fully drained
            }
            continue;
        }
        dispatch(inner, &workspace, envelopes);
    }
}

/// Routes a drained sweep by the live cutoff: small requests coalesced
/// into batched regions, large ones one-at-a-time through the
/// matrix-parallel driver.
///
/// The batched regions run *first*: a sweep can hold 100+ large requests,
/// and an early-arriving small request parked behind that loop would see
/// its latency multiplied for no benefit (the coalesced batches are the
/// cheap part of the sweep). Pinned by
/// `small_batches_complete_before_large_requests`.
fn dispatch<T: Scalar>(
    inner: &Inner<T>,
    workspace: &BatchWorkspace<T>,
    envelopes: Vec<Envelope<T>>,
) {
    let cutoff = inner.route.cutoff();
    let (small, large): (Vec<_>, Vec<_>) = envelopes
        .into_iter()
        .partition(|env| env.req.flops() <= cutoff);

    let mut small = small;
    while !small.is_empty() {
        let take = small.len().min(inner.config.max_batch);
        let chunk: Vec<Envelope<T>> = small.drain(..take).collect();
        run_batch(inner, workspace, chunk);
    }

    for env in large {
        inner.stats.direct_large.fetch_add(1, Ordering::Relaxed);
        run_large(inner, env);
    }
}

fn run_large<T: Scalar>(inner: &Inner<T>, env: Envelope<T>) {
    let Envelope {
        mut req,
        slot,
        submitted,
        ..
    } = env;
    let flops = req.flops();
    let cfg = req.policy.to_config(req.injector.clone());
    let started = Instant::now();
    let result: FtResult<FtReport> = match &cfg {
        Some(cfg) => par_ft_gemm(
            &inner.ctx,
            cfg,
            req.alpha,
            &req.a.as_ref(),
            &req.b.as_ref(),
            req.beta,
            &mut req.c.as_mut(),
        ),
        None => par_gemm(
            &inner.ctx,
            req.alpha,
            &req.a.as_ref(),
            &req.b.as_ref(),
            req.beta,
            &mut req.c.as_mut(),
        )
        .map(|()| FtReport::default())
        .map_err(ftgemm_abft::FtError::Core),
    };
    inner.route.observe(
        RoutePath::Parallel,
        flops,
        started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
    );
    finish(inner, slot, req.c, result, submitted, false);
}

fn run_batch<T: Scalar>(
    inner: &Inner<T>,
    workspace: &BatchWorkspace<T>,
    mut envs: Vec<Envelope<T>>,
) {
    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .batched_requests
        .fetch_add(envs.len() as u64, Ordering::Relaxed);

    // Per-request configs must outlive the borrowed batch items.
    let cfgs: Vec<_> = envs
        .iter()
        .map(|env| env.req.policy.to_config(env.req.injector.clone()))
        .collect();
    let mut items: Vec<BatchItem<'_, T>> = envs
        .iter_mut()
        .zip(cfgs.iter())
        .map(|(env, cfg)| {
            let req = &mut env.req;
            BatchItem {
                alpha: req.alpha,
                a: req.a.as_ref(),
                b: req.b.as_ref(),
                beta: req.beta,
                c: req.c.as_mut(),
                cfg: cfg.as_ref(),
            }
        })
        .collect();
    let (results, timing) = par_batch_ft_gemm_timed(&inner.ctx, workspace, &mut items);
    drop(items);
    inner.stats.absorb_batch_timing(&timing);

    // Feed the routing learner: the region's wall time, attributed to each
    // item in proportion to its flops (the whole region shares one ns/flop,
    // but each item lands in its own log2(flops) bucket).
    let total_flops: u64 = envs.iter().map(|env| env.req.flops()).sum();
    if total_flops > 0 {
        let wall_ns = timing.wall.as_nanos().min(u64::MAX as u128) as f64;
        for env in &envs {
            let flops = env.req.flops();
            let share_ns = wall_ns * flops as f64 / total_flops as f64;
            inner
                .route
                .observe(RoutePath::Batched, flops, share_ns as u64);
        }
    }

    for (env, result) in envs.into_iter().zip(results) {
        finish(inner, env.slot, env.req.c, result, env.submitted, true);
    }
}

fn finish<T: Scalar>(
    inner: &Inner<T>,
    slot: Arc<crate::handle::ResponseSlot<T>>,
    c: ftgemm_core::Matrix<T>,
    result: FtResult<FtReport>,
    submitted: Instant,
    batched: bool,
) {
    inner.stats.turnaround_ns.fetch_add(
        submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    match result {
        Ok(report) => {
            inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            inner.stats.absorb_report(&report);
            slot.fulfill(Ok(GemmResponse { c, report, batched }));
        }
        Err(e) => {
            inner.stats.failed.fetch_add(1, Ordering::Relaxed);
            slot.fulfill(Err(ServeError::Ft(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteState;
    use crate::stream::completion_channel;
    use ftgemm_core::Matrix;

    /// Head-of-line regression: a drained sweep must run its coalesced
    /// small batches before the large loop. Drives `dispatch` directly (no
    /// scheduler thread) so the sweep's composition — four large requests
    /// that arrived *before* one small one — is exact and the completion
    /// order deterministic.
    #[test]
    fn small_batches_complete_before_large_requests() {
        let config = ServiceConfig {
            threads: 2,
            max_batch: 4,
            routing: RoutingPolicy::Fixed(2 * 32 * 32 * 32),
            ..ServiceConfig::default()
        };
        let inner = Inner {
            queue: ShardedQueue::new(1, 0),
            stats: ServiceStats::new(2),
            route: RouteState::new(config.routing),
            config,
            ctx: ParGemmContext::<f64>::with_threads(2),
        };
        let workspace = BatchWorkspace::new(&inner.ctx);
        let (sink, mut completions) = completion_channel::<f64>();

        let mk = |id: u64, dim: usize| {
            let req = GemmRequest::new(
                Matrix::<f64>::random(dim, dim, id),
                Matrix::<f64>::random(dim, dim, id + 100),
            );
            sink.register();
            Envelope {
                req,
                slot: ResponseSlot::forwarding(id, sink.clone()),
                id,
                submitted: Instant::now(),
            }
        };
        // Ids 0..4: large (64^3 > the pinned cutoff); id 4: small (16^3).
        let mut envelopes: Vec<_> = (0..4u64).map(|id| mk(id, 64)).collect();
        envelopes.push(mk(4, 16));
        dispatch(&inner, &workspace, envelopes);
        drop(sink);

        let mut order = Vec::new();
        while let Some(c) = completions.recv() {
            c.result.unwrap();
            order.push(c.id);
        }
        assert_eq!(order.len(), 5);
        assert_eq!(
            order[0], 4,
            "small request waited behind the large loop: {order:?}"
        );
        assert_eq!(inner.stats.direct_large.load(Ordering::Relaxed), 4);
        assert_eq!(inner.stats.batched_requests.load(Ordering::Relaxed), 1);
    }
}
