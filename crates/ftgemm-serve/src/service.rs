//! The service: per-node dispatcher threads, placement, routing, batching,
//! stealing, and lifecycle.

// analyze::policy(publish: abort as serve_abort)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// `abort` publishes service shutdown to the dispatcher and region
// threads — Release store in abort(), Acquire loads at the dispatch and
// batch boundaries. The per-node stats are Relaxed counters.

use crate::export::{render_service_metrics, ServiceObs};
use crate::fault_policy::{FaultPolicyConfig, FaultPolicyMonitor};
use crate::handle::{AsyncRequestHandle, RequestHandle, ResponseSlot};
use crate::placement::{PlacementPolicy, Placer};
use crate::qos::{TenantId, TenantTable};
use crate::queue::{Envelope, PushError, ShardedQueue};
use crate::request::{GemmRequest, GemmResponse, ServeError};
use crate::routing::{RoutePath, RouteState, RoutingPolicy};
use crate::stats::{RejectReason, ServiceStats, StatsSnapshot};
use crate::stream::CompletionSink;
use ftgemm_abft::{FtReport, FtResult};
use ftgemm_core::Scalar;
use ftgemm_obs::{ObsRoutes, ObsServer, TraceEvent, TracePath};
use ftgemm_parallel::{
    par_batch_ft_gemm_timed, par_ft_gemm, par_gemm, BatchItem, BatchWorkspace, ParGemmContext,
};
use ftgemm_pool::{PoolStats, Topology};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Default boundary between "small" (batched) and "large" (matrix-parallel)
/// problems, in multiply-adds (`2*m*n*k`): roughly where one GEMM starts
/// having enough row-panels to feed every core of a desktop part on its
/// own. Shared with the facade's `Exec::Auto` routing so a planned one-shot
/// call and a served request make the same serial-vs-parallel decision.
pub const DEFAULT_SMALL_FLOPS_CUTOFF: u64 = 2 * 192 * 192 * 192;

/// Tuning knobs for a [`GemmService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads in the compute pools, summed across nodes (`0` = one
    /// per core of every node). With a multi-node topology the threads are
    /// split across nodes by core share, every node keeping at least one.
    pub threads: usize,
    /// Independent submission-queue shards **per node shard group**
    /// (reduces submit-side lock contention when many frontend threads
    /// submit concurrently to the same node).
    pub queue_shards: usize,
    /// Maximum small requests coalesced into one batched parallel region.
    pub max_batch: usize,
    /// Where the batched-vs-matrix-parallel boundary comes from: requests
    /// with at most the cutoff's multiply-adds (`2*m*n*k`) take the batched
    /// path, larger ones run matrix-parallel via `par_ft_gemm`. The default
    /// learns the boundary online from observed region times, seeded at
    /// [`DEFAULT_SMALL_FLOPS_CUTOFF`]; pin it with
    /// [`RoutingPolicy::Fixed`] for deterministic routing.
    pub routing: RoutingPolicy,
    /// Submission-queue depth bound across all shard groups (`0` =
    /// unbounded, the default). When set, blocking
    /// [`submit`](GemmService::submit) calls park until the scheduler
    /// drains space, while the non-blocking async surfaces
    /// ([`submit_async`](GemmService::submit_async),
    /// [`submit_streamed`](GemmService::submit_streamed)) fail fast with
    /// [`ServeError::Overloaded`] so frontends can shed load. The bound is
    /// soft under concurrency (overshoot ≤ concurrent submitters).
    pub queue_capacity: usize,
    /// The memory-domain layout the service shards itself around: one
    /// queue shard group and one pinned worker subset per node. `None`
    /// (the default) detects the machine's topology;
    /// [`Topology::synthetic`] forces any layout — every placement
    /// decision is deterministic under a synthetic topology.
    pub topology: Option<Topology>,
    /// How requests are assigned a node affinity at submit time.
    pub placement: PlacementPolicy,
    /// Per-tenant weighted-fair-share configuration: every node's shard
    /// group schedules across tenants by flops-weighted deficit round-robin
    /// using these weights (strict priority classes and
    /// earliest-deadline-first apply *within* a tenant's lane). The default
    /// table gives every tenant weight 1 — plain fair share.
    /// [`GemmService::new`] panics on an invalid table (zero weight, zero
    /// quantum, duplicate ids).
    pub tenants: TenantTable,
    /// When set, the service records request-lifecycle traces and serves
    /// `GET /metrics` (Prometheus text exposition), `/healthz`, and
    /// `/trace` on this address from a dedicated endpoint thread (bind to
    /// port `0` to let the OS pick; [`GemmService::obs_addr`] reports the
    /// resolved address). `None` — the default — disables the endpoint
    /// *and* the per-request trace/histogram recording, keeping the hot
    /// paths at their uninstrumented cost.
    ///
    /// [`GemmService::new`] panics if the address cannot be bound (a
    /// config error worth failing loudly at construction, not at first
    /// scrape).
    pub obs_addr: Option<SocketAddr>,
    /// When set, an error-aware monitor watches each node's detected
    /// errors per flop (an EWMA fed by every completed request's
    /// [`FtReport`]) and escalates that node's *policy floor*
    /// (`Off → Detect → DetectCorrect`) when the rate crosses the
    /// configured thresholds. The floor composes with each request's own
    /// [`FtPolicy`](crate::FtPolicy) via
    /// [`FtPolicy::at_least`](crate::FtPolicy::at_least) — it only ever
    /// raises protection — and steps back down after
    /// [`FaultPolicyConfig::quiet_flops`] of clean traffic. `None` (the
    /// default) disables the monitor entirely: requests run exactly the
    /// policy they asked for.
    pub fault_policy: Option<FaultPolicyConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 0,
            queue_shards: 4,
            max_batch: 32,
            routing: RoutingPolicy::default(),
            queue_capacity: 0,
            topology: None,
            placement: PlacementPolicy::default(),
            tenants: TenantTable::default(),
            obs_addr: None,
            fault_policy: None,
        }
    }
}

/// One node's compute runtime: a node-scoped context whose pool is that
/// node's pinned worker subset.
struct NodeRuntime<T: Scalar> {
    ctx: ParGemmContext<T>,
}

struct Inner<T: Scalar> {
    queue: ShardedQueue<T>,
    stats: ServiceStats,
    config: ServiceConfig,
    route: RouteState,
    placer: Placer,
    topology: Topology,
    nodes: Vec<NodeRuntime<T>>,
    /// When set, dispatchers stop computing queued work and fail it with
    /// [`ServeError::Closed`] instead
    /// ([`shutdown_now`](GemmService::shutdown_now)).
    abort: AtomicBool,
    /// Lifecycle tracing + latency histogram, present only when
    /// [`ServiceConfig::obs_addr`] is set (obs-disabled services skip all
    /// recording).
    obs: Option<ServiceObs>,
    /// Error-aware per-node policy floors, present only when
    /// [`ServiceConfig::fault_policy`] is set.
    monitor: Option<FaultPolicyMonitor>,
}

/// A batched GEMM server: accepts concurrent [`GemmRequest`]s, coalesces
/// small problems into batched parallel regions, routes large problems to
/// the matrix-parallel fused-ABFT driver, and honors a per-request
/// [`FtPolicy`](crate::FtPolicy).
///
/// The service is **NUMA-sharded**: its [`Topology`] (detected, or forced
/// via [`ServiceConfig::topology`]) gives every memory domain its own queue
/// shard group and its own pinned worker subset, and each request is
/// stamped with a node affinity at submit time by the configured
/// [`PlacementPolicy`] — by default the node that owns its operands. A
/// request runs on its affinity node's workers unless that node's shard
/// group ran dry and it was explicitly stolen (visible per request via
/// [`GemmResponse::stolen`] and per node via
/// [`StatsSnapshot::per_node`]).
///
/// Three submit surfaces feed the same dispatchers:
/// [`submit`](GemmService::submit) (blocking condvar handle),
/// [`submit_async`](GemmService::submit_async) (waker-based future — no
/// parked thread per request), and
/// [`submit_streamed`](GemmService::submit_streamed) (results forwarded
/// into a [`completion_channel`](crate::completion_channel)).
///
/// One dispatcher thread per node drains that node's shard group onto
/// that node's persistent worker pool, so on a multi-node machine the
/// domains compute concurrently. Dropping the service (or calling
/// [`shutdown`](GemmService::shutdown)) stops intake, drains every queued
/// request, and joins the dispatchers — outstanding handles always
/// resolve. [`shutdown_now`](GemmService::shutdown_now) instead *fails*
/// still-queued requests with [`ServeError::Closed`] so a frontend can
/// stop without paying for the backlog.
pub struct GemmService<T: Scalar> {
    inner: Arc<Inner<T>>,
    /// One dispatcher thread per node, each draining its own shard group
    /// onto its own node-scoped pool — so on a multi-node machine the
    /// nodes genuinely compute concurrently.
    dispatchers: Vec<JoinHandle<()>>,
    /// The `/metrics` endpoint thread ([`ServiceConfig::obs_addr`]);
    /// stopped and joined by shutdown/drop.
    obs_server: Option<ObsServer>,
}

impl<T: Scalar> GemmService<T> {
    /// Service with default configuration (all cores, detected topology).
    pub fn with_defaults() -> Self {
        Self::new(ServiceConfig::default())
    }

    /// Service with explicit configuration.
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.queue_shards >= 1, "need at least one queue shard");
        assert!(config.max_batch >= 1, "need max_batch >= 1");
        if let Err(e) = config.tenants.validate() {
            panic!("invalid ServiceConfig::tenants: {e}");
        }
        let topology = config.topology.clone().unwrap_or_else(Topology::detect);
        let nnodes = topology.num_nodes();
        // Per-node worker subsets: `threads == 0` sizes each subset to its
        // node's cores; otherwise the requested total is split by core
        // share (PoolPartition's proportional split, so a 6+2-core
        // topology gets a 3:1 thread ratio, not an even one) with a floor
        // of one thread per node (every node must be able to execute its
        // own shard group).
        let node_threads: Vec<usize> = if config.threads == 0 {
            topology.nodes().iter().map(|n| n.cores).collect()
        } else {
            let split = ftgemm_pool::PoolPartition::new(&topology, config.threads);
            (0..nnodes).map(|i| split.threads_on(i).max(1)).collect()
        };
        let nodes: Vec<NodeRuntime<T>> = node_threads
            .iter()
            .enumerate()
            .map(|(node, &threads)| NodeRuntime {
                ctx: ParGemmContext::<T>::for_node_threads(node, threads),
            })
            .collect();
        let inner = Arc::new(Inner {
            // A group deeper than one full batch is steal-eligible (a dry
            // node migrating less than a batch would thrash).
            queue: ShardedQueue::new(
                nnodes,
                config.queue_shards,
                config.queue_capacity,
                config.max_batch,
                config.tenants.clone(),
            ),
            stats: ServiceStats::new(&node_threads),
            route: RouteState::new(config.routing),
            placer: Placer::new(config.placement),
            topology,
            nodes,
            abort: AtomicBool::new(false),
            obs: config.obs_addr.map(|_| ServiceObs::new(nnodes)),
            monitor: config
                .fault_policy
                .clone()
                .map(|cfg| FaultPolicyMonitor::new(cfg, nnodes)),
            config,
        });
        let dispatchers: Vec<_> = (0..nnodes)
            .filter_map(|node| {
                let inner = Arc::clone(&inner);
                let spawned = std::thread::Builder::new()
                    .name(format!("ftgemm-serve-dispatch-{node}"))
                    .spawn(move || dispatcher_loop(&inner, node));
                match spawned {
                    Ok(h) => Some(h),
                    Err(e) => {
                        // Degraded but alive: work placed on this node is
                        // drained by the other dispatchers' steal path.
                        eprintln!("ftgemm-serve: dispatcher {node} failed to spawn: {e}");
                        None
                    }
                }
            })
            .collect();
        // With zero dispatchers nothing would ever drain the queue; that
        // environment cannot serve and must fail construction loudly.
        assert!(
            !dispatchers.is_empty(),
            "failed to spawn any dispatcher thread"
        );
        // The endpoint holds only a Weak ref: a scrape racing teardown
        // renders a tombstone instead of keeping the service alive.
        let obs_server = inner.config.obs_addr.map(|addr| {
            let metrics_inner = Arc::downgrade(&inner);
            let trace_inner = Arc::downgrade(&inner);
            let routes = ObsRoutes {
                metrics: Box::new(move || match metrics_inner.upgrade() {
                    Some(inner) => render_metrics_of(&inner),
                    None => "# ftgemm service shut down\n".to_string(),
                }),
                trace: Box::new(move || match trace_inner.upgrade() {
                    Some(inner) => match &inner.obs {
                        Some(obs) => obs.trace.render_text(TRACE_DUMP_RECORDS),
                        None => "# tracing disabled\n".to_string(),
                    },
                    None => "# ftgemm service shut down\n".to_string(),
                }),
            };
            ObsServer::bind(addr, routes)
                .unwrap_or_else(|e| panic!("failed to bind ServiceConfig::obs_addr {addr}: {e}"))
        });
        GemmService {
            inner,
            dispatchers,
            obs_server,
        }
    }

    /// Stamps `req`'s node affinity (placement runs once, at submit).
    /// `LeastLoaded` reads each group's backlog in *planned flops*, not
    /// request count, so one huge queued GEMM is not mistaken for the same
    /// load as one tiny one.
    fn place(&self, req: &GemmRequest<T>) -> usize {
        self.inner
            .placer
            .place(req, self.inner.topology.num_nodes(), |n| {
                self.inner.queue.node_pending_flops(n)
            })
    }

    /// Deadline admission control: predicts the request's completion time
    /// from the routing learner's ns/flop model and the affinity node's
    /// flops backlog, and rejects the submit with
    /// [`ServeError::DeadlineExceeded`] when the deadline is infeasible —
    /// before the request is admitted or consumes queue capacity.
    ///
    /// No deadline, no model (fixed routing), or no evidence yet all admit:
    /// the check only turns requests away when it has a basis to predict
    /// they cannot make it. The estimate deliberately ignores tenant
    /// weights — it is the *node's* total backlog ahead of the request,
    /// which upper-bounds the wait for any tenant — so it errs toward
    /// rejecting only clearly-infeasible work.
    fn check_deadline(&self, req: &GemmRequest<T>, affinity: usize) -> Result<(), ServeError> {
        let Some(deadline) = req.deadline else {
            return Ok(());
        };
        let flops = req.flops().max(1);
        let Some(ns_per_flop) = self.inner.route.estimate_ns_per_flop(flops) else {
            return Ok(());
        };
        let backlog = self.inner.queue.node_pending_flops(affinity);
        let eta_ns = backlog.saturating_add(flops) as f64 * ns_per_flop;
        let deadline_ns = deadline.as_nanos().min(u64::MAX as u128) as f64;
        if eta_ns > deadline_ns {
            self.inner.stats.reject_deadline(req.tenant);
            return Err(ServeError::DeadlineExceeded(format!(
                "infeasible at admission: node {affinity} holds {backlog} backlog flops, \
                 and at the learned {ns_per_flop:.3} ns/flop this {flops}-flop request \
                 would finish ~{:.0}us after submit, past its {:.0}us deadline",
                eta_ns / 1e3,
                deadline_ns / 1e3,
            )));
        }
        Ok(())
    }

    /// Submits a request; returns a handle redeemable for the result.
    ///
    /// Shape errors are rejected here, synchronously; everything else is
    /// reported through the handle. With a bounded queue
    /// ([`ServiceConfig::queue_capacity`]), this call parks until space
    /// opens up — use [`submit_async`](GemmService::submit_async) or
    /// [`submit_streamed`](GemmService::submit_streamed) for surfaces that
    /// never block.
    pub fn submit(&self, req: GemmRequest<T>) -> Result<RequestHandle<T>, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let affinity = self.place(&req);
        // Admission control runs before the request is counted or traced:
        // a deadline-infeasible submit never existed as far as `submitted`
        // and the lifecycle trace are concerned (only `rejected_deadline`
        // and its tenant's row record it).
        self.check_deadline(&req, affinity)?;
        let tenant = req.tenant;
        let (handle, slot) = RequestHandle::pair(id);
        let submitted = Instant::now();
        let env = Envelope {
            deadline: req.deadline.map(|d| submitted + d),
            flops: req.flops(),
            req,
            slot,
            id,
            affinity,
            submitted,
        };
        // Count at admission, *before* the push: once the envelope is in
        // the queue the scheduler may complete it at any moment, and a
        // snapshot taken in that window must never see
        // `completed > submitted`. A rejected push rolls the count back.
        // Trace events follow the same rule: recorded before the push so a
        // request's `admitted` can never land after its `dispatched`.
        self.inner.stats.admit(&self.inner.stats.submitted_sync);
        self.inner.stats.tenant_admit(tenant);
        self.trace_admitted(affinity, id);
        self.inner.queue.push(env).map_err(|_| {
            self.inner
                .stats
                .reject(&self.inner.stats.submitted_sync, RejectReason::Closed);
            self.inner.stats.tenant_unadmit(tenant);
            self.trace_rejected(affinity, id);
            ServeError::Closed
        })?;
        Ok(handle)
    }

    /// Records the admission-time trace pair (`admitted`, `queued`) on the
    /// request's affinity node; no-op on obs-disabled services.
    fn trace_admitted(&self, affinity: usize, id: u64) {
        if let Some(obs) = &self.inner.obs {
            obs.trace.record(affinity, id, TraceEvent::Admitted);
            obs.trace.record(affinity, id, TraceEvent::Queued);
        }
    }

    /// Records the `failed` trace terminal for a rejected submit.
    fn trace_rejected(&self, affinity: usize, id: u64) {
        if let Some(obs) = &self.inner.obs {
            obs.trace.record(affinity, id, TraceEvent::Failed);
        }
    }

    /// Submits a request and returns a [`Future`](std::future::Future)
    /// resolving to its result — no thread is parked per in-flight request
    /// (the scheduler's fulfill path fires the task's waker directly).
    ///
    /// Never blocks: with a bounded queue
    /// ([`ServiceConfig::queue_capacity`]) a full queue is reported
    /// immediately as [`ServeError::Overloaded`] instead of parking, so an
    /// async frontend can shed load or retry on its own schedule. Shape
    /// errors and shutdown are likewise rejected synchronously.
    ///
    /// The returned future is executor-agnostic; see
    /// `examples/async_serving.rs` for a hand-rolled `block_on` driving
    /// hundreds of these concurrently from one thread.
    pub fn submit_async(&self, req: GemmRequest<T>) -> Result<AsyncRequestHandle<T>, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let affinity = self.place(&req);
        // Deadline admission control before counting/tracing (see `submit`).
        self.check_deadline(&req, affinity)?;
        let tenant = req.tenant;
        let (handle, slot) =
            AsyncRequestHandle::pair(id, Arc::clone(&self.inner.stats.in_flight_async));
        let submitted = Instant::now();
        let env = Envelope {
            deadline: req.deadline.map(|d| submitted + d),
            flops: req.flops(),
            req,
            slot,
            id,
            affinity,
            submitted,
        };
        // Counted at admission (see `submit`); a rejected push rolls the
        // count back, and the handle drops here too, releasing the
        // in-flight gauge.
        self.inner.stats.admit(&self.inner.stats.submitted_async);
        self.inner.stats.tenant_admit(tenant);
        self.trace_admitted(affinity, id);
        self.inner.queue.try_push(env).map_err(|e| {
            let (reason, err) = match e {
                PushError::Full => (RejectReason::Overloaded, ServeError::Overloaded),
                PushError::Closed => (RejectReason::Closed, ServeError::Closed),
            };
            self.inner
                .stats
                .reject(&self.inner.stats.submitted_async, reason);
            self.inner.stats.tenant_unadmit(tenant);
            self.trace_rejected(affinity, id);
            err
        })?;
        Ok(handle)
    }

    /// Submits a request whose result is delivered into a completion
    /// channel ([`completion_channel`](crate::completion_channel)) instead
    /// of a per-request handle; returns the request id used to tag the
    /// completion. Like [`submit_async`](GemmService::submit_async) this
    /// never blocks — a full bounded queue is [`ServeError::Overloaded`].
    ///
    /// One channel can absorb completions from any number of submissions
    /// (across threads and even across services), which makes it the
    /// cheapest way to drain a large burst: one drain loop, zero parked
    /// threads per request.
    pub fn submit_streamed(
        &self,
        req: GemmRequest<T>,
        sink: &CompletionSink<T>,
    ) -> Result<u64, ServeError> {
        req.validate()?;
        let id = self.inner.queue.next_id();
        let affinity = self.place(&req);
        // Deadline admission control before counting/tracing (see `submit`).
        self.check_deadline(&req, affinity)?;
        let tenant = req.tenant;
        let slot = ResponseSlot::forwarding(id, sink.clone());
        sink.register();
        let submitted = Instant::now();
        let env = Envelope {
            deadline: req.deadline.map(|d| submitted + d),
            flops: req.flops(),
            req,
            slot,
            id,
            affinity,
            submitted,
        };
        // Counted at admission (see `submit`); rolled back on rejection.
        self.inner.stats.admit(&self.inner.stats.submitted_streamed);
        self.inner.stats.tenant_admit(tenant);
        self.trace_admitted(affinity, id);
        self.inner.queue.try_push(env).map_err(|e| {
            let (reason, err) = match e {
                PushError::Full => (RejectReason::Overloaded, ServeError::Overloaded),
                PushError::Closed => (RejectReason::Closed, ServeError::Closed),
            };
            self.inner
                .stats
                .reject(&self.inner.stats.submitted_streamed, reason);
            self.inner.stats.tenant_unadmit(tenant);
            self.trace_rejected(affinity, id);
            sink.unregister();
            err
        })?;
        Ok(id)
    }

    /// Convenience: submit and block for the result.
    pub fn run(&self, req: GemmRequest<T>) -> Result<GemmResponse<T>, ServeError> {
        self.submit(req)?.wait()
    }

    /// Point-in-time service metrics.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot_of(&self.inner)
    }

    /// The observability endpoint's resolved bound address, when
    /// [`ServiceConfig::obs_addr`] was set (useful with port `0`).
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs_server.as_ref().map(|s| s.addr())
    }

    /// The same Prometheus text-exposition body `GET /metrics` serves —
    /// available on every service, endpoint or not (obs-disabled services
    /// just omit the turnaround histogram and trace families).
    pub fn render_metrics(&self) -> String {
        render_metrics_of(&self.inner)
    }

    /// The most recent lifecycle trace records as plaintext (the `/trace`
    /// body); a header-only string on obs-disabled services.
    pub fn render_trace(&self, n: usize) -> String {
        match &self.inner.obs {
            Some(obs) => obs.trace.render_text(n),
            None => "# tracing disabled\n".to_string(),
        }
    }

    /// The flops cutoff the scheduler is routing by right now: the pinned
    /// constant under [`RoutingPolicy::Fixed`], the live learned estimate
    /// under [`RoutingPolicy::Adaptive`]. Callers planning one-shot calls
    /// (`Exec::Auto` is seeded by [`DEFAULT_SMALL_FLOPS_CUTOFF`]) can read
    /// this to seed their own routing with the value this machine actually
    /// converged to.
    pub fn current_cutoff(&self) -> u64 {
        self.inner.route.cutoff()
    }

    /// Feeds one timing observation straight to the routing learner, as if
    /// a region of `flops` multiply-adds on `path` had just completed in
    /// `elapsed_ns` — exactly what the dispatchers report after real
    /// regions. A no-op under [`RoutingPolicy::Fixed`].
    ///
    /// This exists to *warm* a service's completion-time model: deadline
    /// admission control admits everything until the learner has evidence,
    /// so a frontend that already knows this machine's ns/flop (a previous
    /// run, a calibration loop) can seed it instead of letting the first
    /// wave of infeasible requests through. Tests use it to pin admission
    /// decisions without wall-clock dependence.
    pub fn seed_routing(&self, path: RoutePath, flops: u64, elapsed_ns: u64) {
        self.inner.route.observe(path, flops, elapsed_ns);
    }

    /// Threads across every node's compute pool.
    pub fn nthreads(&self) -> usize {
        self.inner.nodes.iter().map(|n| n.ctx.nthreads()).sum()
    }

    /// The memory-domain layout the service sharded itself around.
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// The placement policy stamping node affinities at submit time.
    pub fn placement(&self) -> PlacementPolicy {
        self.inner.placer.policy()
    }

    /// Stops intake, drains queued requests (computing each one), joins
    /// every dispatcher, and returns the final metrics.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.close_and_join();
        self.stats()
    }

    /// Stops intake and **fails** every request still parked on a shard
    /// group with [`ServeError::Closed`] instead of computing it — their
    /// handles, futures, and completion channels all resolve (nothing
    /// hangs), they just carry the shutdown error. Only regions already
    /// *computing* finish normally: dispatchers re-check the abort flag
    /// between batched regions and between large requests, so even an
    /// already-popped sweep is failed rather than paid for. Returns the
    /// final metrics.
    pub fn shutdown_now(mut self) -> StatsSnapshot {
        self.inner.abort.store(true, Ordering::Release);
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        // Stop the endpoint first: a scrape arriving mid-teardown would
        // render from a half-drained service, and the acceptor must not
        // outlive the Weak refs' target anyway.
        if let Some(mut server) = self.obs_server.take() {
            server.shutdown();
        }
        self.inner.queue.close();
        for handle in self.dispatchers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The number of trace records `/trace` dumps per request.
const TRACE_DUMP_RECORDS: usize = 512;

/// Point-in-time metrics from the shared service state (callable from the
/// endpoint thread, which holds only a `Weak<Inner>`).
fn snapshot_of<T: Scalar>(inner: &Inner<T>) -> StatsSnapshot {
    let depths: Vec<usize> = (0..inner.topology.num_nodes())
        .map(|n| inner.queue.node_depth(n))
        .collect();
    let pool = inner.nodes.iter().fold(PoolStats::default(), |acc, n| {
        let s = n.ctx.pool().stats();
        PoolStats {
            regions: acc.regions + s.regions,
            barrier_crossings: acc.barrier_crossings + s.barrier_crossings,
        }
    });
    let mut snap = inner.stats.snapshot(
        &depths,
        pool,
        inner.route.snapshot(),
        inner.queue.steal_wakeups(),
    );
    if let Some(monitor) = &inner.monitor {
        monitor.overlay(&mut snap);
    }
    snap
}

/// One service's complete `/metrics` body.
fn render_metrics_of<T: Scalar>(inner: &Inner<T>) -> String {
    render_service_metrics(&snapshot_of(inner), inner.obs.as_ref())
}

impl<T: Scalar> Drop for GemmService<T> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

impl<T: Scalar> std::fmt::Debug for GemmService<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GemmService")
            .field("nthreads", &self.nthreads())
            .field("nodes", &self.inner.topology.num_nodes())
            .field("config", &self.inner.config)
            .field("queue_depth", &self.inner.queue.depth())
            .finish()
    }
}

/// One node's dispatcher: drains its own shard group onto its own
/// node-scoped pool, so every node computes concurrently with its peers.
fn dispatcher_loop<T: Scalar>(inner: &Inner<T>, node: usize) {
    // This node's per-pool-thread serial FT workspaces, reused across
    // every batch it ever runs (the packed-buffer amortization the batched
    // path is built around) and — because they are only ever touched by
    // this node's pool — kept on the memory domain that computes with
    // them.
    let workspace = BatchWorkspace::new(&inner.nodes[node].ctx);
    let nnodes = inner.nodes.len();
    loop {
        if inner.abort.load(Ordering::Acquire) {
            // Fast shutdown: fail everything still queued instead of
            // computing it (dispatchers race over pop_batch; each envelope
            // is popped exactly once).
            for env in inner.queue.pop_batch(usize::MAX) {
                fail_unserved(inner, env);
            }
            if !inner.queue.wait_node(node) {
                return;
            }
            continue;
        }

        // Drain this node's shard group. Taking several batches' worth per
        // sweep lets one sweep split into large/small once instead of
        // re-locking shards per region.
        let mine = inner.queue.pop_node(node, 4 * inner.config.max_batch);
        if !mine.is_empty() {
            dispatch(inner, node, &workspace, mine);
            continue;
        }

        // Dry node: steal one batch off the deepest group past the steal
        // gate (one full batch while open; anything once closed, so
        // shutdown drains stragglers). Ties break to the lowest node id,
        // and the choice reads queue depths only — never the wall clock.
        // Below the gate a dry dispatcher just parks: balanced load steals
        // nothing.
        let gate = inner.queue.steal_gate();
        let victim = (0..nnodes)
            .filter(|&n| n != node && inner.queue.node_depth(n) > gate)
            .max_by_key(|&n| (inner.queue.node_depth(n), usize::MAX - n));
        if let Some(victim) = victim {
            let stolen = inner.queue.pop_node(victim, inner.config.max_batch);
            if !stolen.is_empty() {
                if let Some(c) = inner.stats.stolen.get(node) {
                    c.fetch_add(stolen.len() as u64, Ordering::Relaxed);
                }
                dispatch(inner, node, &workspace, stolen);
            }
            continue;
        }

        if !inner.queue.wait_node(node) {
            return; // closed and fully drained
        }
    }
}

/// Fails one unserved envelope with the shutdown error (fast-shutdown
/// path): the handle/future/channel still resolves, counters still
/// balance.
fn fail_unserved<T: Scalar>(inner: &Inner<T>, env: Envelope<T>) {
    inner.stats.turnaround_ns.fetch_add(
        env.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    inner.stats.failed.fetch_add(1, Ordering::Relaxed);
    if let Some(obs) = &inner.obs {
        obs.trace.record(env.affinity, env.id, TraceEvent::Failed);
    }
    env.slot.fulfill(Err(ServeError::Closed));
}

/// Fails one envelope whose deadline expired while it sat in the queue:
/// the handle/future/channel resolves with
/// [`ServeError::DeadlineExceeded`], the request counts as failed (so
/// `completed + failed <= submitted` still holds — a shed request *was*
/// admitted) plus shed under its tenant, and no compute is spent on it.
fn shed_one<T: Scalar>(inner: &Inner<T>, env: Envelope<T>) {
    inner.stats.turnaround_ns.fetch_add(
        env.submitted.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed,
    );
    inner.stats.failed.fetch_add(1, Ordering::Relaxed);
    inner.stats.tenant_shed(env.req.tenant);
    if let Some(obs) = &inner.obs {
        obs.trace.record(env.affinity, env.id, TraceEvent::Failed);
    }
    env.slot.fulfill(Err(ServeError::DeadlineExceeded(format!(
        "expired while queued: request {} missed its deadline before dispatch",
        env.id
    ))));
}

/// Load-shedding sweep: sheds every envelope whose deadline has already
/// passed and returns the still-live remainder in order. Reads the clock
/// once — and not at all when nothing in the sweep carries a deadline, so
/// deadline-free workloads keep their uninstrumented dispatch cost.
fn shed_expired<T: Scalar>(inner: &Inner<T>, envelopes: Vec<Envelope<T>>) -> Vec<Envelope<T>> {
    if envelopes.iter().all(|env| env.deadline.is_none()) {
        return envelopes;
    }
    let now = Instant::now();
    let (live, expired): (Vec<_>, Vec<_>) = envelopes
        .into_iter()
        .partition(|env| env.deadline.is_none_or(|d| now <= d));
    for env in expired {
        shed_one(inner, env);
    }
    live
}

/// Routes one node's drained sweep by the live cutoff: small requests
/// coalesced into batched regions, large ones one-at-a-time through the
/// matrix-parallel driver — all on `node`'s worker subset.
///
/// The batched regions run *first*: a sweep can hold 100+ large requests,
/// and an early-arriving small request parked behind that loop would see
/// its latency multiplied for no benefit (the coalesced batches are the
/// cheap part of the sweep). Pinned by
/// `small_batches_complete_before_large_requests`.
fn dispatch<T: Scalar>(
    inner: &Inner<T>,
    node: usize,
    workspace: &BatchWorkspace<T>,
    envelopes: Vec<Envelope<T>>,
) {
    // Shed already-expired requests before spending any compute on the
    // sweep; re-checked per region below, since earlier regions of the same
    // sweep can out-wait a later request's deadline.
    let envelopes = shed_expired(inner, envelopes);
    let cutoff = inner.route.cutoff();
    let (small, large): (Vec<_>, Vec<_>) = envelopes
        .into_iter()
        .partition(|env| env.req.flops() <= cutoff);

    let mut small = small;
    let mut large = large;
    while !small.is_empty() {
        // Re-check the abort flag between regions: a popped sweep can hold
        // 4*max_batch requests, and shutdown_now's contract is that only
        // work already *computing* finishes — not a whole sweep.
        if inner.abort.load(Ordering::Acquire) {
            for env in small.drain(..).chain(large.drain(..)) {
                fail_unserved(inner, env);
            }
            return;
        }
        let take = small.len().min(inner.config.max_batch);
        let chunk: Vec<Envelope<T>> = small.drain(..take).collect();
        let chunk = shed_expired(inner, chunk);
        if !chunk.is_empty() {
            run_batch(inner, node, workspace, chunk);
        }
    }

    let mut large = large.into_iter();
    while let Some(env) = large.next() {
        if inner.abort.load(Ordering::Acquire) {
            fail_unserved(inner, env);
            for env in large {
                fail_unserved(inner, env);
            }
            return;
        }
        if env.deadline.is_some_and(|d| Instant::now() > d) {
            shed_one(inner, env);
            continue;
        }
        inner.stats.direct_large.fetch_add(1, Ordering::Relaxed);
        run_large(inner, node, env);
    }
}

/// The policy a request actually runs under on `node`: its own policy,
/// raised to the node's error-aware floor when the monitor is enabled.
/// Read at execution time (not submit), so a request queued before an
/// escalation still gets the protection the escalation demanded.
fn effective_policy<T: Scalar>(
    inner: &Inner<T>,
    node: usize,
    requested: crate::FtPolicy,
) -> crate::FtPolicy {
    match &inner.monitor {
        Some(monitor) => requested.at_least(monitor.floor(node)),
        None => requested,
    }
}

fn run_large<T: Scalar>(inner: &Inner<T>, node: usize, env: Envelope<T>) {
    // Counted here — at execution — rather than per popped sweep, so
    // requests a shutdown_now abort fails mid-sweep never inflate the
    // per-node "executed" counters.
    if let Some(c) = inner.stats.dispatched.get(node) {
        c.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(obs) = &inner.obs {
        obs.trace.record(
            node,
            env.id,
            TraceEvent::Dispatched {
                path: TracePath::Parallel,
            },
        );
    }
    let ctx = &inner.nodes[node].ctx;
    let Envelope {
        mut req,
        slot,
        id,
        affinity,
        submitted,
        deadline,
        flops,
    } = env;
    let tenant = req.tenant;
    let cfg = effective_policy(inner, node, req.policy).to_config(req.injector.clone());
    let started = Instant::now();
    let result: FtResult<FtReport> = match &cfg {
        Some(cfg) => par_ft_gemm(
            ctx,
            cfg,
            req.alpha,
            &req.a.as_ref(),
            &req.b.as_ref(),
            req.beta,
            &mut req.c.as_mut(),
        ),
        None => par_gemm(
            ctx,
            req.alpha,
            &req.a.as_ref(),
            &req.b.as_ref(),
            req.beta,
            &mut req.c.as_mut(),
        )
        .map(|()| FtReport::default())
        .map_err(ftgemm_abft::FtError::Core),
    };
    inner.route.observe(
        RoutePath::Parallel,
        flops,
        started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
    );
    finish(
        inner,
        slot,
        req.c,
        result,
        FinishMeta {
            submitted,
            batched: false,
            affinity_node: affinity,
            executed_node: node,
            id,
            tenant,
            deadline,
            flops,
        },
    );
}

fn run_batch<T: Scalar>(
    inner: &Inner<T>,
    node: usize,
    workspace: &BatchWorkspace<T>,
    mut envs: Vec<Envelope<T>>,
) {
    let ctx = &inner.nodes[node].ctx;
    inner.stats.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .batched_requests
        .fetch_add(envs.len() as u64, Ordering::Relaxed);
    // At-execution counting, same as run_large.
    if let Some(c) = inner.stats.dispatched.get(node) {
        c.fetch_add(envs.len() as u64, Ordering::Relaxed);
    }
    if let Some(obs) = &inner.obs {
        for env in &envs {
            obs.trace.record(
                node,
                env.id,
                TraceEvent::Dispatched {
                    path: TracePath::Batched,
                },
            );
        }
    }

    // Per-request configs must outlive the borrowed batch items.
    let cfgs: Vec<_> = envs
        .iter()
        .map(|env| {
            effective_policy(inner, node, env.req.policy).to_config(env.req.injector.clone())
        })
        .collect();
    let mut items: Vec<BatchItem<'_, T>> = envs
        .iter_mut()
        .zip(cfgs.iter())
        .map(|(env, cfg)| {
            let req = &mut env.req;
            BatchItem {
                alpha: req.alpha,
                a: req.a.as_ref(),
                b: req.b.as_ref(),
                beta: req.beta,
                c: req.c.as_mut(),
                cfg: cfg.as_ref(),
            }
        })
        .collect();
    let (results, timing) = par_batch_ft_gemm_timed(ctx, workspace, &mut items);
    drop(items);
    inner.stats.absorb_batch_timing(node, &timing);

    // Feed the routing learner: the region's wall time, attributed to each
    // item in proportion to its flops (the whole region shares one ns/flop,
    // but each item lands in its own log2(flops) bucket).
    let total_flops: u64 = envs.iter().map(|env| env.req.flops()).sum();
    if total_flops > 0 {
        let wall_ns = timing.wall.as_nanos().min(u64::MAX as u128) as f64;
        for env in &envs {
            let flops = env.req.flops();
            let share_ns = wall_ns * flops as f64 / total_flops as f64;
            inner
                .route
                .observe(RoutePath::Batched, flops, share_ns as u64);
        }
    }

    for (env, result) in envs.into_iter().zip(results) {
        let meta = FinishMeta {
            submitted: env.submitted,
            batched: true,
            affinity_node: env.affinity,
            executed_node: node,
            id: env.id,
            tenant: env.req.tenant,
            deadline: env.deadline,
            flops: env.flops,
        };
        finish(inner, env.slot, env.req.c, result, meta);
    }
}

/// Per-request identity and QoS accounting carried from the envelope into
/// [`finish`].
struct FinishMeta {
    submitted: Instant,
    batched: bool,
    affinity_node: usize,
    executed_node: usize,
    id: u64,
    tenant: TenantId,
    /// Absolute deadline, for the met/missed tally at completion.
    deadline: Option<Instant>,
    /// Planned flops, credited to the tenant's `served_flops` on success.
    flops: u64,
}

fn finish<T: Scalar>(
    inner: &Inner<T>,
    slot: Arc<crate::handle::ResponseSlot<T>>,
    c: ftgemm_core::Matrix<T>,
    result: FtResult<FtReport>,
    meta: FinishMeta,
) {
    let FinishMeta {
        submitted,
        batched,
        affinity_node,
        executed_node,
        id,
        tenant,
        deadline,
        flops,
    } = meta;
    let finished = Instant::now();
    let turnaround_ns = finished
        .saturating_duration_since(submitted)
        .as_nanos()
        .min(u64::MAX as u128) as u64;
    inner
        .stats
        .turnaround_ns
        .fetch_add(turnaround_ns, Ordering::Relaxed);
    if let Some(obs) = &inner.obs {
        obs.turnaround.record(turnaround_ns);
        obs.trace.record(executed_node, id, TraceEvent::Computed);
        match &result {
            Ok(report) => {
                if report.verifications > 0 {
                    obs.trace.record(
                        executed_node,
                        id,
                        TraceEvent::Verified {
                            verifications: report.verifications as u64,
                        },
                    );
                }
                if report.corrected > 0 {
                    obs.trace.record(
                        executed_node,
                        id,
                        TraceEvent::Corrected {
                            corrected: report.corrected as u64,
                        },
                    );
                }
                obs.trace.record(executed_node, id, TraceEvent::Completed);
            }
            Err(_) => obs.trace.record(executed_node, id, TraceEvent::Failed),
        }
    }
    match result {
        Ok(report) => {
            inner.stats.completed.fetch_add(1, Ordering::Relaxed);
            inner
                .stats
                .tenant_complete(tenant, flops, deadline.map(|d| finished <= d));
            inner.stats.absorb_report(&report);
            // One rate observation per completed request, attributed to
            // the node that *executed* it (stolen requests are evidence
            // about the stealing node's hardware).
            if let Some(monitor) = &inner.monitor {
                monitor.observe(executed_node, report.detected as u64, flops);
            }
            slot.fulfill(Ok(GemmResponse {
                c,
                report,
                batched,
                affinity_node,
                executed_node,
            }));
        }
        Err(e) => {
            inner.stats.failed.fetch_add(1, Ordering::Relaxed);
            slot.fulfill(Err(ServeError::Ft(e)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteState;
    use crate::stream::completion_channel;
    use ftgemm_core::Matrix;

    fn test_inner(config: ServiceConfig) -> Inner<f64> {
        let threads = config.threads.max(1);
        Inner {
            queue: ShardedQueue::new(1, 1, 0, config.max_batch, config.tenants.clone()),
            stats: ServiceStats::new(&[threads]),
            route: RouteState::new(config.routing),
            placer: Placer::new(config.placement),
            topology: Topology::single(threads),
            nodes: vec![NodeRuntime {
                ctx: ParGemmContext::<f64>::for_node_threads(0, threads),
            }],
            abort: AtomicBool::new(false),
            obs: None,
            monitor: config
                .fault_policy
                .clone()
                .map(|cfg| FaultPolicyMonitor::new(cfg, 1)),
            config,
        }
    }

    /// Head-of-line regression: a drained sweep must run its coalesced
    /// small batches before the large loop. Drives `dispatch` directly (no
    /// dispatcher thread) so the sweep's composition — four large requests
    /// that arrived *before* one small one — is exact and the completion
    /// order deterministic.
    #[test]
    fn small_batches_complete_before_large_requests() {
        let config = ServiceConfig {
            threads: 2,
            max_batch: 4,
            routing: RoutingPolicy::Fixed(2 * 32 * 32 * 32),
            ..ServiceConfig::default()
        };
        let inner = test_inner(config);
        let workspace = BatchWorkspace::new(&inner.nodes[0].ctx);
        let (sink, mut completions) = completion_channel::<f64>();

        let mk = |id: u64, dim: usize| {
            let req = GemmRequest::new(
                Matrix::<f64>::random(dim, dim, id),
                Matrix::<f64>::random(dim, dim, id + 100),
            );
            sink.register();
            let flops = req.flops();
            Envelope {
                req,
                slot: ResponseSlot::forwarding(id, sink.clone()),
                id,
                affinity: 0,
                submitted: Instant::now(),
                deadline: None,
                flops,
            }
        };
        // Ids 0..4: large (64^3 > the pinned cutoff); id 4: small (16^3).
        let mut envelopes: Vec<_> = (0..4u64).map(|id| mk(id, 64)).collect();
        envelopes.push(mk(4, 16));
        dispatch(&inner, 0, &workspace, envelopes);
        drop(sink);

        let mut order = Vec::new();
        while let Some(c) = completions.recv() {
            c.result.unwrap();
            order.push(c.id);
        }
        assert_eq!(order.len(), 5);
        assert_eq!(
            order[0], 4,
            "small request waited behind the large loop: {order:?}"
        );
        assert_eq!(inner.stats.direct_large.load(Ordering::Relaxed), 4);
        assert_eq!(inner.stats.batched_requests.load(Ordering::Relaxed), 1);
        assert_eq!(inner.stats.dispatched[0].load(Ordering::Relaxed), 5);
    }

    /// The service shards itself around a forced synthetic topology: one
    /// runtime per node, the configured thread total spread with a floor
    /// of one per node, and per-node stats sized to match.
    #[test]
    fn synthetic_topology_shapes_the_service() {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 0, // one per synthetic core
            topology: Some(Topology::synthetic(3, 2)),
            placement: PlacementPolicy::RoundRobin,
            ..ServiceConfig::default()
        });
        assert_eq!(service.topology().num_nodes(), 3);
        assert_eq!(service.nthreads(), 6);
        assert_eq!(service.placement(), PlacementPolicy::RoundRobin);
        let snap = service.stats();
        assert_eq!(snap.per_node.len(), 3);
        assert!(snap.per_node.iter().all(|n| n.threads == 2));
        assert_eq!(snap.batch_busy_per_thread.len(), 6);
    }

    /// An explicit thread budget smaller than the node count still gives
    /// every node a worker (it must be able to run its own shard group).
    #[test]
    fn every_node_keeps_at_least_one_thread() {
        let service = GemmService::<f64>::new(ServiceConfig {
            threads: 2,
            topology: Some(Topology::synthetic(4, 1)),
            ..ServiceConfig::default()
        });
        let snap = service.stats();
        assert_eq!(snap.per_node.len(), 4);
        assert!(snap.per_node.iter().all(|n| n.threads >= 1));
        assert!(service.nthreads() >= 4);
    }
}
