//! Sharded MPMC submission queue with optional bounded capacity.
//!
//! Submitters spread envelopes over `shards` independent locks
//! (round-robin), so concurrent `submit` calls from many frontend threads
//! do not serialize on one mutex. The scheduler drains all shards; a global
//! depth counter plus one condvar provide blocking-when-idle semantics.
//!
//! Backpressure: when constructed with a capacity, the queue exposes both
//! park-on-full ([`push`](ShardedQueue::push), for synchronous submitters
//! that may block) and fail-fast ([`try_push`](ShardedQueue::try_push), for
//! async submitters that must never block — a full queue comes back as
//! [`PushError::Full`] so the frontend can shed or retry). The capacity is a
//! *soft* bound: concurrent producers that pass the admission check together
//! may overshoot it by at most the number of in-flight `push` calls.

use crate::handle::ResponseSlot;
use crate::request::GemmRequest;
use ftgemm_core::Scalar;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A queued request with its response slot and submission metadata.
pub(crate) struct Envelope<T: Scalar> {
    pub req: GemmRequest<T>,
    pub slot: Arc<ResponseSlot<T>>,
    /// Submission-order id; mirrors the handle's id for tracing/tests.
    #[allow(dead_code)]
    pub id: u64,
    pub submitted: Instant,
}

/// Why a push was rejected (the envelope is dropped — its response slot
/// never fulfills, and the submit path reports the error synchronously).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue no longer accepts work (service shutting down).
    Closed,
    /// The queue is at capacity (only from [`ShardedQueue::try_push`]).
    Full,
}

pub(crate) struct ShardedQueue<T: Scalar> {
    shards: Vec<Mutex<VecDeque<Envelope<T>>>>,
    /// Round-robin cursor for shard selection on push.
    rr: AtomicUsize,
    /// Total queued envelopes across shards.
    depth: AtomicUsize,
    /// Soft depth bound (`usize::MAX` = unbounded).
    capacity: usize,
    /// Monotonic request id source.
    next_id: AtomicU64,
    closed: AtomicBool,
    /// Wakeup for the (single) scheduler thread.
    wake_lock: Mutex<()>,
    wake: Condvar,
    /// Wakeup for producers parked on a full queue.
    space_lock: Mutex<()>,
    space: Condvar,
}

impl<T: Scalar> ShardedQueue<T> {
    /// `capacity == 0` means unbounded.
    pub(crate) fn new(shards: usize, capacity: usize) -> Self {
        assert!(shards >= 1, "queue needs at least one shard");
        ShardedQueue {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            rr: AtomicUsize::new(0),
            depth: AtomicUsize::new(0),
            capacity: if capacity == 0 { usize::MAX } else { capacity },
            next_id: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            wake_lock: Mutex::new(()),
            wake: Condvar::new(),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
        }
    }

    /// Fresh request id (submission order across all shards).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Inserts the envelope into a shard and wakes the scheduler. Callers
    /// have already passed the closed/capacity admission checks.
    fn insert(&self, env: Envelope<T>) {
        let shard = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let prev_depth = {
            // Increment depth while the shard lock is held: pop_batch
            // decrements under the same lock after removing the envelope, so
            // depth can never transiently underflow.
            let mut q = self.shards[shard].lock();
            q.push_back(env);
            self.depth.fetch_add(1, Ordering::Release)
        };
        // Wake the scheduler only on the empty→non-empty transition —
        // otherwise every submit would serialize on the one wake_lock and
        // defeat the shard split. This is lost-wakeup-free: the scheduler
        // only sleeps after observing depth == 0 *under* wake_lock, and the
        // transitioning producer takes wake_lock before notifying, so either
        // the scheduler sees the new depth before sleeping or the notify
        // reaches its wait.
        if prev_depth == 0 {
            let _g = self.wake_lock.lock();
            self.wake.notify_all();
        }
    }

    /// Enqueues an envelope, parking the caller while the queue is at
    /// capacity (synchronous submit surface). Fails only when closed.
    pub(crate) fn push(&self, env: Envelope<T>) -> Result<(), PushError> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(PushError::Closed);
            }
            if self.depth.load(Ordering::Acquire) < self.capacity {
                self.insert(env);
                return Ok(());
            }
            // Park until the scheduler drains something. Re-check the
            // predicate under space_lock: pop_batch notifies under the same
            // lock after decrementing depth, so the wait cannot miss it.
            let mut guard = self.space_lock.lock();
            if self.depth.load(Ordering::Acquire) >= self.capacity
                && !self.closed.load(Ordering::Acquire)
            {
                self.space.wait(&mut guard);
            }
        }
    }

    /// Non-blocking enqueue for async submitters: a full queue comes back
    /// immediately as [`PushError::Full`] instead of parking the caller.
    pub(crate) fn try_push(&self, env: Envelope<T>) -> Result<(), PushError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        if self.depth.load(Ordering::Acquire) >= self.capacity {
            return Err(PushError::Full);
        }
        self.insert(env);
        Ok(())
    }

    /// Pops up to `max` envelopes, sweeping shards round-robin.
    pub(crate) fn pop_batch(&self, max: usize) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        'sweep: loop {
            let mut drained_any = false;
            for shard in &self.shards {
                let mut q = shard.lock();
                while let Some(env) = q.pop_front() {
                    self.depth.fetch_sub(1, Ordering::Release);
                    out.push(env);
                    drained_any = true;
                    if out.len() == max {
                        break 'sweep;
                    }
                }
            }
            if !drained_any {
                break;
            }
        }
        // Space opened up: release producers parked on a full queue.
        if self.capacity != usize::MAX && !out.is_empty() {
            let _g = self.space_lock.lock();
            self.space.notify_all();
        }
        out
    }

    /// Current queue depth (approximate under concurrency).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Blocks until the queue is non-empty or closed. Returns `false` when
    /// the queue is closed *and* empty (the scheduler should exit).
    pub(crate) fn wait_nonempty(&self) -> bool {
        let mut guard = self.wake_lock.lock();
        loop {
            if self.depth() > 0 {
                return true;
            }
            if self.closed.load(Ordering::Acquire) {
                return false;
            }
            self.wake.wait(&mut guard);
        }
    }

    /// Marks the queue closed and wakes the scheduler plus any parked
    /// producers. Envelopes already queued remain poppable so shutdown can
    /// drain them.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        {
            let _g = self.wake_lock.lock();
            self.wake.notify_all();
        }
        let _g = self.space_lock.lock();
        self.space.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::RequestHandle;
    use ftgemm_core::Matrix;

    fn env(q: &ShardedQueue<f64>) -> Envelope<f64> {
        let id = q.next_id();
        let (_h, slot) = RequestHandle::pair(id);
        Envelope {
            req: GemmRequest::new(Matrix::zeros(2, 2), Matrix::zeros(2, 2)),
            slot,
            id,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn push_pop_preserves_count_and_order_ids() {
        let q = ShardedQueue::<f64>::new(3, 0);
        for _ in 0..10 {
            q.push(env(&q)).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.depth(), 10);
        let batch = q.pop_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.depth(), 6);
        let rest = q.pop_batch(usize::MAX);
        assert_eq!(rest.len(), 6);
        assert_eq!(q.depth(), 0);
        let mut ids: Vec<u64> = batch.iter().chain(rest.iter()).map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = ShardedQueue::<f64>::new(2, 0);
        q.push(env(&q)).map_err(|_| ()).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(q.push(env(&q)), Err(PushError::Closed)));
        assert!(matches!(q.try_push(env(&q)), Err(PushError::Closed)));
        assert_eq!(q.pop_batch(8).len(), 1);
        assert!(!q.wait_nonempty());
    }

    #[test]
    fn wait_wakes_on_push() {
        let q = Arc::new(ShardedQueue::<f64>::new(2, 0));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_nonempty());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(env(&q)).map_err(|_| ()).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_wakes_on_close() {
        let q = Arc::new(ShardedQueue::<f64>::new(1, 0));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_nonempty());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!waiter.join().unwrap());
    }

    #[test]
    fn try_push_fails_fast_at_capacity() {
        let q = ShardedQueue::<f64>::new(2, 2);
        q.try_push(env(&q)).map_err(|_| ()).unwrap();
        q.try_push(env(&q)).map_err(|_| ()).unwrap();
        assert!(matches!(q.try_push(env(&q)), Err(PushError::Full)));
        // Draining reopens admission.
        assert_eq!(q.pop_batch(1).len(), 1);
        assert!(q.try_push(env(&q)).is_ok());
    }

    #[test]
    fn blocking_push_parks_until_drained() {
        let q = Arc::new(ShardedQueue::<f64>::new(1, 1));
        q.push(env(&q)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let e = env(&q2);
            q2.push(e).map_err(|_| ()).unwrap(); // parks: queue is full
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "producer still parked");
        assert_eq!(q.pop_batch(1).len(), 1); // frees a slot, wakes producer
        producer.join().unwrap();
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn close_unparks_blocked_producer() {
        let q = Arc::new(ShardedQueue::<f64>::new(1, 1));
        q.push(env(&q)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let e = env(&q2);
            matches!(q2.push(e), Err(PushError::Closed))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(producer.join().unwrap());
    }
}
