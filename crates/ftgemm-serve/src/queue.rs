//! Sharded MPMC submission queue: one shard group per NUMA node, one
//! dispatcher wakeup per group, optional bounded capacity.
//!
//! The queue is organized as `nodes x shards_per_node` independent locks.
//! A request's placement policy stamps a node affinity at submit time; the
//! push lands in that node's **shard group**, round-robining over the
//! group's shards so concurrent submitters to one node still do not
//! serialize on a single mutex. Each node's dispatcher thread drains its
//! own group ([`pop_node`](ShardedQueue::pop_node)) and parks on its own
//! condvar ([`wait_node`](ShardedQueue::wait_node)) — pushes wake only the
//! affinity node's dispatcher, so idle nodes stay parked.
//!
//! **Steal wakeups.** A push that lifts a group's depth *past the steal
//! threshold* wakes every dispatcher: dry nodes then find the backlogged
//! group through [`steal_gate`](ShardedQueue::steal_gate) /
//! [`node_depth`](ShardedQueue::node_depth) and migrate a batch. Below the
//! threshold no cross-node wakeup ever fires, which is what makes
//! "balanced load steals nothing" a hard invariant rather than a
//! heuristic. After [`close`](ShardedQueue::close) the gate drops to zero
//! so any dispatcher can drain any group's remainder.
//!
//! Backpressure: when constructed with a capacity, the queue exposes both
//! park-on-full ([`push`](ShardedQueue::push), for synchronous submitters
//! that may block) and fail-fast ([`try_push`](ShardedQueue::try_push), for
//! async submitters that must never block — a full queue comes back as
//! [`PushError::Full`] so the frontend can shed or retry). The capacity is
//! a *global, soft* bound: concurrent producers that pass the admission
//! check together may overshoot it by at most the number of in-flight
//! `push` calls.
//!
//! **QoS ordering.** Each group is two-stage: the lock-striped shards above
//! are only the *inbox* (uncontended submit path); when a dispatcher pops,
//! the group first drains its inbox into a per-group
//! [`DrrScheduler`](crate::qos::DrrScheduler) and then pops in
//! flops-weighted deficit-round-robin order across tenants
//! (priority-then-EDF within each tenant's lane). FIFO tie-breaks use the
//! submission id, so staging order across shards cannot reorder
//! same-deadline requests. Every group also integrates its backlog in
//! *flops* ([`node_pending_flops`](ShardedQueue::node_pending_flops)) —
//! the load measure flops-aware placement and deadline admission control
//! consume.

// analyze::policy(publish: closed, depth, pending_flops)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): these
// cells publish queue state across shards without the shard locks —
// `closed` gates submission against shutdown, `depth`/`pending_flops`
// feed placement and steal decisions. Release on write, Acquire on read,
// so a reader acting on a depth also sees the envelope that produced it.
// `next_id`/`rr`/`steal_wakeups` are plain Relaxed counters.

use crate::handle::ResponseSlot;
use crate::qos::{DrrScheduler, TenantTable, NO_DEADLINE};
use crate::request::GemmRequest;
use ftgemm_core::Scalar;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A queued request with its response slot and submission metadata.
pub(crate) struct Envelope<T: Scalar> {
    pub req: GemmRequest<T>,
    pub slot: Arc<ResponseSlot<T>>,
    /// Submission-order id; mirrors the handle's id for tracing/tests.
    /// Doubles as the scheduler's FIFO tie-break key.
    pub id: u64,
    /// Node affinity the placement policy stamped at submit time (selects
    /// the shard group; travels into the response for steal accounting).
    pub affinity: usize,
    pub submitted: Instant,
    /// Absolute deadline (`submitted + req.deadline`), if the request set
    /// one. Orders EDF within the priority class; the dispatcher sheds the
    /// request once this passes.
    pub deadline: Option<Instant>,
    /// Planned flops, cached at submit: the DRR cost and the unit of the
    /// group's backlog integral.
    pub flops: u64,
}

/// Why a push was rejected (the envelope is dropped — its response slot
/// never fulfills, and the submit path reports the error synchronously).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushError {
    /// The queue no longer accepts work (service shutting down).
    Closed,
    /// The queue is at capacity (only from [`ShardedQueue::try_push`]).
    Full,
}

/// One node's independent set of submission shards plus its dispatcher's
/// parking spot.
struct NodeGroup<T: Scalar> {
    /// Inbox stage: lock-striped FIFO shards absorbing concurrent pushes.
    shards: Vec<Mutex<VecDeque<Envelope<T>>>>,
    /// Round-robin cursor for shard selection within the group.
    rr: AtomicUsize,
    /// Scheduling stage: the inbox drains into this DRR/EDF scheduler at
    /// pop time, so dispatch order reflects tenant weights and deadlines
    /// over the whole group backlog.
    sched: Mutex<DrrScheduler<Envelope<T>>>,
    /// Queued envelopes in this group, inbox + scheduler (read by the
    /// steal heuristic and the dispatcher wait predicate).
    depth: AtomicUsize,
    /// Queued *flops* in this group, inbox + scheduler (read by
    /// `LeastLoaded` placement and deadline admission control).
    pending_flops: AtomicU64,
    /// Wakeup for this node's dispatcher thread.
    wake_lock: Mutex<()>,
    wake: Condvar,
}

pub(crate) struct ShardedQueue<T: Scalar> {
    groups: Vec<NodeGroup<T>>,
    /// Total queued envelopes across every group.
    depth: AtomicUsize,
    /// Soft global depth bound (`usize::MAX` = unbounded).
    capacity: usize,
    /// A group deeper than this is steal-eligible (and crossing it wakes
    /// every dispatcher).
    steal_threshold: usize,
    /// Monotonic request id source.
    next_id: AtomicU64,
    /// Cross-node wakeups fired by pushes that lifted a group past the
    /// steal threshold (observability; `0` under balanced load).
    steal_wakeups: AtomicU64,
    closed: AtomicBool,
    /// Wakeup for producers parked on a full queue.
    space_lock: Mutex<()>,
    space: Condvar,
    /// Reference instant for converting absolute deadlines into the
    /// scheduler's monotone u64 key space.
    epoch: Instant,
}

impl<T: Scalar> ShardedQueue<T> {
    /// `nodes` shard groups of `shards_per_node` shards each;
    /// `capacity == 0` means unbounded. Groups deeper than
    /// `steal_threshold` become steal-eligible. `tenants` configures the
    /// DRR weights every group schedules by.
    pub(crate) fn new(
        nodes: usize,
        shards_per_node: usize,
        capacity: usize,
        steal_threshold: usize,
        tenants: TenantTable,
    ) -> Self {
        assert!(nodes >= 1, "queue needs at least one node group");
        assert!(shards_per_node >= 1, "groups need at least one shard");
        ShardedQueue {
            groups: (0..nodes)
                .map(|_| NodeGroup {
                    shards: (0..shards_per_node)
                        .map(|_| Mutex::new(VecDeque::new()))
                        .collect(),
                    rr: AtomicUsize::new(0),
                    sched: Mutex::new(DrrScheduler::new(tenants.clone())),
                    depth: AtomicUsize::new(0),
                    pending_flops: AtomicU64::new(0),
                    wake_lock: Mutex::new(()),
                    wake: Condvar::new(),
                })
                .collect(),
            depth: AtomicUsize::new(0),
            capacity: if capacity == 0 { usize::MAX } else { capacity },
            steal_threshold: steal_threshold.max(1),
            next_id: AtomicU64::new(0),
            steal_wakeups: AtomicU64::new(0),
            closed: AtomicBool::new(false),
            space_lock: Mutex::new(()),
            space: Condvar::new(),
            epoch: Instant::now(),
        }
    }

    /// Fresh request id (submission order across all groups).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The live steal gate: a group must be deeper than this before a dry
    /// dispatcher may migrate its work. Zero once the queue is closed, so
    /// shutdown can drain every group through any dispatcher.
    pub(crate) fn steal_gate(&self) -> usize {
        if self.closed.load(Ordering::Acquire) {
            0
        } else {
            self.steal_threshold
        }
    }

    /// Inserts the envelope into its affinity node's group and wakes the
    /// dispatchers that could serve it. Callers have already passed the
    /// closed/capacity admission checks.
    fn insert(&self, env: Envelope<T>) {
        let node = env.affinity % self.groups.len();
        let group = &self.groups[node];
        let shard = group.rr.fetch_add(1, Ordering::Relaxed) % group.shards.len();
        let prev_group_depth = {
            // Increment depths while the shard lock is held: pop paths only
            // decrement after taking possession of an envelope, so neither
            // counter can transiently underflow.
            let mut q = group.shards[shard].lock();
            group.pending_flops.fetch_add(env.flops, Ordering::Release);
            q.push_back(env);
            self.depth.fetch_add(1, Ordering::Release);
            group.depth.fetch_add(1, Ordering::Release)
        };
        // Wake this node's dispatcher on the group's empty→non-empty
        // transition. Lost-wakeup-free: the dispatcher only sleeps after
        // observing its group depth == 0 *under* its wake_lock, and the
        // transitioning producer takes that lock before notifying.
        if prev_group_depth == 0 {
            let _g = group.wake_lock.lock();
            group.wake.notify_all();
        }
        // Crossing the steal threshold makes this group steal-eligible:
        // wake everyone so dry dispatchers can migrate batches. The same
        // lock discipline applies per dispatcher (a dry dispatcher checks
        // the gate predicate under its own wake_lock before sleeping).
        if prev_group_depth + 1 == self.steal_threshold + 1 {
            self.steal_wakeups.fetch_add(1, Ordering::Relaxed);
            self.notify_all_groups();
        }
    }

    /// Cross-node wakeups fired so far (see
    /// [`StatsSnapshot::steal_wakeups`](crate::StatsSnapshot)).
    pub(crate) fn steal_wakeups(&self) -> u64 {
        self.steal_wakeups.load(Ordering::Relaxed)
    }

    fn notify_all_groups(&self) {
        for group in &self.groups {
            let _g = group.wake_lock.lock();
            group.wake.notify_all();
        }
    }

    /// Enqueues an envelope, parking the caller while the queue is at
    /// capacity (synchronous submit surface). Fails only when closed.
    pub(crate) fn push(&self, env: Envelope<T>) -> Result<(), PushError> {
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(PushError::Closed);
            }
            if self.depth.load(Ordering::Acquire) < self.capacity {
                self.insert(env);
                return Ok(());
            }
            // Park until a dispatcher drains something. Re-check the
            // predicate under space_lock: the pop paths notify under the
            // same lock after decrementing depth, so the wait cannot miss
            // it.
            let mut guard = self.space_lock.lock();
            if self.depth.load(Ordering::Acquire) >= self.capacity
                && !self.closed.load(Ordering::Acquire)
            {
                self.space.wait(&mut guard);
            }
        }
    }

    /// Non-blocking enqueue for async submitters: a full queue comes back
    /// immediately as [`PushError::Full`] instead of parking the caller.
    pub(crate) fn try_push(&self, env: Envelope<T>) -> Result<(), PushError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(PushError::Closed);
        }
        if self.depth.load(Ordering::Acquire) >= self.capacity {
            return Err(PushError::Full);
        }
        self.insert(env);
        Ok(())
    }

    /// Pops up to `max` envelopes from one node's group in QoS order:
    /// drains the inbox shards into the group's DRR/EDF scheduler, then
    /// pops per tenant weight / priority class / deadline.
    pub(crate) fn pop_node(&self, node: usize, max: usize) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let group = &self.groups[node];
        {
            let mut sched = group.sched.lock();
            // Stage 1: move the whole inbox into the scheduler so the pop
            // below chooses over the full group backlog. Tie-breaking by
            // submission id means the shard sweep order cannot reorder
            // same-class same-deadline requests. (Lock order sched → shard;
            // the push path takes shard locks only, so no cycle.)
            for shard in &group.shards {
                let mut q = shard.lock();
                while let Some(env) = q.pop_front() {
                    let deadline_ns = env
                        .deadline
                        .map(|d| d.saturating_duration_since(self.epoch).as_nanos() as u64)
                        .unwrap_or(NO_DEADLINE);
                    let (tenant, class, cost, seq) =
                        (env.req.tenant, env.req.priority, env.flops, env.id);
                    sched.push(tenant, class, deadline_ns, cost, seq, env);
                }
            }
            // Stage 2: pop in DRR order. Depth/flops counters cover both
            // stages, so they only drop here, when an envelope leaves the
            // group for good.
            while out.len() < max {
                match sched.pop() {
                    Some(s) => {
                        group.depth.fetch_sub(1, Ordering::Release);
                        self.depth.fetch_sub(1, Ordering::Release);
                        group
                            .pending_flops
                            .fetch_sub(s.cost_flops, Ordering::Release);
                        out.push(s.payload);
                    }
                    None => break,
                }
            }
        }
        self.after_pop(&out);
        out
    }

    /// Pops up to `max` envelopes sweeping *all* node groups (shutdown
    /// drain); one [`pop_node`](Self::pop_node) per group keeps the
    /// locking/accounting logic in a single place.
    pub(crate) fn pop_batch(&self, max: usize) -> Vec<Envelope<T>> {
        let mut out = Vec::new();
        for node in 0..self.groups.len() {
            if out.len() >= max {
                break;
            }
            out.extend(self.pop_node(node, max - out.len()));
        }
        out
    }

    /// Post-pop bookkeeping: release producers parked on a full queue.
    /// (No dispatcher wakeup is needed here: a dispatcher never parks on a
    /// closed queue — [`wait_node`](Self::wait_node) returns immediately in
    /// drain mode — and on an open queue only pushes change the wait
    /// predicate.)
    fn after_pop(&self, popped: &[Envelope<T>]) {
        if popped.is_empty() {
            return;
        }
        if self.capacity != usize::MAX {
            let _g = self.space_lock.lock();
            self.space.notify_all();
        }
    }

    /// Current total queue depth (approximate under concurrency).
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Current depth of one node's shard group (approximate under
    /// concurrency).
    pub(crate) fn node_depth(&self, node: usize) -> usize {
        self.groups[node].depth.load(Ordering::Acquire)
    }

    /// Flops-integrated backlog of one node's group (inbox + scheduler;
    /// approximate under concurrency). One huge queued GEMM weighs what it
    /// costs, not "1" — this is the load measure flops-aware placement and
    /// deadline admission control read.
    pub(crate) fn node_pending_flops(&self, node: usize) -> u64 {
        self.groups[node].pending_flops.load(Ordering::Acquire)
    }

    /// Parks `node`'s dispatcher until there is something for it to do:
    /// its own group is non-empty, some other group is past the steal
    /// gate, or — once closed — any group still holds a remainder to
    /// drain. Returns `false` exactly when the queue is closed *and*
    /// globally empty (the dispatcher should exit).
    pub(crate) fn wait_node(&self, node: usize) -> bool {
        let group = &self.groups[node];
        let mut guard = group.wake_lock.lock();
        loop {
            if group.depth.load(Ordering::Acquire) > 0 {
                return true;
            }
            let gate = self.steal_gate();
            if (0..self.groups.len())
                .any(|j| j != node && self.groups[j].depth.load(Ordering::Acquire) > gate)
            {
                return true;
            }
            if self.closed.load(Ordering::Acquire) {
                // Closed: anything left anywhere is drainable by anyone
                // (gate is 0); nothing left means exit.
                return self.depth.load(Ordering::Acquire) > 0;
            }
            group.wake.wait(&mut guard);
        }
    }

    /// Marks the queue closed and wakes every dispatcher plus any parked
    /// producers. Envelopes already queued remain poppable so shutdown can
    /// drain them.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.notify_all_groups();
        let _g = self.space_lock.lock();
        self.space.notify_all();
    }

    #[cfg(test)]
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::RequestHandle;
    use crate::qos::Priority;
    use ftgemm_core::Matrix;

    fn envelope_for(
        q: &ShardedQueue<f64>,
        affinity: usize,
        req: GemmRequest<f64>,
    ) -> Envelope<f64> {
        let id = q.next_id();
        let (_h, slot) = RequestHandle::pair(id);
        let submitted = Instant::now();
        let deadline = req.deadline.map(|d| submitted + d);
        let flops = req.flops();
        Envelope {
            req,
            slot,
            id,
            affinity,
            submitted,
            deadline,
            flops,
        }
    }

    fn env_on(q: &ShardedQueue<f64>, affinity: usize) -> Envelope<f64> {
        envelope_for(
            q,
            affinity,
            GemmRequest::new(Matrix::zeros(2, 2), Matrix::zeros(2, 2)),
        )
    }

    fn env(q: &ShardedQueue<f64>) -> Envelope<f64> {
        env_on(q, 0)
    }

    fn queue(nodes: usize, shards: usize, capacity: usize, gate: usize) -> ShardedQueue<f64> {
        ShardedQueue::new(nodes, shards, capacity, gate, TenantTable::default())
    }

    #[test]
    fn push_pop_preserves_count_and_order_ids() {
        let q = queue(1, 3, 0, 8);
        for _ in 0..10 {
            q.push(env(&q)).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.depth(), 10);
        let batch = q.pop_batch(4);
        assert_eq!(batch.len(), 4);
        assert_eq!(q.depth(), 6);
        let rest = q.pop_batch(usize::MAX);
        assert_eq!(rest.len(), 6);
        assert_eq!(q.depth(), 0);
        let mut ids: Vec<u64> = batch.iter().chain(rest.iter()).map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn affinity_routes_to_node_groups() {
        let q = queue(3, 2, 0, 8);
        for affinity in [0usize, 1, 1, 2, 2, 2] {
            q.push(env_on(&q, affinity)).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.node_depth(0), 1);
        assert_eq!(q.node_depth(1), 2);
        assert_eq!(q.node_depth(2), 3);
        assert_eq!(q.depth(), 6);

        // pop_node only touches its own group.
        let node1 = q.pop_node(1, usize::MAX);
        assert_eq!(node1.len(), 2);
        assert!(node1.iter().all(|e| e.affinity == 1));
        assert_eq!(q.node_depth(1), 0);
        assert_eq!(q.node_depth(2), 3);
        assert_eq!(q.depth(), 4);

        // pop_batch sweeps the remaining groups.
        assert_eq!(q.pop_batch(usize::MAX).len(), 4);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn out_of_range_affinity_wraps() {
        let q = queue(2, 1, 0, 8);
        q.push(env_on(&q, 5)).map_err(|_| ()).unwrap(); // 5 % 2 == 1
        assert_eq!(q.node_depth(1), 1);
        assert_eq!(q.pop_node(1, 8).len(), 1);
    }

    #[test]
    fn close_rejects_new_work_but_drains_old() {
        let q = queue(2, 2, 0, 8);
        q.push(env_on(&q, 1)).map_err(|_| ()).unwrap();
        q.close();
        assert!(q.is_closed());
        assert!(matches!(q.push(env(&q)), Err(PushError::Closed)));
        assert!(matches!(q.try_push(env(&q)), Err(PushError::Closed)));
        // Closed: the remainder is visible to every dispatcher (gate 0).
        assert!(q.wait_node(0), "node 0 must see node 1's remainder");
        assert_eq!(q.steal_gate(), 0);
        assert_eq!(q.pop_batch(8).len(), 1);
        assert!(!q.wait_node(0));
        assert!(!q.wait_node(1));
    }

    #[test]
    fn wait_node_wakes_on_own_group_push() {
        let q = Arc::new(queue(2, 2, 0, 8));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_node(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(env_on(&q, 1)).map_err(|_| ()).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn below_threshold_pushes_do_not_wake_other_dispatchers() {
        let q = Arc::new(queue(2, 1, 0, 4));
        let q2 = Arc::clone(&q);
        // Dispatcher 1 parks; its group stays empty.
        let waiter = std::thread::spawn(move || q2.wait_node(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        // Group 0 stays at the threshold: no cross-wake.
        for _ in 0..4 {
            q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "woke without a steal-eligible group");
        // The crossing push wakes it.
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        assert!(waiter.join().unwrap());
        assert!(q.node_depth(0) > q.steal_gate(), "group 0 steal-eligible");
    }

    #[test]
    fn steal_wakeups_counted_only_at_threshold_crossings() {
        let q = queue(2, 1, 0, 3);
        for _ in 0..3 {
            q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.steal_wakeups(), 0, "at the threshold, not past it");
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap(); // crosses
        assert_eq!(q.steal_wakeups(), 1);
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap(); // already past: no re-fire
        assert_eq!(q.steal_wakeups(), 1);
        // Draining and re-crossing fires again.
        assert_eq!(q.pop_node(0, usize::MAX).len(), 5);
        for _ in 0..4 {
            q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        }
        assert_eq!(q.steal_wakeups(), 2);
    }

    #[test]
    fn wait_wakes_on_close() {
        let q = Arc::new(queue(1, 1, 0, 8));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.wait_node(0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(!waiter.join().unwrap());
    }

    #[test]
    fn closed_queue_drain_mode_never_parks_dispatchers() {
        let q = queue(2, 1, 0, 8);
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        q.close();
        // Drain mode: every dispatcher sees node 0's remainder immediately
        // (closed gate is 0; wait_node returns without parking)...
        assert!(q.wait_node(0));
        assert!(q.wait_node(1));
        assert_eq!(q.pop_node(0, 8).len(), 1); // final pop on a closed queue
                                               // ...and observes the exit condition once it is gone.
        assert!(!q.wait_node(0));
        assert!(!q.wait_node(1));
    }

    #[test]
    fn try_push_fails_fast_at_capacity() {
        let q = queue(2, 1, 2, 8);
        q.try_push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        q.try_push(env_on(&q, 1)).map_err(|_| ()).unwrap();
        // Capacity is global across groups.
        assert!(matches!(q.try_push(env_on(&q, 1)), Err(PushError::Full)));
        // Draining any group reopens admission.
        assert_eq!(q.pop_node(0, 1).len(), 1);
        assert!(q.try_push(env_on(&q, 1)).is_ok());
    }

    #[test]
    fn blocking_push_parks_until_drained() {
        let q = Arc::new(queue(1, 1, 1, 8));
        q.push(env(&q)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let e = env(&q2);
            q2.push(e).map_err(|_| ()).unwrap(); // parks: queue is full
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 1, "producer still parked");
        assert_eq!(q.pop_node(0, 1).len(), 1); // frees a slot, wakes producer
        producer.join().unwrap();
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn pending_flops_tracks_inbox_and_scheduler() {
        let q = queue(2, 2, 0, 8);
        // 2x2x2 → 16 flops each.
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        q.push(env_on(&q, 0)).map_err(|_| ()).unwrap();
        q.push(env_on(&q, 1)).map_err(|_| ()).unwrap();
        assert_eq!(q.node_pending_flops(0), 32);
        assert_eq!(q.node_pending_flops(1), 16);
        // Partial pop: one envelope leaves, the other is staged in the
        // scheduler but still counts.
        assert_eq!(q.pop_node(0, 1).len(), 1);
        assert_eq!(q.node_pending_flops(0), 16);
        assert_eq!(q.pop_node(0, usize::MAX).len(), 1);
        assert_eq!(q.node_pending_flops(0), 0);
        assert_eq!(q.node_pending_flops(1), 16);
    }

    #[test]
    fn pop_node_orders_by_tenant_weight_and_priority() {
        // Weighted tenants: 3:1 over equal-cost requests, and within one
        // tenant's lane High precedes Normal regardless of arrival order.
        let table = TenantTable::default()
            .tenant(1, 3)
            .tenant(2, 1)
            .quantum_flops(16);
        let q = ShardedQueue::<f64>::new(1, 2, 0, 8, table);
        let mk = |tenant, priority| {
            envelope_for(
                &q,
                0,
                GemmRequest::new(Matrix::zeros(2, 2), Matrix::zeros(2, 2))
                    .with_tenant(tenant)
                    .with_priority(priority),
            )
        };
        // Tenant 1: normal, normal, high (arrives last); tenant 2: 4x normal.
        q.push(mk(1, Priority::Normal)).map_err(|_| ()).unwrap();
        q.push(mk(1, Priority::Normal)).map_err(|_| ()).unwrap();
        for _ in 0..4 {
            q.push(mk(2, Priority::Normal)).map_err(|_| ()).unwrap();
        }
        q.push(mk(1, Priority::High)).map_err(|_| ()).unwrap();
        let order: Vec<(u32, Priority)> = q
            .pop_node(0, usize::MAX)
            .into_iter()
            .map(|e| (e.req.tenant, e.req.priority))
            .collect();
        // Round 1: tenant 1 gets 3 quanta (High first, then the two
        // Normals FIFO), tenant 2 gets 1; then tenant 2 drains alone.
        assert_eq!(
            order,
            vec![
                (1, Priority::High),
                (1, Priority::Normal),
                (1, Priority::Normal),
                (2, Priority::Normal),
                (2, Priority::Normal),
                (2, Priority::Normal),
                (2, Priority::Normal),
            ]
        );
    }

    #[test]
    fn pop_node_orders_edf_within_class_across_shards() {
        // Deadline-bearing requests pop earliest-first even though the
        // inbox spreads them round-robin over two shards.
        let q = queue(1, 2, 0, 8);
        let mk = |deadline_ms| {
            envelope_for(
                &q,
                0,
                GemmRequest::new(Matrix::zeros(2, 2), Matrix::zeros(2, 2))
                    .with_deadline(std::time::Duration::from_millis(deadline_ms)),
            )
        };
        let (far, near, mid) = (mk(500), mk(5), mk(50));
        let (far_id, near_id, mid_id) = (far.id, near.id, mid.id);
        q.push(far).map_err(|_| ()).unwrap();
        q.push(near).map_err(|_| ()).unwrap();
        q.push(mid).map_err(|_| ()).unwrap();
        let order: Vec<u64> = q
            .pop_node(0, usize::MAX)
            .into_iter()
            .map(|e| e.id)
            .collect();
        assert_eq!(order, vec![near_id, mid_id, far_id]);
    }

    #[test]
    fn close_unparks_blocked_producer() {
        let q = Arc::new(queue(1, 1, 1, 8));
        q.push(env(&q)).map_err(|_| ()).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let e = env(&q2);
            matches!(q2.push(e), Err(PushError::Closed))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(producer.join().unwrap());
    }
}
