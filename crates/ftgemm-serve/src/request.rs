//! Request/response types, shared operands, and the service error enum.

use std::ops::Deref;
use std::sync::Arc;
use std::time::Duration;

use ftgemm_abft::{FtError, FtPolicy, FtReport};
use ftgemm_core::{Matrix, Scalar};
use ftgemm_faults::FaultInjector;

use crate::qos::{Priority, TenantId, DEFAULT_TENANT};

/// An input operand of a [`GemmRequest`]: either owned outright by the
/// request, or a shared reference to a server-resident matrix.
///
/// The shared variant is what makes the clients-cache-operands-and-re-fire
/// pattern affordable: a frontend (the wire protocol's operand-handle
/// store, a batch planner replaying one weight matrix against many inputs)
/// keeps one `Arc<Matrix<T>>` and builds any number of requests against it
/// — cloning the request or fanning it out across submit surfaces bumps a
/// reference count instead of copying matrix data. The compute paths only
/// ever read `A`/`B`, so both variants serve identically.
#[derive(Debug, Clone)]
pub enum Operand<T: Scalar> {
    /// The request owns the matrix (the historical behavior; cloning the
    /// request deep-copies the data).
    Owned(Matrix<T>),
    /// The matrix is shared; cloning is a reference-count bump and the
    /// underlying buffer is never copied per request.
    Shared(Arc<Matrix<T>>),
}

impl<T: Scalar> Operand<T> {
    /// The shared buffer when this operand is [`Operand::Shared`].
    pub fn shared(&self) -> Option<&Arc<Matrix<T>>> {
        match self {
            Operand::Owned(_) => None,
            Operand::Shared(m) => Some(m),
        }
    }
}

impl<T: Scalar> Deref for Operand<T> {
    type Target = Matrix<T>;

    fn deref(&self) -> &Matrix<T> {
        match self {
            Operand::Owned(m) => m,
            Operand::Shared(m) => m,
        }
    }
}

impl<T: Scalar> From<Matrix<T>> for Operand<T> {
    fn from(m: Matrix<T>) -> Self {
        Operand::Owned(m)
    }
}

impl<T: Scalar> From<Arc<Matrix<T>>> for Operand<T> {
    fn from(m: Arc<Matrix<T>>) -> Self {
        Operand::Shared(m)
    }
}

impl<T: Scalar> From<&Arc<Matrix<T>>> for Operand<T> {
    fn from(m: &Arc<Matrix<T>>) -> Self {
        Operand::Shared(Arc::clone(m))
    }
}

/// One GEMM problem submitted to a [`GemmService`](crate::GemmService):
/// `C = alpha*A*B + beta*C`.
///
/// The request owns its output; the input operands are [`Operand`]s, so
/// they can be owned per request or shared (`Arc`-backed, zero-copy) with
/// other requests. The output matrix travels back to the caller inside the
/// [`GemmResponse`], so no *mutable* buffers are shared between the caller
/// and the service threads.
#[derive(Debug, Clone)]
pub struct GemmRequest<T: Scalar> {
    /// Scale on `A*B`.
    pub alpha: T,
    /// Left operand (`m x k`), owned or shared.
    pub a: Operand<T>,
    /// Right operand (`k x n`), owned or shared.
    pub b: Operand<T>,
    /// Scale on the input `C`.
    pub beta: T,
    /// Output operand (`m x n`), accumulated in place.
    pub c: Matrix<T>,
    /// Fault-tolerance policy for this request.
    pub policy: FtPolicy,
    /// Optional per-request fault injector (campaigns/tests).
    pub injector: Option<FaultInjector>,
    /// Optional operand-home hint: the NUMA node this request's operands
    /// live on. Consulted by
    /// [`PlacementPolicy::OperandHome`](crate::PlacementPolicy) (values
    /// beyond the node count wrap); `None` lets the service derive a home
    /// from the operand addresses.
    pub home: Option<usize>,
    /// Owning tenant for QoS scheduling ([`DEFAULT_TENANT`] when unset).
    /// The tenant's weight in
    /// [`ServiceConfig::tenants`](crate::ServiceConfig) fixes its
    /// cross-tenant flops share under the deficit-round-robin scheduler.
    pub tenant: TenantId,
    /// Priority class within the tenant's lane
    /// ([`Priority::Normal`] when unset). Orders this tenant's own work;
    /// does not change its cross-tenant share.
    pub priority: Priority,
    /// Optional deadline, relative to submission time. Admission control
    /// rejects the request up front ([`ServeError::DeadlineExceeded`]) when
    /// the learned ns/flop model says the backlog makes it infeasible, and
    /// the dispatcher sheds it with the same error if it expires while
    /// queued.
    pub deadline: Option<Duration>,
}

impl<T: Scalar> GemmRequest<T> {
    /// `C = A*B` with a zeroed output and the default policy
    /// ([`FtPolicy::DetectCorrect`]).
    ///
    /// The output is shaped `a.nrows() x b.ncols()` *without* checking the
    /// inner dimensions agree; a `k` mismatch is only reported when the
    /// request is submitted. Prefer [`GemmRequest::builder`], which
    /// surfaces the shape error at build time.
    pub fn new(a: impl Into<Operand<T>>, b: impl Into<Operand<T>>) -> Self {
        let (a, b) = (a.into(), b.into());
        let c = Matrix::zeros(a.nrows(), b.ncols());
        GemmRequest {
            alpha: T::ONE,
            a,
            b,
            beta: T::ZERO,
            c,
            policy: FtPolicy::default(),
            injector: None,
            home: None,
            tenant: DEFAULT_TENANT,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Validating builder for a request: `GemmRequest::builder(a, b)
    /// .alpha(..).ft(..).build()?`. Shares its vocabulary with the facade's
    /// `GemmOp` builder; [`GemmRequestBuilder::build`] rejects inconsistent
    /// operand shapes instead of deferring the error to submit time.
    pub fn builder(a: impl Into<Operand<T>>, b: impl Into<Operand<T>>) -> GemmRequestBuilder<T> {
        GemmRequestBuilder {
            alpha: T::ONE,
            a: a.into(),
            b: b.into(),
            beta: T::ZERO,
            c: None,
            policy: FtPolicy::default(),
            injector: None,
            home: None,
            tenant: DEFAULT_TENANT,
            priority: Priority::default(),
            deadline: None,
        }
    }

    /// Replaces the output operand (enables `beta != 0` accumulation).
    #[must_use]
    pub fn with_c(mut self, beta: T, c: Matrix<T>) -> Self {
        self.beta = beta;
        self.c = c;
        self
    }

    /// Sets `alpha`.
    #[must_use]
    pub fn with_alpha(mut self, alpha: T) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the fault-tolerance policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FtPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault injector to this request.
    #[must_use]
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Pins the operand-home node consulted by
    /// [`PlacementPolicy::OperandHome`](crate::PlacementPolicy).
    #[must_use]
    pub fn with_home(mut self, node: usize) -> Self {
        self.home = Some(node);
        self
    }

    /// Tags the request with its owning tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the priority class within the tenant's lane.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a completion deadline relative to submission time.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Problem dimensions `(m, n, k)` after shape validation.
    pub fn validate(&self) -> Result<(usize, usize, usize), ServeError> {
        let (m, k) = (self.a.nrows(), self.a.ncols());
        let (kb, n) = (self.b.nrows(), self.b.ncols());
        let (mc, nc) = (self.c.nrows(), self.c.ncols());
        if k != kb || m != mc || n != nc {
            return Err(ServeError::Shape(format!(
                "A is {m}x{k}, B is {kb}x{n}, C is {mc}x{nc}"
            )));
        }
        Ok((m, n, k))
    }

    /// Multiply-add count of the problem (`2*m*n*k`), the size measure the
    /// scheduler uses to route between the batched and the matrix-parallel
    /// path.
    pub fn flops(&self) -> u64 {
        2 * self.a.nrows() as u64 * self.b.ncols() as u64 * self.a.ncols() as u64
    }
}

/// Validating builder for a [`GemmRequest`], created by
/// [`GemmRequest::builder`].
///
/// Mirrors the facade's `GemmOp` vocabulary (`alpha` / `beta` / `ft` /
/// `injector`); [`build`](Self::build) checks operand consistency
/// (`a.ncols() == b.nrows()`, and the output shape when one is supplied)
/// so a malformed request fails where it was constructed, not at submit.
#[derive(Debug, Clone)]
pub struct GemmRequestBuilder<T: Scalar> {
    alpha: T,
    a: Operand<T>,
    b: Operand<T>,
    beta: T,
    c: Option<Matrix<T>>,
    policy: FtPolicy,
    injector: Option<FaultInjector>,
    home: Option<usize>,
    tenant: TenantId,
    priority: Priority,
    deadline: Option<Duration>,
}

impl<T: Scalar> GemmRequestBuilder<T> {
    /// Sets `alpha` (default `1`).
    #[must_use]
    pub fn alpha(mut self, alpha: T) -> Self {
        self.alpha = alpha;
        self
    }

    /// Supplies the output operand and its scale (enables `beta != 0`
    /// accumulation). Without this, the output is zeroed and `beta = 0`.
    #[must_use]
    pub fn c(mut self, beta: T, c: Matrix<T>) -> Self {
        self.beta = beta;
        self.c = Some(c);
        self
    }

    /// Sets the fault-tolerance policy (default
    /// [`FtPolicy::DetectCorrect`]).
    #[must_use]
    pub fn ft(mut self, policy: FtPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Attaches a fault injector (campaigns/tests).
    #[must_use]
    pub fn injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Pins the operand-home node consulted by
    /// [`PlacementPolicy::OperandHome`](crate::PlacementPolicy).
    #[must_use]
    pub fn home(mut self, node: usize) -> Self {
        self.home = Some(node);
        self
    }

    /// Tags the request with its owning tenant (default
    /// [`DEFAULT_TENANT`]).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Sets the priority class within the tenant's lane (default
    /// [`Priority::Normal`]).
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a completion deadline relative to submission time.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Finishes the request, validating operand shapes.
    pub fn build(self) -> Result<GemmRequest<T>, ServeError> {
        let (m, k) = (self.a.nrows(), self.a.ncols());
        let (kb, n) = (self.b.nrows(), self.b.ncols());
        if k != kb {
            return Err(ServeError::Shape(format!("A is {m}x{k} but B is {kb}x{n}")));
        }
        let c = match self.c {
            Some(c) => {
                if c.nrows() != m || c.ncols() != n {
                    return Err(ServeError::Shape(format!(
                        "C is {}x{} but A*B is {m}x{n}",
                        c.nrows(),
                        c.ncols()
                    )));
                }
                c
            }
            None => Matrix::zeros(m, n),
        };
        Ok(GemmRequest {
            alpha: self.alpha,
            a: self.a,
            b: self.b,
            beta: self.beta,
            c,
            policy: self.policy,
            injector: self.injector,
            home: self.home,
            tenant: self.tenant,
            priority: self.priority,
            deadline: self.deadline,
        })
    }
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct GemmResponse<T: Scalar> {
    /// The output matrix (`alpha*A*B + beta*C` of the request operands).
    pub c: Matrix<T>,
    /// Fault-tolerance counters for this request (all-zero under
    /// [`FtPolicy::Off`]).
    pub report: FtReport,
    /// True when the request ran on the batched path (coalesced with other
    /// small requests); false when it ran matrix-parallel.
    pub batched: bool,
    /// The node affinity the placement policy stamped at submit time.
    pub affinity_node: usize,
    /// The node whose worker subset actually executed the request; differs
    /// from [`affinity_node`](Self::affinity_node) only when the request
    /// was stolen by a dry node.
    pub executed_node: usize,
}

impl<T: Scalar> GemmResponse<T> {
    /// True when a dry node stole this request off its affinity node's
    /// shard group.
    pub fn stolen(&self) -> bool {
        self.affinity_node != self.executed_node
    }
}

/// Errors a request can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Operand shapes are inconsistent (rejected at submit time).
    Shape(String),
    /// The fault-tolerant driver gave up (unrecoverable checksum pattern
    /// after the policy's retry budget, or an internal driver error).
    Ft(FtError),
    /// The service is shutting down: either a submission arrived after
    /// intake closed, or the request was still parked on a node's shard
    /// group when [`shutdown_now`](crate::GemmService::shutdown_now)
    /// aborted the drain — parked requests are *failed* with this error
    /// rather than left to hang their handles.
    Closed,
    /// The submission queue is at capacity and the caller asked not to
    /// block (async submit surface). Shed load or retry later.
    Overloaded,
    /// The request's deadline cannot (or could not) be met. Returned at
    /// submit time when admission control's learned ns/flop model says the
    /// queued backlog makes the deadline infeasible, and at dispatch time
    /// when a queued request's deadline expired before it reached a worker
    /// (load shedding). The string describes which case fired and the
    /// estimate involved.
    DeadlineExceeded(String),
}

impl ServeError {
    /// The error's **stable wire discriminant**, the number the network
    /// protocol (`ftgemm-net`) puts in error frames.
    ///
    /// These values are a compatibility contract: they must never be
    /// renumbered, and a new variant must take a new, previously unused
    /// number. The match below is deliberately exhaustive (no `_` arm), so
    /// adding a variant without choosing its code is a compile error
    /// instead of a silent renumbering; `wire_codes_are_pinned` pins each
    /// assignment.
    pub fn wire_code(&self) -> u16 {
        match self {
            ServeError::Shape(_) => 1,
            ServeError::Ft(_) => 2,
            ServeError::Closed => 3,
            ServeError::Overloaded => 4,
            ServeError::DeadlineExceeded(_) => 5,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shape(detail) => write!(f, "shape mismatch: {detail}"),
            ServeError::Ft(e) => write!(f, "fault-tolerant driver error: {e}"),
            ServeError::Closed => write!(f, "service closed"),
            ServeError::Overloaded => write!(f, "submission queue at capacity"),
            ServeError::DeadlineExceeded(detail) => {
                write!(f, "deadline exceeded: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FtError> for ServeError {
    fn from(e: FtError) -> Self {
        ServeError::Ft(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_request_defaults() {
        let r = GemmRequest::new(Matrix::<f64>::zeros(3, 4), Matrix::<f64>::zeros(4, 5));
        assert_eq!(r.validate().unwrap(), (3, 5, 4));
        assert_eq!(r.c.nrows(), 3);
        assert_eq!(r.c.ncols(), 5);
        assert_eq!(r.policy, FtPolicy::DetectCorrect);
        assert_eq!(r.flops(), 2 * 3 * 5 * 4);
    }

    #[test]
    fn validate_rejects_mismatch() {
        let r = GemmRequest {
            alpha: 1.0f64,
            a: Matrix::zeros(3, 4).into(),
            b: Matrix::zeros(5, 6).into(), // k mismatch
            beta: 0.0,
            c: Matrix::zeros(3, 6),
            policy: FtPolicy::Off,
            injector: None,
            home: None,
            tenant: DEFAULT_TENANT,
            priority: Priority::Normal,
            deadline: None,
        };
        assert!(matches!(r.validate(), Err(ServeError::Shape(_))));
    }

    #[test]
    fn builder_validates_inner_dim_at_build_time() {
        let err = GemmRequest::builder(Matrix::<f64>::zeros(3, 4), Matrix::<f64>::zeros(5, 6))
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::Shape(_)), "{err}");
    }

    #[test]
    fn builder_validates_output_shape() {
        let err = GemmRequest::builder(Matrix::<f64>::zeros(3, 4), Matrix::<f64>::zeros(4, 6))
            .c(1.0, Matrix::zeros(3, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, ServeError::Shape(_)), "{err}");
    }

    #[test]
    fn builder_builds_valid_request() {
        let req = GemmRequest::builder(Matrix::<f64>::zeros(3, 4), Matrix::<f64>::zeros(4, 5))
            .alpha(2.0)
            .ft(FtPolicy::Detect)
            .build()
            .unwrap();
        assert_eq!(req.validate().unwrap(), (3, 5, 4));
        assert_eq!(req.alpha, 2.0);
        assert_eq!(req.beta, 0.0);
        assert_eq!(req.policy, FtPolicy::Detect);
        assert_eq!(req.c.nrows(), 3);
        assert_eq!(req.c.ncols(), 5);
    }

    #[test]
    fn builder_methods() {
        let r = GemmRequest::new(Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(2, 2))
            .with_alpha(2.0)
            .with_c(0.5, Matrix::filled(2, 2, 1.0))
            .with_policy(FtPolicy::Detect)
            .with_home(1);
        assert_eq!(r.alpha, 2.0);
        assert_eq!(r.beta, 0.5);
        assert_eq!(r.policy, FtPolicy::Detect);
        assert_eq!(r.home, Some(1));
    }

    #[test]
    fn qos_fields_default_and_thread_through_both_builders() {
        let r = GemmRequest::new(Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(2, 2));
        assert_eq!(r.tenant, DEFAULT_TENANT);
        assert_eq!(r.priority, Priority::Normal);
        assert_eq!(r.deadline, None);

        let r = r
            .with_tenant(7)
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(5));
        assert_eq!(r.tenant, 7);
        assert_eq!(r.priority, Priority::High);
        assert_eq!(r.deadline, Some(Duration::from_millis(5)));

        let r = GemmRequest::builder(Matrix::<f64>::zeros(2, 3), Matrix::<f64>::zeros(3, 2))
            .tenant(9)
            .priority(Priority::Low)
            .deadline(Duration::from_micros(250))
            .build()
            .unwrap();
        assert_eq!(r.tenant, 9);
        assert_eq!(r.priority, Priority::Low);
        assert_eq!(r.deadline, Some(Duration::from_micros(250)));
    }

    #[test]
    fn deadline_error_displays_detail() {
        let e = ServeError::DeadlineExceeded("eta 5ms > deadline 1ms".into());
        assert!(e.to_string().contains("deadline exceeded"));
        assert!(e.to_string().contains("eta 5ms"));
    }

    /// Satellite pin: submitting against shared server-resident operands
    /// copies no matrix data. Requests built from the same `Arc` operands
    /// alias the original buffers (pointer identity), and cloning such a
    /// request is a reference-count bump, not a data clone.
    #[test]
    fn shared_operands_are_zero_copy_per_request() {
        let a = Arc::new(Matrix::<f64>::random(24, 16, 1));
        let b = Arc::new(Matrix::<f64>::random(16, 20, 2));
        let a_ptr = a.as_slice().as_ptr();
        let b_ptr = b.as_slice().as_ptr();

        let reqs: Vec<_> = (0..8).map(|_| GemmRequest::<f64>::new(&a, &b)).collect();
        for r in &reqs {
            assert!(
                std::ptr::eq(r.a.as_slice().as_ptr(), a_ptr),
                "request copied operand A instead of sharing it"
            );
            assert!(std::ptr::eq(r.b.as_slice().as_ptr(), b_ptr));
        }
        // 8 requests + the locals: exactly one buffer, 9 strong refs.
        assert_eq!(Arc::strong_count(&a), 9);
        assert_eq!(Arc::strong_count(&b), 9);

        // Cloning a shared-operand request bumps the count; it never
        // duplicates the data.
        let cloned = reqs[0].clone();
        assert_eq!(Arc::strong_count(&a), 10);
        assert!(std::ptr::eq(cloned.a.as_slice().as_ptr(), a_ptr));
        drop(cloned);
        drop(reqs);
        assert_eq!(Arc::strong_count(&a), 1);

        // The builder path shares too.
        let built = GemmRequest::builder(&a, &b).build().unwrap();
        assert!(std::ptr::eq(built.a.as_slice().as_ptr(), a_ptr));
        assert!(built.a.shared().is_some());
        // Owned operands still deep-copy on clone (the historical shape).
        let owned = GemmRequest::new(Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(2, 2));
        assert!(owned.a.shared().is_none());
    }

    /// Satellite pin: the wire discriminants of [`ServeError`] are a
    /// stable contract. If this test fails, a variant was renumbered —
    /// which breaks every client speaking the wire protocol. Add new
    /// variants with NEW numbers instead.
    #[test]
    fn wire_codes_are_pinned() {
        use ftgemm_abft::FtError;
        let all = [
            (ServeError::Shape("x".into()), 1),
            (
                ServeError::Ft(FtError::Unrecoverable {
                    jc: 0,
                    pc: 0,
                    detail: "x".into(),
                }),
                2,
            ),
            (ServeError::Closed, 3),
            (ServeError::Overloaded, 4),
            (ServeError::DeadlineExceeded("x".into()), 5),
        ];
        for (err, code) in all {
            assert_eq!(err.wire_code(), code, "renumbered: {err}");
        }
    }

    #[test]
    fn home_hint_defaults_to_none_and_threads_through_builder() {
        let r = GemmRequest::new(Matrix::<f64>::zeros(2, 2), Matrix::<f64>::zeros(2, 2));
        assert_eq!(r.home, None);
        let r = GemmRequest::builder(Matrix::<f64>::zeros(2, 3), Matrix::<f64>::zeros(3, 2))
            .home(2)
            .build()
            .unwrap();
        assert_eq!(r.home, Some(2));
    }
}
