//! Empirical blocking-parameter auto-tuning.
//!
//! The cache-derived defaults ([`BlockingParams::derive`]) follow the
//! GotoBLAS analysis the paper adopts (§2.1), but real machines — and
//! especially shared/virtualized ones — sometimes prefer neighbouring
//! configurations. This module searches a small grid around the analytic
//! defaults with short timed probes, the way BLIS's `auto` configs and
//! ATLAS-style tuners do.

use crate::cpu::{CacheInfo, IsaLevel};
use crate::gemm::{gemm, GemmContext};
use crate::matrix::Matrix;
use crate::params::BlockingParams;
use crate::scalar::Scalar;
use std::time::Instant;

/// Tuning configuration.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Probe problem size (`size^3` GEMM per candidate).
    pub size: usize,
    /// Timed repetitions per candidate (first run is warm-up).
    pub reps: usize,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig { size: 512, reps: 2 }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy)]
pub struct TuneResult {
    /// The candidate parameters.
    pub params: BlockingParams,
    /// Mean seconds per probe GEMM.
    pub secs: f64,
}

/// Searches an (MC, KC) grid around the cache-derived defaults and returns
/// every candidate with its timing, best first.
///
/// The NC dimension is left at its derived value: it targets the shared L3
/// and the probe sizes used here rarely exercise it.
pub fn tune<T: Scalar>(isa: IsaLevel, cfg: TuneConfig) -> Vec<TuneResult> {
    let kernel = crate::microkernel::select_kernel::<T>(isa);
    let base = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);

    let mc_grid: Vec<usize> = [base.mc / 2, base.mc, base.mc * 2]
        .iter()
        .map(|&v| (v.max(kernel.mr) / kernel.mr) * kernel.mr)
        .collect();
    let kc_grid: Vec<usize> = [base.kc / 2, base.kc, base.kc * 2]
        .iter()
        .map(|&v| v.max(16))
        .collect();

    let s = cfg.size;
    let a = Matrix::<T>::random(s, s, 0x7E57);
    let b = Matrix::<T>::random(s, s, 0x7E58);
    let mut c = Matrix::<T>::zeros(s, s);

    let mut results = Vec::new();
    for &mc in &mc_grid {
        for &kc in &kc_grid {
            let params = base.with_blocks(mc, base.nc, kc);
            if params.validate().is_err() {
                continue;
            }
            let mut ctx = GemmContext::<T>::with_isa(isa);
            if ctx.set_params(params).is_err() {
                continue;
            }
            // Warm-up (also populates pack buffers).
            gemm(
                &mut ctx,
                T::ONE,
                &a.as_ref(),
                &b.as_ref(),
                T::ZERO,
                &mut c.as_mut(),
            )
            .expect("probe gemm failed");
            let t0 = Instant::now();
            for _ in 0..cfg.reps.max(1) {
                gemm(
                    &mut ctx,
                    T::ONE,
                    &a.as_ref(),
                    &b.as_ref(),
                    T::ZERO,
                    &mut c.as_mut(),
                )
                .expect("probe gemm failed");
            }
            let secs = t0.elapsed().as_secs_f64() / cfg.reps.max(1) as f64;
            results.push(TuneResult { params, secs });
        }
    }
    results.sort_by(|x, y| {
        x.secs
            .partial_cmp(&y.secs)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    results
}

/// Convenience: the single best parameter set found by [`tune`].
pub fn tuned_params<T: Scalar>(isa: IsaLevel, cfg: TuneConfig) -> BlockingParams {
    tune::<T>(isa, cfg)
        .first()
        .map(|r| r.params)
        .unwrap_or_else(|| {
            let kernel = crate::microkernel::select_kernel::<T>(isa);
            BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_gemm;

    #[test]
    fn tune_returns_valid_sorted_candidates() {
        let cfg = TuneConfig { size: 96, reps: 1 };
        let results = tune::<f64>(IsaLevel::detect(), cfg);
        assert!(!results.is_empty());
        for r in &results {
            r.params.validate().unwrap();
            assert!(r.secs > 0.0);
        }
        for w in results.windows(2) {
            assert!(w[0].secs <= w[1].secs, "not sorted");
        }
    }

    #[test]
    fn tuned_params_produce_correct_gemm() {
        let cfg = TuneConfig { size: 64, reps: 1 };
        let params = tuned_params::<f64>(IsaLevel::detect(), cfg);
        let (m, n, k) = (70, 50, 60);
        let a = Matrix::<f64>::random(m, k, 1);
        let b = Matrix::<f64>::random(k, n, 2);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        crate::gemm::gemm_with_params(
            IsaLevel::detect(),
            params,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn tune_f32() {
        let cfg = TuneConfig { size: 64, reps: 1 };
        let results = tune::<f32>(IsaLevel::Portable, cfg);
        assert!(!results.is_empty());
    }
}
