//! Naive reference implementations used as test oracles.
//!
//! Deliberately simple (ijp loops, no blocking, no SIMD) so they are "obviously
//! correct"; every optimized path in the workspace is validated against these.

use crate::matrix::{MatMut, MatRef};
use crate::scalar::Scalar;

/// Naive `C = alpha*A*B + beta*C` (jik loop, dot-product accumulation).
pub fn naive_gemm<T: Scalar>(
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) {
    let m = a.nrows();
    let k = a.ncols();
    let n = b.ncols();
    assert_eq!(b.nrows(), k, "naive_gemm: inner dimension mismatch");
    assert_eq!(c.nrows(), m, "naive_gemm: C rows mismatch");
    assert_eq!(c.ncols(), n, "naive_gemm: C cols mismatch");

    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            let old = c.get(i, j);
            c.set(i, j, alpha * acc + beta * old);
        }
    }
}

/// Naive `y = alpha*A*x + beta*y`.
pub fn naive_gemv<T: Scalar>(alpha: T, a: &MatRef<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    let m = a.nrows();
    let n = a.ncols();
    assert_eq!(x.len(), n, "naive_gemv: x length");
    assert_eq!(y.len(), m, "naive_gemv: y length");
    for i in 0..m {
        let mut acc = T::ZERO;
        for j in 0..n {
            acc += a.get(i, j) * x[j];
        }
        y[i] = alpha * acc + beta * y[i];
    }
}

/// Naive dot product.
pub fn naive_dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "naive_dot: length mismatch");
    let mut acc = T::ZERO;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn gemm_2x2_by_hand() {
        // A = [1 2; 3 4] (col-major), B = [5 6; 7 8], C0 = I
        let a = Matrix::from_col_major(2, 2, &[1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = Matrix::from_col_major(2, 2, &[5.0, 7.0, 6.0, 8.0]).unwrap();
        let mut c = Matrix::<f64>::identity(2);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 10.0, &mut c.as_mut());
        // A*B = [19 22; 43 50]; + 10*I
        assert_eq!(c.get(0, 0), 29.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 60.0);
    }

    #[test]
    fn gemv_by_hand() {
        let a = Matrix::from_col_major(2, 3, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]).unwrap();
        let x = [1.0, 1.0, 1.0];
        let mut y = [100.0, 200.0];
        naive_gemv(2.0, &a.as_ref(), &x, 0.5, &mut y);
        // A*x = [6, 15]; y = 2*[6,15] + 0.5*[100,200] = [62, 130]
        assert_eq!(y, [62.0, 130.0]);
    }

    #[test]
    fn dot_by_hand() {
        assert_eq!(naive_dot(&[1.0, 2.0, 3.0], &[4.0f64, 5.0, 6.0]), 32.0);
        assert_eq!(naive_dot::<f64>(&[], &[]), 0.0);
    }
}
