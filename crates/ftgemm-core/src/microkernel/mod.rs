//! Micro-kernels: the register-blocked inner loop of GEMM.
//!
//! A micro-kernel computes `C_tile += A_panel * B_panel` where `A_panel` is a
//! packed `MR x k` slab (column of the packed block `A~`), `B_panel` a packed
//! `k x NR` slab, and `C_tile` an `MR x NR` window of `C` held in registers
//! for the whole `k` loop.
//!
//! ## The fused-ABFT hook
//!
//! Every kernel takes two optional output vectors, `col_sums` (length `NR`)
//! and `row_sums` (length `MR`). When non-null, the kernel accumulates the
//! **post-update** tile sums
//!
//! ```text
//! col_sums[j] += Σ_i C_tile[i, j]        row_sums[i] += Σ_j C_tile[i, j]
//! ```
//!
//! while the tile is still in registers. This realizes the paper's §2.2:
//! "we reuse the computed C elements at register level to update the
//! reference checksums C_r_ref and C_c_ref" — the checksum read of `C` costs
//! no extra memory traffic.
//!
//! ## Calling contract
//!
//! * `a` points to `MR * k` elements, layout `a[p*MR + i]`, zero-padded when
//!   the logical tile has fewer than `MR` rows; 64-byte aligned, and
//!   `MR * size_of::<T>()` is a multiple of 64 for the SIMD tiers.
//! * `b` points to `NR * k` elements, layout `b[p*NR + j]`, zero-padded.
//! * `c` points to element `(0, 0)` of the tile inside a column-major matrix
//!   with leading dimension `ldc >= m_eff`.
//! * `m_eff <= MR`, `n_eff <= NR` give the valid tile extent; only that
//!   region of `C` is read or written.
//! * `col_sums`/`row_sums` are either both null or both valid for
//!   `n_eff`/`m_eff` elements.

pub mod avx2;
pub mod avx512;
pub mod portable;

use crate::cpu::IsaLevel;
use crate::scalar::Scalar;
use std::any::TypeId;

/// Raw micro-kernel function type. See the module docs for the contract.
pub type MicroKernelFn<T> = unsafe fn(
    k: usize,
    a: *const T,
    b: *const T,
    c: *mut T,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut T,
    row_sums: *mut T,
);

/// A selected micro-kernel together with its register-block geometry.
#[derive(Clone, Copy)]
pub struct Kernel<T: Scalar> {
    /// Micro-tile rows.
    pub mr: usize,
    /// Micro-tile columns.
    pub nr: usize,
    /// ISA tier this kernel requires.
    pub isa: IsaLevel,
    /// Human-readable kernel name for reports.
    pub name: &'static str,
    /// The kernel entry point.
    pub func: MicroKernelFn<T>,
}

impl<T: Scalar> std::fmt::Debug for Kernel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("mr", &self.mr)
            .field("nr", &self.nr)
            .field("isa", &self.isa)
            .finish()
    }
}

/// Selects the best kernel for element type `T` at the given ISA tier.
///
/// Tiers above what the CPU supports must not be requested unless the caller
/// guarantees support (the returned kernel executes illegal instructions
/// otherwise) — use [`select_kernel_auto`] for the safe path.
pub fn select_kernel<T: Scalar>(level: IsaLevel) -> Kernel<T> {
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f64>() {
        let k: Kernel<f64> = match level {
            IsaLevel::Avx512 => Kernel {
                mr: avx512::F64_MR,
                nr: avx512::F64_NR,
                isa: IsaLevel::Avx512,
                name: "avx512-f64-16x8",
                func: avx512::dgemm_16x8,
            },
            IsaLevel::Avx2Fma => Kernel {
                mr: avx2::F64_MR,
                nr: avx2::F64_NR,
                isa: IsaLevel::Avx2Fma,
                name: "avx2-f64-8x6",
                func: avx2::dgemm_8x6,
            },
            IsaLevel::Portable => Kernel {
                mr: portable::MR,
                nr: portable::NR,
                isa: IsaLevel::Portable,
                name: "portable-f64-8x4",
                func: portable::kernel::<f64>,
            },
        };
        // SAFETY: T == f64 was just checked; the function pointer types are
        // identical after monomorphization, so this is a no-op transmute.
        return unsafe { std::mem::transmute::<Kernel<f64>, Kernel<T>>(k) };
    }
    if t == TypeId::of::<f32>() {
        let k: Kernel<f32> = match level {
            IsaLevel::Avx512 => Kernel {
                mr: avx512::F32_MR,
                nr: avx512::F32_NR,
                isa: IsaLevel::Avx512,
                name: "avx512-f32-32x8",
                func: avx512::sgemm_32x8,
            },
            IsaLevel::Avx2Fma => Kernel {
                mr: avx2::F32_MR,
                nr: avx2::F32_NR,
                isa: IsaLevel::Avx2Fma,
                name: "avx2-f32-16x6",
                func: avx2::sgemm_16x6,
            },
            IsaLevel::Portable => Kernel {
                mr: portable::MR,
                nr: portable::NR,
                isa: IsaLevel::Portable,
                name: "portable-f32-8x4",
                func: portable::kernel::<f32>,
            },
        };
        // SAFETY: T == f32 was just checked (see above).
        return unsafe { std::mem::transmute::<Kernel<f32>, Kernel<T>>(k) };
    }
    // Only f32/f64 implement Scalar today, but stay correct for any future
    // Scalar by falling back to the generic portable kernel.
    Kernel {
        mr: portable::MR,
        nr: portable::NR,
        isa: IsaLevel::Portable,
        name: "portable-generic-8x4",
        func: portable::kernel::<T>,
    }
}

/// Selects the best kernel the executing CPU supports.
pub fn select_kernel_auto<T: Scalar>() -> Kernel<T> {
    select_kernel::<T>(IsaLevel::detect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aligned::AlignedVec;

    /// Reference tile update used to validate every kernel tier.
    fn tile_oracle<T: Scalar>(
        k: usize,
        mr: usize,
        nr: usize,
        a: &[T],
        b: &[T],
        c: &mut [T],
        ldc: usize,
        m_eff: usize,
        n_eff: usize,
    ) {
        for p in 0..k {
            for j in 0..n_eff {
                for i in 0..m_eff {
                    let add = a[p * mr + i] * b[p * nr + j];
                    c[i + j * ldc] += add;
                }
            }
        }
    }

    fn check_kernel<T: Scalar>(kern: &Kernel<T>, k: usize, m_eff: usize, n_eff: usize) {
        let (mr, nr) = (kern.mr, kern.nr);
        let mut a = AlignedVec::<T>::zeroed(mr * k).unwrap();
        let mut b = AlignedVec::<T>::zeroed(nr * k).unwrap();
        // Deterministic pseudo-random fill; zero-pad beyond effective dims.
        for p in 0..k {
            for i in 0..m_eff {
                a[p * mr + i] = T::from_f64((((p * 31 + i * 7) % 17) as f64 - 8.0) / 4.0);
            }
            for j in 0..n_eff {
                b[p * nr + j] = T::from_f64((((p * 13 + j * 5) % 23) as f64 - 11.0) / 8.0);
            }
        }
        let ldc = mr + 3;
        let mut c = vec![T::from_f64(0.25); ldc * nr];
        let mut c_ref = c.clone();

        let mut col_sums = vec![T::from_f64(1.5); nr];
        let mut row_sums = vec![T::from_f64(-2.5); mr];

        // SAFETY: buffers satisfy the kernel contract established above.
        unsafe {
            (kern.func)(
                k,
                a.as_ptr(),
                b.as_ptr(),
                c.as_mut_ptr(),
                ldc,
                m_eff,
                n_eff,
                col_sums.as_mut_ptr(),
                row_sums.as_mut_ptr(),
            );
        }
        tile_oracle(k, mr, nr, &a, &b, &mut c_ref, ldc, m_eff, n_eff);

        let tol = T::EPSILON.to_f64() * (k as f64) * 64.0;
        for j in 0..n_eff {
            for i in 0..m_eff {
                let got = c[i + j * ldc].to_f64();
                let want = c_ref[i + j * ldc].to_f64();
                assert!(
                    (got - want).abs() <= tol * want.abs().max(1.0),
                    "{} tile mismatch at ({i},{j}): got {got}, want {want} (k={k}, m_eff={m_eff}, n_eff={n_eff})",
                    kern.name
                );
            }
        }
        // Untouched C outside the effective region.
        for j in 0..nr {
            for i in 0..ldc {
                if i < m_eff && j < n_eff {
                    continue;
                }
                assert_eq!(
                    c[i + j * ldc].to_f64(),
                    0.25,
                    "{} wrote outside tile at ({i},{j})",
                    kern.name
                );
            }
        }
        // Sums: accumulated on top of the initial garbage values.
        for j in 0..n_eff {
            let mut want = 1.5;
            for i in 0..m_eff {
                want += c_ref[i + j * ldc].to_f64();
            }
            let got = col_sums[j].to_f64();
            assert!(
                (got - want).abs() <= tol * want.abs().max(1.0) * (kern.mr as f64),
                "{} col_sum mismatch at {j}: got {got}, want {want}",
                kern.name
            );
        }
        for i in 0..m_eff {
            let mut want = -2.5;
            for j in 0..n_eff {
                want += c_ref[i + j * ldc].to_f64();
            }
            let got = row_sums[i].to_f64();
            assert!(
                (got - want).abs() <= tol * want.abs().max(1.0) * (kern.nr as f64),
                "{} row_sum mismatch at {i}: got {got}, want {want}",
                kern.name
            );
        }
        // Sums outside effective region untouched.
        for j in n_eff..nr {
            assert_eq!(col_sums[j].to_f64(), 1.5, "{}", kern.name);
        }
        for i in m_eff..mr {
            assert_eq!(row_sums[i].to_f64(), -2.5, "{}", kern.name);
        }

        // Null-sum (non-FT) path produces the same tile.
        let mut c2 = vec![T::from_f64(0.25); ldc * nr];
        // SAFETY: same contract, null sums select the plain store path.
        unsafe {
            (kern.func)(
                k,
                a.as_ptr(),
                b.as_ptr(),
                c2.as_mut_ptr(),
                ldc,
                m_eff,
                n_eff,
                std::ptr::null_mut(),
                std::ptr::null_mut(),
            );
        }
        for idx in 0..c2.len() {
            assert_eq!(
                c2[idx].to_f64(),
                c[idx].to_f64(),
                "{} FT/non-FT store divergence at {idx}",
                kern.name
            );
        }
    }

    fn exercise_all_shapes<T: Scalar>(kern: Kernel<T>) {
        for k in [0, 1, 2, 7, 64, 129] {
            check_kernel(&kern, k, kern.mr, kern.nr); // full tile
            check_kernel(&kern, k, 1, 1);
            check_kernel(&kern, k, kern.mr - 1, kern.nr);
            check_kernel(&kern, k, kern.mr, kern.nr - 1);
            check_kernel(&kern, k, kern.mr / 2 + 1, kern.nr / 2 + 1);
        }
    }

    #[test]
    fn portable_f64_all_shapes() {
        exercise_all_shapes(select_kernel::<f64>(IsaLevel::Portable));
    }

    #[test]
    fn portable_f32_all_shapes() {
        exercise_all_shapes(select_kernel::<f32>(IsaLevel::Portable));
    }

    #[test]
    fn avx2_f64_all_shapes() {
        if IsaLevel::detect() >= IsaLevel::Avx2Fma {
            exercise_all_shapes(select_kernel::<f64>(IsaLevel::Avx2Fma));
        }
    }

    #[test]
    fn avx2_f32_all_shapes() {
        if IsaLevel::detect() >= IsaLevel::Avx2Fma {
            exercise_all_shapes(select_kernel::<f32>(IsaLevel::Avx2Fma));
        }
    }

    #[test]
    fn avx512_f64_all_shapes() {
        if IsaLevel::detect() >= IsaLevel::Avx512 {
            exercise_all_shapes(select_kernel::<f64>(IsaLevel::Avx512));
        }
    }

    #[test]
    fn avx512_f32_all_shapes() {
        if IsaLevel::detect() >= IsaLevel::Avx512 {
            exercise_all_shapes(select_kernel::<f32>(IsaLevel::Avx512));
        }
    }

    #[test]
    fn auto_select_geometry_consistent() {
        let k = select_kernel_auto::<f64>();
        assert!(k.mr > 0 && k.nr > 0);
        assert!(k.isa <= IsaLevel::detect());
    }

    #[test]
    fn kernel_debug_format() {
        let k = select_kernel::<f64>(IsaLevel::Portable);
        let s = format!("{k:?}");
        assert!(s.contains("portable"));
    }
}
