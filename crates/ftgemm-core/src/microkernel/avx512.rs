//! AVX-512F micro-kernels (`std::arch` intrinsics).
//!
//! Geometry follows the register budget of the 32-register zmm file, the
//! approach the paper's assembly kernels take on Cascade Lake:
//!
//! * `f64`: 16x8 tile — 16 accumulator zmm (2 per column of 8 columns),
//!   2 loads of `A~` and 8 broadcast-FMAs of `B~` per `k` step.
//! * `f32`: 32x8 tile — same structure with 16-lane vectors.
//!
//! Full tiles take the vector path; partial (edge) tiles delegate to the
//! portable generic kernel instantiated with the same geometry, so packing
//! layouts are shared. Unaligned vector loads are used throughout: packed
//! panels are 64-byte aligned by construction, and `vmovupd` on aligned
//! addresses costs the same as `vmovapd` on every AVX-512 part while never
//! faulting if a caller relaxes the alignment guarantee.

#![allow(unsafe_op_in_unsafe_fn)]
#![cfg(any(target_arch = "x86_64", doc))]

use super::portable;
use crate::scalar::Scalar;

/// `f64` micro-tile rows.
pub const F64_MR: usize = 16;
/// `f64` micro-tile columns.
pub const F64_NR: usize = 8;
/// `f32` micro-tile rows.
pub const F32_MR: usize = 32;
/// `f32` micro-tile columns.
pub const F32_NR: usize = 8;

/// AVX-512 DGEMM 16x8 micro-kernel. See the [module contract](super).
///
/// # Safety
/// Caller must uphold the micro-kernel contract **and** guarantee the CPU
/// supports AVX-512F (use [`crate::cpu::IsaLevel::detect`]).
pub unsafe fn dgemm_16x8(
    k: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut f64,
    row_sums: *mut f64,
) {
    if m_eff == F64_MR && n_eff == F64_NR {
        dgemm_16x8_full(k, a, b, c, ldc, col_sums, row_sums);
    } else {
        // Edge tiles: panels are zero-padded, the portable path handles any
        // effective extent with identical arithmetic.
        portable::kernel_mn::<f64, F64_MR, F64_NR>(
            k, a, b, c, ldc, m_eff, n_eff, col_sums, row_sums,
        );
    }
}

#[target_feature(enable = "avx512f")]
unsafe fn dgemm_16x8_full(
    k: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
    col_sums: *mut f64,
    row_sums: *mut f64,
) {
    use std::arch::x86_64::*;

    let mut acc_lo = [_mm512_setzero_pd(); F64_NR];
    let mut acc_hi = [_mm512_setzero_pd(); F64_NR];

    let mut ap = a;
    let mut bp = b;

    // Main k loop, 2x unrolled to overlap A loads with broadcast-FMAs.
    let k2 = k / 2 * 2;
    let mut p = 0;
    while p < k2 {
        let a0 = _mm512_loadu_pd(ap);
        let a1 = _mm512_loadu_pd(ap.add(8));
        for j in 0..F64_NR {
            let bv = _mm512_set1_pd(*bp.add(j));
            acc_lo[j] = _mm512_fmadd_pd(a0, bv, acc_lo[j]);
            acc_hi[j] = _mm512_fmadd_pd(a1, bv, acc_hi[j]);
        }
        let a2 = _mm512_loadu_pd(ap.add(F64_MR));
        let a3 = _mm512_loadu_pd(ap.add(F64_MR + 8));
        for j in 0..F64_NR {
            let bv = _mm512_set1_pd(*bp.add(F64_NR + j));
            acc_lo[j] = _mm512_fmadd_pd(a2, bv, acc_lo[j]);
            acc_hi[j] = _mm512_fmadd_pd(a3, bv, acc_hi[j]);
        }
        ap = ap.add(2 * F64_MR);
        bp = bp.add(2 * F64_NR);
        p += 2;
    }
    if p < k {
        let a0 = _mm512_loadu_pd(ap);
        let a1 = _mm512_loadu_pd(ap.add(8));
        for j in 0..F64_NR {
            let bv = _mm512_set1_pd(*bp.add(j));
            acc_lo[j] = _mm512_fmadd_pd(a0, bv, acc_lo[j]);
            acc_hi[j] = _mm512_fmadd_pd(a1, bv, acc_hi[j]);
        }
    }

    if col_sums.is_null() {
        for j in 0..F64_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm512_add_pd(_mm512_loadu_pd(cp), acc_lo[j]);
            let v1 = _mm512_add_pd(_mm512_loadu_pd(cp.add(8)), acc_hi[j]);
            _mm512_storeu_pd(cp, v0);
            _mm512_storeu_pd(cp.add(8), v1);
        }
    } else {
        // Fused-ABFT store: post-update values feed the reference checksums
        // while still in registers (paper §2.2).
        let mut rsum_lo = _mm512_setzero_pd();
        let mut rsum_hi = _mm512_setzero_pd();
        for j in 0..F64_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm512_add_pd(_mm512_loadu_pd(cp), acc_lo[j]);
            let v1 = _mm512_add_pd(_mm512_loadu_pd(cp.add(8)), acc_hi[j]);
            _mm512_storeu_pd(cp, v0);
            _mm512_storeu_pd(cp.add(8), v1);
            rsum_lo = _mm512_add_pd(rsum_lo, v0);
            rsum_hi = _mm512_add_pd(rsum_hi, v1);
            *col_sums.add(j) += _mm512_reduce_add_pd(v0) + _mm512_reduce_add_pd(v1);
        }
        let r0 = _mm512_add_pd(_mm512_loadu_pd(row_sums), rsum_lo);
        let r1 = _mm512_add_pd(_mm512_loadu_pd(row_sums.add(8)), rsum_hi);
        _mm512_storeu_pd(row_sums, r0);
        _mm512_storeu_pd(row_sums.add(8), r1);
    }
}

/// AVX-512 SGEMM 32x8 micro-kernel. See the [module contract](super).
///
/// # Safety
/// Caller must uphold the micro-kernel contract **and** guarantee the CPU
/// supports AVX-512F.
pub unsafe fn sgemm_32x8(
    k: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut f32,
    row_sums: *mut f32,
) {
    if m_eff == F32_MR && n_eff == F32_NR {
        sgemm_32x8_full(k, a, b, c, ldc, col_sums, row_sums);
    } else {
        portable::kernel_mn::<f32, F32_MR, F32_NR>(
            k, a, b, c, ldc, m_eff, n_eff, col_sums, row_sums,
        );
    }
}

#[target_feature(enable = "avx512f")]
unsafe fn sgemm_32x8_full(
    k: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    col_sums: *mut f32,
    row_sums: *mut f32,
) {
    use std::arch::x86_64::*;

    let mut acc_lo = [_mm512_setzero_ps(); F32_NR];
    let mut acc_hi = [_mm512_setzero_ps(); F32_NR];

    let mut ap = a;
    let mut bp = b;
    for _ in 0..k {
        let a0 = _mm512_loadu_ps(ap);
        let a1 = _mm512_loadu_ps(ap.add(16));
        for j in 0..F32_NR {
            let bv = _mm512_set1_ps(*bp.add(j));
            acc_lo[j] = _mm512_fmadd_ps(a0, bv, acc_lo[j]);
            acc_hi[j] = _mm512_fmadd_ps(a1, bv, acc_hi[j]);
        }
        ap = ap.add(F32_MR);
        bp = bp.add(F32_NR);
    }

    if col_sums.is_null() {
        for j in 0..F32_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm512_add_ps(_mm512_loadu_ps(cp), acc_lo[j]);
            let v1 = _mm512_add_ps(_mm512_loadu_ps(cp.add(16)), acc_hi[j]);
            _mm512_storeu_ps(cp, v0);
            _mm512_storeu_ps(cp.add(16), v1);
        }
    } else {
        let mut rsum_lo = _mm512_setzero_ps();
        let mut rsum_hi = _mm512_setzero_ps();
        for j in 0..F32_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm512_add_ps(_mm512_loadu_ps(cp), acc_lo[j]);
            let v1 = _mm512_add_ps(_mm512_loadu_ps(cp.add(16)), acc_hi[j]);
            _mm512_storeu_ps(cp, v0);
            _mm512_storeu_ps(cp.add(16), v1);
            rsum_lo = _mm512_add_ps(rsum_lo, v0);
            rsum_hi = _mm512_add_ps(rsum_hi, v1);
            *col_sums.add(j) += _mm512_reduce_add_ps(v0) + _mm512_reduce_add_ps(v1);
        }
        let r0 = _mm512_add_ps(_mm512_loadu_ps(row_sums), rsum_lo);
        let r1 = _mm512_add_ps(_mm512_loadu_ps(row_sums.add(16)), rsum_hi);
        _mm512_storeu_ps(row_sums, r0);
        _mm512_storeu_ps(row_sums.add(16), r1);
    }
}

// Keep Scalar imported for doc-links when building without x86_64.
#[allow(unused)]
fn _doc_anchor<T: Scalar>() {}
