//! Portable micro-kernel: plain Rust, auto-vectorized by LLVM.
//!
//! This is the always-available tier and the reference the SIMD tiers are
//! validated against. It is also the edge-tile path the SIMD kernels
//! delegate to for partial tiles, so it must handle every `m_eff`/`n_eff`.

use crate::scalar::Scalar;

/// Micro-tile rows for the portable tier.
pub const MR: usize = 8;
/// Micro-tile columns for the portable tier.
pub const NR: usize = 4;

/// Portable `MR x NR` micro-kernel. See the [module contract](super).
///
/// # Safety
/// Callers must uphold the pointer/layout contract documented in
/// [`super`] (packed panels of `MR*k` / `NR*k` elements, valid `C` window,
/// sums either both null or valid).
pub unsafe fn kernel<T: Scalar>(
    k: usize,
    a: *const T,
    b: *const T,
    c: *mut T,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut T,
    row_sums: *mut T,
) {
    debug_assert!(m_eff <= MR && n_eff <= NR);
    // SAFETY: delegated; the generic body upholds the same contract.
    unsafe {
        kernel_mn::<T, MR, NR>(k, a, b, c, ldc, m_eff, n_eff, col_sums, row_sums);
    }
}

/// Generic register-blocked kernel over arbitrary const geometry.
///
/// Used by [`kernel`] with the portable geometry and by the SIMD tiers as
/// their edge-tile fallback (instantiated with *their* `MR x NR` so packing
/// layouts line up).
///
/// # Safety
/// Same contract as [`kernel`], with `MRK`/`NRK` taking the role of the
/// panel geometry.
#[inline]
pub unsafe fn kernel_mn<T: Scalar, const MRK: usize, const NRK: usize>(
    k: usize,
    a: *const T,
    b: *const T,
    c: *mut T,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut T,
    row_sums: *mut T,
) {
    debug_assert!(m_eff <= MRK && n_eff <= NRK);
    debug_assert!(ldc >= m_eff.max(1));

    // Accumulate the full MRK x NRK product tile in a local array; packed
    // panels are zero-padded so the dead lanes hold exact zeros. Column-major
    // accumulator: acc[j][i].
    let mut acc = [[T::ZERO; MRK]; NRK];
    let mut ap = a;
    let mut bp = b;
    for _ in 0..k {
        // SAFETY: panel layout per contract; each step consumes MRK/NRK
        // elements of the packed slabs.
        unsafe {
            for j in 0..NRK {
                let bv = *bp.add(j);
                for i in 0..MRK {
                    acc[j][i] = (*ap.add(i)).mul_add(bv, acc[j][i]);
                }
            }
            ap = ap.add(MRK);
            bp = bp.add(NRK);
        }
    }

    if col_sums.is_null() {
        // Plain store: C_tile += acc over the valid window.
        for j in 0..n_eff {
            // SAFETY: column j of the tile spans m_eff valid elements.
            unsafe {
                let cp = c.add(j * ldc);
                for i in 0..m_eff {
                    *cp.add(i) = *cp.add(i) + acc[j][i];
                }
            }
        }
    } else {
        // Fused store: write back and accumulate post-update row/col sums
        // while the values are still in registers (paper §2.2).
        for j in 0..n_eff {
            let mut csum = T::ZERO;
            // SAFETY: as above, plus col_sums/row_sums valid per contract.
            unsafe {
                let cp = c.add(j * ldc);
                for i in 0..m_eff {
                    let v = *cp.add(i) + acc[j][i];
                    *cp.add(i) = v;
                    csum += v;
                    *row_sums.add(i) += v;
                }
                *col_sums.add(j) += csum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The cross-tier shape tests live in microkernel::tests; here we cover
    // portable-specific corner cases cheaply.

    #[test]
    fn k_zero_only_sums_existing_c() {
        let a: [f64; 0] = [];
        let b: [f64; 0] = [];
        let ldc = MR;
        let mut c = vec![2.0f64; ldc * NR];
        let mut col = vec![0.0f64; NR];
        let mut row = vec![0.0f64; MR];
        // SAFETY: zero-length panels are valid; C window is MRxNR.
        unsafe {
            kernel::<f64>(
                0,
                a.as_ptr(),
                b.as_ptr(),
                c.as_mut_ptr(),
                ldc,
                MR,
                NR,
                col.as_mut_ptr(),
                row.as_mut_ptr(),
            );
        }
        // With k == 0 the tile is unchanged but sums still reflect C.
        assert!(c.iter().all(|&x| x == 2.0));
        assert!(col.iter().all(|&s| s == 2.0 * MR as f64));
        assert!(row.iter().all(|&s| s == 2.0 * NR as f64));
    }

    #[test]
    fn single_element_tile() {
        let k = 3;
        let mut a = vec![0.0f64; MR * k];
        let mut b = vec![0.0f64; NR * k];
        for p in 0..k {
            a[p * MR] = (p + 1) as f64;
            b[p * NR] = 2.0;
        }
        let mut c = vec![10.0f64; 1];
        // SAFETY: 1x1 window with ldc=1; panels zero-padded.
        unsafe {
            kernel::<f64>(
                k,
                a.as_ptr(),
                b.as_ptr(),
                c.as_mut_ptr(),
                1,
                1,
                1,
                std::ptr::null_mut(),
                std::ptr::null_mut(),
            );
        }
        // 10 + (1+2+3)*2 = 22
        assert_eq!(c[0], 22.0);
    }

    #[test]
    fn custom_geometry_instantiation() {
        // kernel_mn with a non-default geometry (as the SIMD edge path uses).
        const M2: usize = 16;
        const N2: usize = 8;
        let k = 5;
        let mut a = vec![0.0f64; M2 * k];
        let mut b = vec![0.0f64; N2 * k];
        for p in 0..k {
            for i in 0..M2 {
                a[p * M2 + i] = (i + p) as f64;
            }
            for j in 0..N2 {
                b[p * N2 + j] = (j as f64) - 2.0;
            }
        }
        let ldc = M2;
        let mut c = vec![0.0f64; ldc * N2];
        // SAFETY: full M2xN2 window over a contiguous buffer.
        unsafe {
            kernel_mn::<f64, M2, N2>(
                k,
                a.as_ptr(),
                b.as_ptr(),
                c.as_mut_ptr(),
                ldc,
                M2,
                N2,
                std::ptr::null_mut(),
                std::ptr::null_mut(),
            );
        }
        // Check one entry against the closed form: sum_p (i+p)*(j-2).
        let i = 3;
        let j = 5;
        let want: f64 = (0..k).map(|p| (i + p) as f64 * (j as f64 - 2.0)).sum();
        assert_eq!(c[i + j * ldc], want);
    }
}
