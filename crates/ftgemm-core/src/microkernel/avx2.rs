//! AVX2+FMA3 micro-kernels (`std::arch` intrinsics).
//!
//! Geometry per the 16-register ymm file (classic Haswell-era shapes used by
//! OpenBLAS/BLIS):
//!
//! * `f64`: 8x6 tile — 12 accumulator ymm (2 per column of 6 columns).
//! * `f32`: 16x6 tile — same structure with 8-lane vectors.
//!
//! Full tiles take the vector path; edge tiles delegate to the portable
//! generic kernel with matching geometry.

#![allow(unsafe_op_in_unsafe_fn)]
#![cfg(any(target_arch = "x86_64", doc))]

use super::portable;

/// `f64` micro-tile rows.
pub const F64_MR: usize = 8;
/// `f64` micro-tile columns.
pub const F64_NR: usize = 6;
/// `f32` micro-tile rows.
pub const F32_MR: usize = 16;
/// `f32` micro-tile columns.
pub const F32_NR: usize = 6;

/// AVX2 DGEMM 8x6 micro-kernel. See the [module contract](super).
///
/// # Safety
/// Caller must uphold the micro-kernel contract **and** guarantee the CPU
/// supports AVX2 and FMA.
pub unsafe fn dgemm_8x6(
    k: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut f64,
    row_sums: *mut f64,
) {
    if m_eff == F64_MR && n_eff == F64_NR {
        dgemm_8x6_full(k, a, b, c, ldc, col_sums, row_sums);
    } else {
        portable::kernel_mn::<f64, F64_MR, F64_NR>(
            k, a, b, c, ldc, m_eff, n_eff, col_sums, row_sums,
        );
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dgemm_8x6_full(
    k: usize,
    a: *const f64,
    b: *const f64,
    c: *mut f64,
    ldc: usize,
    col_sums: *mut f64,
    row_sums: *mut f64,
) {
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn hsum_pd(v: __m256d) -> f64 {
        let hi = _mm256_extractf128_pd(v, 1);
        let lo = _mm256_castpd256_pd128(v);
        let s = _mm_add_pd(lo, hi);
        let s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
        _mm_cvtsd_f64(s)
    }

    let mut acc_lo = [_mm256_setzero_pd(); F64_NR];
    let mut acc_hi = [_mm256_setzero_pd(); F64_NR];

    let mut ap = a;
    let mut bp = b;
    for _ in 0..k {
        let a0 = _mm256_loadu_pd(ap);
        let a1 = _mm256_loadu_pd(ap.add(4));
        for j in 0..F64_NR {
            let bv = _mm256_set1_pd(*bp.add(j));
            acc_lo[j] = _mm256_fmadd_pd(a0, bv, acc_lo[j]);
            acc_hi[j] = _mm256_fmadd_pd(a1, bv, acc_hi[j]);
        }
        ap = ap.add(F64_MR);
        bp = bp.add(F64_NR);
    }

    if col_sums.is_null() {
        for j in 0..F64_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm256_add_pd(_mm256_loadu_pd(cp), acc_lo[j]);
            let v1 = _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), acc_hi[j]);
            _mm256_storeu_pd(cp, v0);
            _mm256_storeu_pd(cp.add(4), v1);
        }
    } else {
        let mut rsum_lo = _mm256_setzero_pd();
        let mut rsum_hi = _mm256_setzero_pd();
        for j in 0..F64_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm256_add_pd(_mm256_loadu_pd(cp), acc_lo[j]);
            let v1 = _mm256_add_pd(_mm256_loadu_pd(cp.add(4)), acc_hi[j]);
            _mm256_storeu_pd(cp, v0);
            _mm256_storeu_pd(cp.add(4), v1);
            rsum_lo = _mm256_add_pd(rsum_lo, v0);
            rsum_hi = _mm256_add_pd(rsum_hi, v1);
            *col_sums.add(j) += hsum_pd(v0) + hsum_pd(v1);
        }
        let r0 = _mm256_add_pd(_mm256_loadu_pd(row_sums), rsum_lo);
        let r1 = _mm256_add_pd(_mm256_loadu_pd(row_sums.add(4)), rsum_hi);
        _mm256_storeu_pd(row_sums, r0);
        _mm256_storeu_pd(row_sums.add(4), r1);
    }
}

/// AVX2 SGEMM 16x6 micro-kernel. See the [module contract](super).
///
/// # Safety
/// Caller must uphold the micro-kernel contract **and** guarantee the CPU
/// supports AVX2 and FMA.
pub unsafe fn sgemm_16x6(
    k: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    m_eff: usize,
    n_eff: usize,
    col_sums: *mut f32,
    row_sums: *mut f32,
) {
    if m_eff == F32_MR && n_eff == F32_NR {
        sgemm_16x6_full(k, a, b, c, ldc, col_sums, row_sums);
    } else {
        portable::kernel_mn::<f32, F32_MR, F32_NR>(
            k, a, b, c, ldc, m_eff, n_eff, col_sums, row_sums,
        );
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn sgemm_16x6_full(
    k: usize,
    a: *const f32,
    b: *const f32,
    c: *mut f32,
    ldc: usize,
    col_sums: *mut f32,
    row_sums: *mut f32,
) {
    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn hsum_ps(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
        let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
        _mm_cvtss_f32(s)
    }

    let mut acc_lo = [_mm256_setzero_ps(); F32_NR];
    let mut acc_hi = [_mm256_setzero_ps(); F32_NR];

    let mut ap = a;
    let mut bp = b;
    for _ in 0..k {
        let a0 = _mm256_loadu_ps(ap);
        let a1 = _mm256_loadu_ps(ap.add(8));
        for j in 0..F32_NR {
            let bv = _mm256_set1_ps(*bp.add(j));
            acc_lo[j] = _mm256_fmadd_ps(a0, bv, acc_lo[j]);
            acc_hi[j] = _mm256_fmadd_ps(a1, bv, acc_hi[j]);
        }
        ap = ap.add(F32_MR);
        bp = bp.add(F32_NR);
    }

    if col_sums.is_null() {
        for j in 0..F32_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm256_add_ps(_mm256_loadu_ps(cp), acc_lo[j]);
            let v1 = _mm256_add_ps(_mm256_loadu_ps(cp.add(8)), acc_hi[j]);
            _mm256_storeu_ps(cp, v0);
            _mm256_storeu_ps(cp.add(8), v1);
        }
    } else {
        let mut rsum_lo = _mm256_setzero_ps();
        let mut rsum_hi = _mm256_setzero_ps();
        for j in 0..F32_NR {
            let cp = c.add(j * ldc);
            let v0 = _mm256_add_ps(_mm256_loadu_ps(cp), acc_lo[j]);
            let v1 = _mm256_add_ps(_mm256_loadu_ps(cp.add(8)), acc_hi[j]);
            _mm256_storeu_ps(cp, v0);
            _mm256_storeu_ps(cp.add(8), v1);
            rsum_lo = _mm256_add_ps(rsum_lo, v0);
            rsum_hi = _mm256_add_ps(rsum_hi, v1);
            *col_sums.add(j) += hsum_ps(v0) + hsum_ps(v1);
        }
        let r0 = _mm256_add_ps(_mm256_loadu_ps(row_sums), rsum_lo);
        let r1 = _mm256_add_ps(_mm256_loadu_ps(row_sums.add(8)), rsum_hi);
        _mm256_storeu_ps(row_sums, r0);
        _mm256_storeu_ps(row_sums.add(8), r1);
    }
}
