//! Error types shared across the FT-GEMM workspace.

use std::fmt;

/// Result alias used throughout `ftgemm-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the GEMM substrate.
///
/// The hot paths are panic-free by construction; errors surface only from
/// argument validation at the public API boundary and from allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Matrix operand shapes are inconsistent with the requested operation.
    ShapeMismatch {
        /// Human-readable description of the conflicting shapes.
        context: String,
    },
    /// A dimension that must be non-zero was zero, or exceeds supported range.
    InvalidDimension {
        /// Name of the offending dimension (e.g. `"m"`).
        name: &'static str,
        /// The value that was rejected.
        value: usize,
    },
    /// A leading dimension is smaller than the number of rows it must span.
    InvalidLeadingDimension {
        /// Name of the operand (e.g. `"A"`).
        operand: &'static str,
        /// The leading dimension supplied.
        ld: usize,
        /// The minimum acceptable leading dimension.
        min: usize,
    },
    /// Aligned allocation failed (size overflow or allocator failure).
    AllocationFailed {
        /// Number of bytes requested.
        bytes: usize,
    },
    /// Blocking parameters are internally inconsistent.
    InvalidBlocking {
        /// Human-readable description.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ShapeMismatch { context } => {
                write!(f, "shape mismatch: {context}")
            }
            CoreError::InvalidDimension { name, value } => {
                write!(f, "invalid dimension {name} = {value}")
            }
            CoreError::InvalidLeadingDimension { operand, ld, min } => {
                write!(
                    f,
                    "invalid leading dimension for {operand}: ld = {ld}, need >= {min}"
                )
            }
            CoreError::AllocationFailed { bytes } => {
                write!(f, "aligned allocation of {bytes} bytes failed")
            }
            CoreError::InvalidBlocking { context } => {
                write!(f, "invalid blocking parameters: {context}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = CoreError::ShapeMismatch {
            context: "A is 3x4 but B is 5x6".into(),
        };
        assert_eq!(e.to_string(), "shape mismatch: A is 3x4 but B is 5x6");
    }

    #[test]
    fn display_invalid_dimension() {
        let e = CoreError::InvalidDimension {
            name: "k",
            value: 0,
        };
        assert!(e.to_string().contains("k = 0"));
    }

    #[test]
    fn display_invalid_ld() {
        let e = CoreError::InvalidLeadingDimension {
            operand: "A",
            ld: 3,
            min: 8,
        };
        let s = e.to_string();
        assert!(s.contains("A"));
        assert!(s.contains("3"));
        assert!(s.contains("8"));
    }

    #[test]
    fn display_allocation_failed() {
        let e = CoreError::AllocationFailed { bytes: 1024 };
        assert!(e.to_string().contains("1024"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::InvalidDimension {
            name: "m",
            value: 0,
        });
    }
}
