//! Packing of `A` and `B` blocks into micro-panel layout, plus the **fused**
//! variants that piggyback checksum encoding on the packing loads (paper
//! §2.2).
//!
//! ## Layouts
//!
//! Packed `A~` for an `m x k` block with micro-tile rows `MR`:
//! `ceil(m / MR)` slabs, slab `p` holding rows `[p*MR, p*MR + MR)`; inside a
//! slab, elements are k-major: `a~[p*(MR*k) + q*MR + i] = alpha * A[p*MR+i, q]`,
//! zero-padded in `i` past the block edge. The micro-kernel then streams one
//! slab linearly.
//!
//! Packed `B~` for a `k x n` block with micro-tile columns `NR`:
//! `ceil(n / NR)` slabs, slab `q` holding columns `[q*NR, q*NR + NR)`;
//! `b~[q*(NR*k) + p*NR + j] = B[p, q*NR+j]`, zero-padded in `j`.
//!
//! ## Fusion (the paper's core trick)
//!
//! Each element of `B` loaded for packing is reused **three** times:
//! 1. stored into `B~`,
//! 2. accumulated into the panel checksum `bc[p] += B[p, j]` (paper's B_c),
//! 3. multiplied into the *encoded* column checksum of `C`:
//!    `enc_col[j] += ar[p] * B[p, j]` (paper's C_r update, with `ar = alpha *
//!    e^T A` precomputed).
//!
//! Each element of `A` loaded for packing is reused twice: stored into `A~`
//! (scaled by `alpha`) and multiplied into the encoded row checksum of `C`:
//! `enc_row[i] += a~[i, q] * bc[q]` (paper's C_c update).

use crate::matrix::MatRef;
use crate::scalar::Scalar;

/// Packs an `m x k` block of `A` (scaled by `alpha`) into micro-panel layout.
///
/// `out` must hold at least `ceil(m/mr)*mr*k` elements.
pub fn pack_a<T: Scalar>(a: &MatRef<'_, T>, alpha: T, mr: usize, out: &mut [T]) {
    let (m, k) = (a.nrows(), a.ncols());
    let panels = m.div_ceil(mr);
    assert!(out.len() >= panels * mr * k, "pack_a: out buffer too small");

    for p in 0..panels {
        let row0 = p * mr;
        let rows = mr.min(m - row0);
        let slab = &mut out[p * mr * k..(p + 1) * mr * k];
        for q in 0..k {
            let col = &a.col(q)[row0..row0 + rows];
            let dst = &mut slab[q * mr..q * mr + mr];
            for i in 0..rows {
                dst[i] = alpha * col[i];
            }
            for d in dst[rows..].iter_mut() {
                *d = T::ZERO;
            }
        }
    }
}

/// Fused `A` packing: additionally accumulates the encoded row checksum of
/// `C`, `enc_row[i] += a~[i, q] * bc[q]`, reusing each packed element.
///
/// * `bc` — the (already reduced) panel checksum `B(panel) * e`, length `k`.
/// * `enc_row` — length `m`; accumulated in place.
pub fn pack_a_fused<T: Scalar>(
    a: &MatRef<'_, T>,
    alpha: T,
    mr: usize,
    out: &mut [T],
    bc: &[T],
    enc_row: &mut [T],
) {
    let (m, k) = (a.nrows(), a.ncols());
    assert_eq!(bc.len(), k, "pack_a_fused: bc length mismatch");
    assert_eq!(enc_row.len(), m, "pack_a_fused: enc_row length mismatch");
    let panels = m.div_ceil(mr);
    assert!(
        out.len() >= panels * mr * k,
        "pack_a_fused: out buffer too small"
    );

    for p in 0..panels {
        let row0 = p * mr;
        let rows = mr.min(m - row0);
        let slab = &mut out[p * mr * k..(p + 1) * mr * k];
        let enc = &mut enc_row[row0..row0 + rows];
        for q in 0..k {
            let col = &a.col(q)[row0..row0 + rows];
            let dst = &mut slab[q * mr..q * mr + mr];
            let bq = bc[q];
            for i in 0..rows {
                let v = alpha * col[i];
                dst[i] = v;
                enc[i] = v.mul_add(bq, enc[i]);
            }
            for d in dst[rows..].iter_mut() {
                *d = T::ZERO;
            }
        }
    }
}

/// Packs a `k x n` block of `B` into micro-panel layout.
///
/// `out` must hold at least `k * ceil(n/nr)*nr` elements.
pub fn pack_b<T: Scalar>(b: &MatRef<'_, T>, nr: usize, out: &mut [T]) {
    let (k, n) = (b.nrows(), b.ncols());
    let panels = n.div_ceil(nr);
    assert!(out.len() >= panels * nr * k, "pack_b: out buffer too small");

    for q in 0..panels {
        let col0 = q * nr;
        let cols = nr.min(n - col0);
        let slab = &mut out[q * nr * k..(q + 1) * nr * k];
        if cols < nr {
            slab.fill(T::ZERO);
        }
        for j in 0..cols {
            let col = b.col(col0 + j);
            for p in 0..k {
                slab[p * nr + j] = col[p];
            }
        }
    }
}

/// Fused `B` packing: the paper's triple reuse of every loaded `B` element.
///
/// * `ar` — `alpha * (e^T A)` restricted to this `k` panel, length `k`.
/// * `bc` — panel checksum output, length `k`; **accumulated** (callers zero
///   it per panel, the parallel driver accumulates thread partials).
/// * `enc_col` — encoded column checksum of `C` for these `n` columns,
///   length `n`; accumulated in place.
pub fn pack_b_fused<T: Scalar>(
    b: &MatRef<'_, T>,
    nr: usize,
    out: &mut [T],
    ar: &[T],
    bc: &mut [T],
    enc_col: &mut [T],
) {
    let (k, n) = (b.nrows(), b.ncols());
    assert_eq!(ar.len(), k, "pack_b_fused: ar length mismatch");
    assert_eq!(bc.len(), k, "pack_b_fused: bc length mismatch");
    assert_eq!(enc_col.len(), n, "pack_b_fused: enc_col length mismatch");
    let panels = n.div_ceil(nr);
    assert!(
        out.len() >= panels * nr * k,
        "pack_b_fused: out buffer too small"
    );

    for q in 0..panels {
        let col0 = q * nr;
        let cols = nr.min(n - col0);
        let slab = &mut out[q * nr * k..(q + 1) * nr * k];
        if cols < nr {
            slab.fill(T::ZERO);
        }
        for j in 0..cols {
            let col = b.col(col0 + j);
            let mut enc = T::ZERO;
            for p in 0..k {
                let v = col[p];
                slab[p * nr + j] = v; // reuse 1: pack
                bc[p] += v; // reuse 2: B_c
                enc = ar[p].mul_add(v, enc); // reuse 3: C_r encode
            }
            enc_col[col0 + j] += enc;
        }
    }
}

/// Column sums of `A` scaled by `alpha`: `ar[q] = alpha * Σ_i A[i, q]`
/// (the paper's A_r checksum, encoded once per GEMM).
pub fn col_sums_scaled<T: Scalar>(a: &MatRef<'_, T>, alpha: T, out: &mut [T]) {
    let (m, k) = (a.nrows(), a.ncols());
    assert_eq!(out.len(), k, "col_sums_scaled: out length mismatch");
    for q in 0..k {
        let col = a.col(q);
        let mut s = T::ZERO;
        for i in 0..m {
            s += col[i];
        }
        out[q] = alpha * s;
    }
    let _ = m;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn pack_a_layout_exact_multiple() {
        let m = 8;
        let k = 3;
        let mr = 4;
        let a = Matrix::<f64>::from_fn(m, k, |i, j| (i * 100 + j) as f64);
        let mut out = vec![f64::NAN; (m / mr) * mr * k];
        pack_a(&a.as_ref(), 1.0, mr, &mut out);
        for p in 0..m / mr {
            for q in 0..k {
                for i in 0..mr {
                    assert_eq!(
                        out[p * mr * k + q * mr + i],
                        ((p * mr + i) * 100 + q) as f64,
                        "panel {p} q {q} i {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn pack_a_zero_pads_edge() {
        let m = 5;
        let k = 2;
        let mr = 4;
        let a = Matrix::<f64>::filled(m, k, 1.0);
        let mut out = vec![f64::NAN; 2 * mr * k];
        pack_a(&a.as_ref(), 1.0, mr, &mut out);
        // second panel has 1 valid row, 3 padded
        for q in 0..k {
            assert_eq!(out[mr * k + q * mr], 1.0);
            for i in 1..mr {
                assert_eq!(out[mr * k + q * mr + i], 0.0);
            }
        }
    }

    #[test]
    fn pack_a_applies_alpha() {
        let a = Matrix::<f64>::filled(4, 2, 3.0);
        let mut out = vec![0.0; 4 * 2];
        pack_a(&a.as_ref(), -2.0, 4, &mut out);
        assert!(out.iter().all(|&v| v == -6.0));
    }

    #[test]
    fn pack_b_layout() {
        let k = 3;
        let n = 8;
        let nr = 4;
        let b = Matrix::<f64>::from_fn(k, n, |p, j| (p * 100 + j) as f64);
        let mut out = vec![f64::NAN; k * n];
        pack_b(&b.as_ref(), nr, &mut out);
        for q in 0..n / nr {
            for p in 0..k {
                for j in 0..nr {
                    assert_eq!(out[q * nr * k + p * nr + j], (p * 100 + q * nr + j) as f64);
                }
            }
        }
    }

    #[test]
    fn pack_b_zero_pads_edge() {
        let k = 2;
        let n = 5;
        let nr = 4;
        let b = Matrix::<f64>::filled(k, n, 1.0);
        let mut out = vec![f64::NAN; k * 2 * nr];
        pack_b(&b.as_ref(), nr, &mut out);
        // second slab: col 0 valid, cols 1..4 zero
        for p in 0..k {
            assert_eq!(out[nr * k + p * nr], 1.0);
            for j in 1..nr {
                assert_eq!(out[nr * k + p * nr + j], 0.0);
            }
        }
    }

    #[test]
    fn fused_b_checksums_match_definitions() {
        let k = 7;
        let n = 10;
        let nr = 4;
        let b = Matrix::<f64>::random(k, n, 5);
        let ar: Vec<f64> = (0..k).map(|p| 0.5 * (p as f64 + 1.0)).collect();

        let mut out = vec![0.0; k * n.div_ceil(nr) * nr];
        let mut bc = vec![0.0; k];
        let mut enc_col = vec![0.25; n]; // nonzero start: accumulation semantics

        pack_b_fused(&b.as_ref(), nr, &mut out, &ar, &mut bc, &mut enc_col);

        // bc[p] = Σ_j B[p,j]
        for p in 0..k {
            let want: f64 = (0..n).map(|j| b.get(p, j)).sum();
            assert!((bc[p] - want).abs() < 1e-12, "bc[{p}]");
        }
        // enc_col[j] = 0.25 + Σ_p ar[p]*B[p,j]
        for j in 0..n {
            let want: f64 = 0.25 + (0..k).map(|p| ar[p] * b.get(p, j)).sum::<f64>();
            assert!((enc_col[j] - want).abs() < 1e-12, "enc_col[{j}]");
        }
        // Packed values identical to unfused packing.
        let mut plain = vec![0.0; out.len()];
        pack_b(&b.as_ref(), nr, &mut plain);
        assert_eq!(out, plain);
    }

    #[test]
    fn fused_a_checksum_matches_definition() {
        let m = 11;
        let k = 6;
        let mr = 4;
        let alpha = 1.5;
        let a = Matrix::<f64>::random(m, k, 6);
        let bc: Vec<f64> = (0..k).map(|q| (q as f64) - 2.5).collect();

        let mut out = vec![0.0; m.div_ceil(mr) * mr * k];
        let mut enc_row = vec![1.0; m];
        pack_a_fused(&a.as_ref(), alpha, mr, &mut out, &bc, &mut enc_row);

        for i in 0..m {
            let want: f64 = 1.0 + (0..k).map(|q| alpha * a.get(i, q) * bc[q]).sum::<f64>();
            assert!((enc_row[i] - want).abs() < 1e-12, "enc_row[{i}]");
        }
        let mut plain = vec![0.0; out.len()];
        pack_a(&a.as_ref(), alpha, mr, &mut plain);
        assert_eq!(out, plain);
    }

    #[test]
    fn col_sums_scaled_matches() {
        let a = Matrix::<f64>::random(5, 4, 7);
        let mut ar = vec![0.0; 4];
        col_sums_scaled(&a.as_ref(), 2.0, &mut ar);
        for q in 0..4 {
            let want: f64 = 2.0 * (0..5).map(|i| a.get(i, q)).sum::<f64>();
            assert!((ar[q] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn pack_from_submatrix_view() {
        // Packing must respect non-trivial leading dimensions.
        let big = Matrix::<f64>::from_fn(10, 10, |i, j| (i * 10 + j) as f64);
        let view = big.as_ref().submatrix(2, 3, 4, 2);
        let mut out = vec![0.0; 4 * 2];
        pack_a(&view, 1.0, 4, &mut out);
        assert_eq!(out[0], 23.0); // A[2,3]
        assert_eq!(out[1], 33.0); // A[3,3]
        assert_eq!(out[4], 24.0); // A[2,4]
    }

    #[test]
    fn empty_k_panel() {
        let a = Matrix::<f64>::zeros(4, 0);
        let mut out = vec![0.0; 0];
        pack_a(&a.as_ref(), 1.0, 4, &mut out); // must not panic
        let b = Matrix::<f64>::zeros(0, 4);
        let mut outb = vec![0.0; 0];
        pack_b(&b.as_ref(), 4, &mut outb);
    }
}

/// Packs an `m x k` **logical** block of `A = src^T` (i.e. `src` is a
/// `k x m` column-major view) into micro-panel layout, scaled by `alpha`.
///
/// Reads are contiguous (each logical row of `A` is one column of `src`);
/// writes stride by `mr` — the standard transposed-packing trade.
pub fn pack_a_trans<T: Scalar>(src: &MatRef<'_, T>, alpha: T, mr: usize, out: &mut [T]) {
    let (k, m) = (src.nrows(), src.ncols());
    let panels = m.div_ceil(mr);
    assert!(
        out.len() >= panels * mr * k,
        "pack_a_trans: out buffer too small"
    );

    for p in 0..panels {
        let row0 = p * mr;
        let rows = mr.min(m - row0);
        let slab = &mut out[p * mr * k..(p + 1) * mr * k];
        if rows < mr {
            slab.fill(T::ZERO);
        }
        for i in 0..rows {
            let col = src.col(row0 + i);
            for q in 0..k {
                slab[q * mr + i] = alpha * col[q];
            }
        }
    }
}

/// Packs a `k x n` **logical** block of `B = src^T` (i.e. `src` is an
/// `n x k` column-major view) into micro-panel layout.
pub fn pack_b_trans<T: Scalar>(src: &MatRef<'_, T>, nr: usize, out: &mut [T]) {
    let (n, k) = (src.nrows(), src.ncols());
    let panels = n.div_ceil(nr);
    assert!(
        out.len() >= panels * nr * k,
        "pack_b_trans: out buffer too small"
    );

    for q in 0..panels {
        let col0 = q * nr;
        let cols = nr.min(n - col0);
        let slab = &mut out[q * nr * k..(q + 1) * nr * k];
        if cols < nr {
            slab.fill(T::ZERO);
        }
        // Logical B[p, col0+j] = src[col0+j, p]: walk src columns (= logical
        // B rows) contiguously.
        for p in 0..k {
            let col = src.col(p);
            for j in 0..cols {
                slab[p * nr + j] = col[col0 + j];
            }
        }
    }
}

#[cfg(test)]
mod trans_tests {
    use super::*;
    use crate::matrix::Matrix;

    #[test]
    fn pack_a_trans_matches_pack_a_of_transpose() {
        let src = Matrix::<f64>::random(9, 13, 31); // k x m storage
        let logical_a = src.transpose(); // m x k
        let mr = 4;
        let (m, k) = (logical_a.nrows(), logical_a.ncols());
        let mut out1 = vec![0.0; m.div_ceil(mr) * mr * k];
        let mut out2 = vec![0.0; m.div_ceil(mr) * mr * k];
        pack_a(&logical_a.as_ref(), 2.0, mr, &mut out1);
        pack_a_trans(&src.as_ref(), 2.0, mr, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn pack_b_trans_matches_pack_b_of_transpose() {
        let src = Matrix::<f64>::random(11, 7, 32); // n x k storage
        let logical_b = src.transpose(); // k x n
        let nr = 4;
        let (k, n) = (logical_b.nrows(), logical_b.ncols());
        let mut out1 = vec![0.0; n.div_ceil(nr) * nr * k];
        let mut out2 = vec![0.0; n.div_ceil(nr) * nr * k];
        pack_b(&logical_b.as_ref(), nr, &mut out1);
        pack_b_trans(&src.as_ref(), nr, &mut out2);
        assert_eq!(out1, out2);
    }

    #[test]
    fn pack_trans_from_submatrix() {
        let big = Matrix::<f64>::from_fn(12, 12, |i, j| (i * 12 + j) as f64);
        let src = big.as_ref().submatrix(1, 2, 5, 6); // k=5 x m=6 view
        let logical = src.to_owned().transpose();
        let mr = 4;
        let mut out1 = vec![0.0; 2 * mr * 5];
        let mut out2 = vec![0.0; 2 * mr * 5];
        pack_a(&logical.as_ref(), 1.0, mr, &mut out1);
        pack_a_trans(&src, 1.0, mr, &mut out2);
        assert_eq!(out1, out2);
    }
}
