//! Blocking parameters `MC`, `NC`, `KC` (and micro-tile shape `MR x NR`).
//!
//! The GotoBLAS analysis the paper adopts (§2.1): the step sizes of the
//! three outer loops decide which cache layer each packed operand lives in —
//!
//! * a `KC x NR` micro-panel of `B~` should sit in **L1d**,
//! * the `MC x KC` packed block `A~` should fill about half of **L2**,
//! * the `KC x NC` packed block `B~` should fit in **L3**.
//!
//! Parameters are derived from a [`CacheInfo`] at runtime and can be
//! overridden for ablation studies (experiment A2 in DESIGN.md).

use crate::cpu::CacheInfo;
use crate::error::{CoreError, Result};
use crate::scalar::Scalar;

/// Blocking configuration for one GEMM invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockingParams {
    /// Rows of the micro-tile (register block).
    pub mr: usize,
    /// Columns of the micro-tile (register block).
    pub nr: usize,
    /// Row block: rows of `A~` kept resident in L2.
    pub mc: usize,
    /// Column block: columns of `B~` kept resident in L3.
    pub nc: usize,
    /// Depth block: the shared `k` extent of `A~` and `B~`.
    pub kc: usize,
}

impl BlockingParams {
    /// Derives parameters for element type `T` and micro-tile `mr x nr`
    /// from the cache hierarchy.
    pub fn derive<T: Scalar>(cache: &CacheInfo, mr: usize, nr: usize) -> Self {
        let elt = std::mem::size_of::<T>();

        // KC: a KC x NR panel of B~ plus a KC x MR panel of A~ should fit in
        // L1d with room for the C tile; use ~half of L1 for the B panel.
        let kc_raw = (cache.l1d / 2) / (nr * elt);
        let kc = clamp_mult(kc_raw, 64, 64, 512);

        // MC: A~ (MC x KC) fills ~half of L2.
        let mc_raw = (cache.l2 / 2) / (kc * elt);
        let mc = clamp_mult(mc_raw, mr, mr, 1024);

        // NC: B~ (KC x NC) fills ~half of L3 (shared; the parallel driver
        // divides this among threads when packing).
        let nc_raw = (cache.l3 / 2) / (kc * elt);
        let nc = clamp_mult(nc_raw, nr, nr, 8192);

        BlockingParams { mr, nr, mc, nc, kc }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        let check = |name: &'static str, v: usize| {
            if v == 0 {
                Err(CoreError::InvalidDimension { name, value: v })
            } else {
                Ok(())
            }
        };
        check("mr", self.mr)?;
        check("nr", self.nr)?;
        check("mc", self.mc)?;
        check("nc", self.nc)?;
        check("kc", self.kc)?;
        if self.mc % self.mr != 0 {
            return Err(CoreError::InvalidBlocking {
                context: format!("mc ({}) must be a multiple of mr ({})", self.mc, self.mr),
            });
        }
        if self.nc % self.nr != 0 {
            return Err(CoreError::InvalidBlocking {
                context: format!("nc ({}) must be a multiple of nr ({})", self.nc, self.nr),
            });
        }
        Ok(())
    }

    /// Packed-`A~` buffer length in elements (one `MC x KC` block, zero-padded
    /// to full micro-panels).
    pub fn packed_a_len(&self) -> usize {
        self.mc * self.kc
    }

    /// Packed-`B~` buffer length in elements (one `KC x NC` block, zero-padded
    /// to full micro-panels).
    pub fn packed_b_len(&self) -> usize {
        self.kc * self.nc
    }

    /// Returns a copy with a different `(mc, nc, kc)` triple (for ablations).
    pub fn with_blocks(mut self, mc: usize, nc: usize, kc: usize) -> Self {
        self.mc = mc;
        self.nc = nc;
        self.kc = kc;
        self
    }
}

/// Rounds `v` down to a multiple of `mult`, clamped into `[lo, hi]`. The
/// bounds are first snapped onto the multiple grid (`lo` up, `hi` down) so
/// the result is a multiple of `mult` even when a bound is not — e.g. the
/// portable f64 kernel's `nr = 6` against the `nc <= 8192` cap.
fn clamp_mult(v: usize, mult: usize, lo: usize, hi: usize) -> usize {
    let lo = lo.div_ceil(mult) * mult;
    let hi = ((hi / mult) * mult).max(lo);
    let down = (v / mult).max(1) * mult;
    down.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CacheInfo;

    #[test]
    fn derive_f64_valid() {
        let p = BlockingParams::derive::<f64>(&CacheInfo::CASCADE_LAKE, 16, 8);
        p.validate().unwrap();
        assert_eq!(p.mr, 16);
        assert_eq!(p.nr, 8);
        assert!(p.kc >= 64 && p.kc <= 512);
        assert_eq!(p.mc % p.mr, 0);
        assert_eq!(p.nc % p.nr, 0);
    }

    #[test]
    fn derive_f32_larger_kc_or_equal() {
        let p64 = BlockingParams::derive::<f64>(&CacheInfo::CASCADE_LAKE, 16, 8);
        let p32 = BlockingParams::derive::<f32>(&CacheInfo::CASCADE_LAKE, 32, 8);
        assert!(p32.kc >= p64.kc);
    }

    #[test]
    fn l2_residency_budget() {
        // A~ (mc x kc f64) should not exceed ~60% of L2.
        let c = CacheInfo::CASCADE_LAKE;
        let p = BlockingParams::derive::<f64>(&c, 16, 8);
        let a_bytes = p.mc * p.kc * 8;
        assert!(
            a_bytes <= c.l2 * 6 / 10,
            "A~ = {a_bytes} bytes exceeds L2 budget"
        );
    }

    #[test]
    fn validate_rejects_bad_mc() {
        let p = BlockingParams {
            mr: 8,
            nr: 4,
            mc: 12, // not a multiple of 8
            nc: 64,
            kc: 64,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero() {
        let p = BlockingParams {
            mr: 8,
            nr: 4,
            mc: 0,
            nc: 64,
            kc: 64,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn packed_lengths() {
        let p = BlockingParams {
            mr: 8,
            nr: 4,
            mc: 64,
            nc: 128,
            kc: 32,
        };
        assert_eq!(p.packed_a_len(), 64 * 32);
        assert_eq!(p.packed_b_len(), 32 * 128);
    }

    #[test]
    fn with_blocks_override() {
        let p =
            BlockingParams::derive::<f64>(&CacheInfo::CASCADE_LAKE, 16, 8).with_blocks(32, 64, 128);
        assert_eq!((p.mc, p.nc, p.kc), (32, 64, 128));
        assert_eq!(p.mr, 16);
    }

    #[test]
    fn clamp_mult_behaviour() {
        assert_eq!(clamp_mult(100, 16, 16, 64), 64);
        assert_eq!(clamp_mult(7, 16, 16, 64), 16);
        assert_eq!(clamp_mult(33, 16, 16, 64), 32);
    }

    #[test]
    fn tiny_cache_still_valid() {
        let tiny = CacheInfo {
            l1d: 4 * 1024,
            l2: 16 * 1024,
            l3: 64 * 1024,
            line: 64,
        };
        let p = BlockingParams::derive::<f64>(&tiny, 8, 4);
        p.validate().unwrap();
    }
}
