//! The [`Scalar`] abstraction: the two IEEE-754 element types GEMM supports.
//!
//! The paper evaluates DGEMM (`f64`); we additionally support SGEMM (`f32`)
//! since every algorithmic component is type-generic. The trait carries just
//! enough surface for the GEMM drivers, the checksum algebra, and the fault
//! injector (bit-level access for bit-flip errors).

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Element type for all GEMM and checksum computations.
///
/// Implemented for `f32` and `f64` only. The `'static` bound enables
/// `TypeId`-based selection of type-specialized SIMD micro-kernels.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon (`f32::EPSILON` / `f64::EPSILON`).
    const EPSILON: Self;
    /// Smallest positive normal value.
    const MIN_POSITIVE: Self;
    /// Short type tag for reporting ("f32"/"f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64` (used for test tolerances and constants).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from an index (exact for the sizes GEMM handles).
    fn from_usize(v: usize) -> Self;

    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE maximum (NaN-propagating is fine for our uses).
    fn max(self, other: Self) -> Self;
    /// IEEE minimum.
    fn min(self, other: Self) -> Self;
    /// Multiply-add `self * a + b`.
    ///
    /// Deliberately **not** `f64::mul_add`: without FMA in the compile-time
    /// target features that intrinsic lowers to a libm call (a disaster in
    /// hot loops), whereas a plain `a * b + c` auto-vectorizes and is fused
    /// to FMA by LLVM whenever the target allows. The SIMD micro-kernels
    /// issue real FMA intrinsics behind runtime feature detection.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;

    /// Raw bit pattern widened to `u64` (f32 occupies the low 32 bits).
    fn to_bits_u64(self) -> u64;
    /// Inverse of [`Scalar::to_bits_u64`].
    fn from_bits_u64(bits: u64) -> Self;
    /// Number of bits in the representation (32 or 64).
    const BITS: u32;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const MIN_POSITIVE: Self = f64::MIN_POSITIVE;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f64::min(self, other)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits()
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f64::from_bits(bits)
    }
    const BITS: u32 = 64;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const MIN_POSITIVE: Self = f32::MIN_POSITIVE;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn from_usize(v: usize) -> Self {
        v as f32
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn min(self, other: Self) -> Self {
        f32::min(self, other)
    }
    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn to_bits_u64(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline(always)]
    fn from_bits_u64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
    const BITS: u32 = 32;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<T: Scalar>() {
        assert_eq!(T::ZERO + T::ONE, T::ONE);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
        assert_eq!(T::from_f64(-2.0).abs(), T::from_f64(2.0));
        assert_eq!(T::from_f64(9.0).sqrt(), T::from_f64(3.0));
        assert_eq!(T::from_f64(2.0).max(T::from_f64(3.0)), T::from_f64(3.0));
        assert_eq!(T::from_f64(2.0).min(T::from_f64(3.0)), T::from_f64(2.0));
        let fma = T::from_f64(2.0).mul_add(T::from_f64(3.0), T::from_f64(1.0));
        assert_eq!(fma, T::from_f64(7.0));
        assert!(T::ONE.is_finite());
        assert!(!(T::ONE / T::ZERO).is_finite());
    }

    #[test]
    fn f64_ops() {
        exercise::<f64>();
        assert_eq!(f64::NAME, "f64");
        assert_eq!(<f64 as Scalar>::BITS, 64);
    }

    #[test]
    fn f32_ops() {
        exercise::<f32>();
        assert_eq!(f32::NAME, "f32");
        assert_eq!(<f32 as Scalar>::BITS, 32);
    }

    #[test]
    fn bit_round_trip_f64() {
        for v in [
            0.0f64,
            -1.5,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            assert_eq!(f64::from_bits_u64(v.to_bits_u64()), v);
        }
    }

    #[test]
    fn bit_round_trip_f32() {
        for v in [
            0.0f32,
            -1.5,
            std::f32::consts::E,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            assert_eq!(f32::from_bits_u64(v.to_bits_u64()), v);
        }
        // High bits must be ignored for f32.
        assert_eq!(
            f32::from_bits_u64(0xFFFF_FFFF_0000_0000 | 1.0f32.to_bits() as u64),
            1.0
        );
    }

    #[test]
    fn bitflip_changes_value() {
        let v = 1.0f64;
        let flipped = f64::from_bits_u64(v.to_bits_u64() ^ (1 << 52));
        assert_ne!(v, flipped);
    }
}
