//! 64-byte aligned heap buffers for packed panels and matrices.
//!
//! SIMD micro-kernels issue aligned vector loads against packed panels, and
//! cache-line (64 B) alignment avoids split loads on every x86-64
//! micro-architecture the paper targets (Cascade Lake). `Vec<T>` makes no
//! alignment promise beyond `align_of::<T>()`, so we own the allocation.

use crate::error::{CoreError, Result};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Cache-line alignment (bytes) used for every buffer in the workspace.
pub const ALIGN: usize = 64;

/// A fixed-length, 64-byte aligned, zero-initialized heap buffer.
///
/// Semantically a `Box<[T]>` with stronger alignment. The element type is
/// restricted to `Copy` types without drop glue, which is all the numeric
/// code needs; this keeps deallocation trivially correct.
pub struct AlignedVec<T: Copy> {
    ptr: NonNull<T>,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, exactly like Box<[T]>.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: &AlignedVec only hands out &T / &[T].
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocates a zeroed buffer of `len` elements.
    ///
    /// Returns an error if the byte size overflows `isize` or the layout is
    /// invalid; aborts (via `handle_alloc_error`) if the allocator itself
    /// fails, matching `Vec` behaviour.
    pub fn zeroed(len: usize) -> Result<Self> {
        if len == 0 {
            return Ok(Self {
                ptr: NonNull::dangling(),
                len: 0,
            });
        }
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(CoreError::AllocationFailed { bytes: usize::MAX })?;
        let layout = Layout::from_size_align(bytes, ALIGN.max(std::mem::align_of::<T>()))
            .map_err(|_| CoreError::AllocationFailed { bytes })?;
        // SAFETY: layout has non-zero size (len > 0, size_of::<T>() > 0 for
        // the numeric types used here; zero-sized T would make bytes == 0 and
        // is rejected by the layout construction below).
        if bytes == 0 {
            return Err(CoreError::AllocationFailed { bytes });
        }
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        Ok(Self { ptr, len })
    }

    /// Allocates a zeroed buffer, panicking on failure.
    ///
    /// Convenience for contexts (tests, benches) where allocation failure is
    /// not meaningfully recoverable.
    pub fn zeroed_or_panic(len: usize) -> Self {
        Self::zeroed(len).expect("aligned allocation failed")
    }

    /// Builds a buffer by copying from a slice.
    pub fn from_slice(src: &[T]) -> Result<Self> {
        let mut v = Self::zeroed(src.len())?;
        v.as_mut_slice().copy_from_slice(src);
        Ok(v)
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable slice view.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: ptr/len describe an owned, initialized allocation.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable slice view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: exclusive access through &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw const pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr.as_ptr()
    }

    /// Overwrites every element with `value`.
    pub fn fill(&mut self, value: T) {
        self.as_mut_slice().fill(value);
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        let bytes = self.len * std::mem::size_of::<T>();
        let layout =
            Layout::from_size_align(bytes, ALIGN.max(std::mem::align_of::<T>())).expect("layout");
        // SAFETY: allocated with the identical layout in `zeroed`.
        unsafe { dealloc(self.ptr.as_ptr().cast(), layout) };
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice()).expect("aligned allocation failed")
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedVec")
            .field("len", &self.len)
            .field("align", &ALIGN)
            .finish()
    }
}

/// A reusable, growable aligned scratch buffer.
///
/// GEMM drivers reuse packing buffers across calls; this wrapper grows (never
/// shrinks) an [`AlignedVec`] on demand and hands out zero-initialized space.
#[derive(Debug)]
pub struct Scratch<T: Copy> {
    buf: AlignedVec<T>,
}

impl<T: Copy> Scratch<T> {
    /// New empty scratch.
    pub fn new() -> Self {
        Self {
            buf: AlignedVec::zeroed(0).expect("zero-length allocation cannot fail"),
        }
    }

    /// Ensures capacity for `len` elements and returns the mutable slice.
    ///
    /// Contents are unspecified (previous data may remain); packing routines
    /// overwrite the region they use.
    pub fn get(&mut self, len: usize) -> Result<&mut [T]> {
        if self.buf.len() < len {
            // Grow geometrically so repeated GEMMs of increasing size do not
            // reallocate per call.
            let new_len = len.max(self.buf.len().saturating_mul(2));
            self.buf = AlignedVec::zeroed(new_len)?;
        }
        Ok(&mut self.buf.as_mut_slice()[..len])
    }

    /// Current capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

impl<T: Copy> Default for Scratch<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero_and_aligned() {
        let v = AlignedVec::<f64>::zeroed(1000).unwrap();
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn zero_length_ok() {
        let v = AlignedVec::<f32>::zeroed(0).unwrap();
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn from_slice_round_trip() {
        let src = [1.0f64, 2.0, 3.0, 4.5];
        let v = AlignedVec::from_slice(&src).unwrap();
        assert_eq!(v.as_slice(), &src);
    }

    #[test]
    fn deref_and_fill() {
        let mut v = AlignedVec::<f32>::zeroed(8).unwrap();
        v.fill(2.5);
        assert_eq!(v[7], 2.5);
        v[0] = 1.0;
        assert_eq!(v.as_slice()[0], 1.0);
    }

    #[test]
    fn clone_copies() {
        let mut v = AlignedVec::<f64>::zeroed(4).unwrap();
        v[2] = 9.0;
        let w = v.clone();
        assert_eq!(w[2], 9.0);
        assert_ne!(v.as_ptr(), w.as_ptr());
    }

    #[test]
    fn overflow_rejected() {
        let r = AlignedVec::<f64>::zeroed(usize::MAX / 2);
        assert!(r.is_err());
    }

    #[test]
    fn scratch_grows_and_reuses() {
        let mut s = Scratch::<f64>::new();
        assert_eq!(s.capacity(), 0);
        {
            let sl = s.get(100).unwrap();
            assert_eq!(sl.len(), 100);
            sl[99] = 7.0;
        }
        let cap_after_100 = s.capacity();
        assert!(cap_after_100 >= 100);
        {
            let sl = s.get(50).unwrap();
            assert_eq!(sl.len(), 50);
        }
        assert_eq!(s.capacity(), cap_after_100, "no shrink");
        {
            let sl = s.get(1000).unwrap();
            assert_eq!(sl.len(), 1000);
        }
        assert!(s.capacity() >= 1000);
    }

    #[test]
    fn scratch_alignment() {
        let mut s = Scratch::<f32>::new();
        let sl = s.get(16).unwrap();
        assert_eq!(sl.as_ptr() as usize % ALIGN, 0);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AlignedVec<f64>>();
        assert_send_sync::<Scratch<f32>>();
    }
}
