//! Runtime CPU capability detection and the cache-hierarchy model that
//! drives blocking-parameter selection.
//!
//! The paper targets Intel Cascade Lake (AVX-512, 32 KiB L1d, 1 MiB private
//! L2, shared L3). We detect the best available instruction tier at runtime
//! and fall back gracefully: AVX-512F -> AVX2+FMA -> portable.

use std::fmt;

/// Instruction-set tier a micro-kernel is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaLevel {
    /// Plain Rust, auto-vectorized by LLVM. Always available.
    Portable,
    /// 256-bit AVX2 + FMA3 (`std::arch` intrinsics).
    Avx2Fma,
    /// 512-bit AVX-512F (`std::arch` intrinsics).
    Avx512,
}

impl IsaLevel {
    /// Highest tier supported by the executing CPU.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return IsaLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                return IsaLevel::Avx2Fma;
            }
        }
        IsaLevel::Portable
    }

    /// All tiers supported on this CPU, best first.
    pub fn available() -> Vec<IsaLevel> {
        let best = Self::detect();
        let mut v = Vec::new();
        if best >= IsaLevel::Avx512 {
            v.push(IsaLevel::Avx512);
        }
        if best >= IsaLevel::Avx2Fma {
            v.push(IsaLevel::Avx2Fma);
        }
        v.push(IsaLevel::Portable);
        v
    }

    /// SIMD register width in bits for this tier.
    pub fn vector_bits(self) -> usize {
        match self {
            IsaLevel::Portable => 128, // assume SSE2 baseline for x86-64
            IsaLevel::Avx2Fma => 256,
            IsaLevel::Avx512 => 512,
        }
    }
}

impl fmt::Display for IsaLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsaLevel::Portable => "portable",
            IsaLevel::Avx2Fma => "avx2-fma",
            IsaLevel::Avx512 => "avx512",
        };
        f.write_str(s)
    }
}

/// Cache-hierarchy description used to size the GEMM blocking parameters.
///
/// Values are per-core for L1/L2 and shared for L3, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache size per core.
    pub l1d: usize,
    /// Private L2 size per core.
    pub l2: usize,
    /// Shared last-level cache size.
    pub l3: usize,
    /// Cache line size.
    pub line: usize,
}

impl CacheInfo {
    /// Cascade Lake-like defaults (the paper's Xeon W-2255): 32 KiB L1d,
    /// 1 MiB L2 per core, ~19 MiB shared L3.
    pub const CASCADE_LAKE: CacheInfo = CacheInfo {
        l1d: 32 * 1024,
        l2: 1024 * 1024,
        l3: 19 * 1024 * 1024,
        line: 64,
    };

    /// Attempts to read the hierarchy from sysfs (Linux); falls back to
    /// [`CacheInfo::CASCADE_LAKE`] on any failure so the library works in
    /// containers that mask `/sys`.
    pub fn detect() -> CacheInfo {
        Self::from_sysfs().unwrap_or(Self::CASCADE_LAKE)
    }

    fn from_sysfs() -> Option<CacheInfo> {
        #[cfg(target_os = "linux")]
        {
            fn read_kb(path: &str) -> Option<usize> {
                let s = std::fs::read_to_string(path).ok()?;
                let s = s.trim();
                let kb = s.strip_suffix('K').or_else(|| s.strip_suffix("K\n"))?;
                kb.parse::<usize>().ok().map(|v| v * 1024)
            }
            let base = "/sys/devices/system/cpu/cpu0/cache";
            let l1d = read_kb(&format!("{base}/index0/size"))?;
            let l2 = read_kb(&format!("{base}/index2/size"))?;
            let l3 = read_kb(&format!("{base}/index3/size")).unwrap_or(CacheInfo::CASCADE_LAKE.l3);
            Some(CacheInfo {
                l1d,
                l2,
                l3,
                line: 64,
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            None
        }
    }
}

/// Number of logical CPUs available to this process.
pub fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_consistent() {
        let a = IsaLevel::detect();
        let b = IsaLevel::detect();
        assert_eq!(a, b);
    }

    #[test]
    fn available_ordered_best_first() {
        let tiers = IsaLevel::available();
        assert!(!tiers.is_empty());
        assert_eq!(*tiers.last().unwrap(), IsaLevel::Portable);
        for w in tiers.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn vector_bits_monotone() {
        assert!(IsaLevel::Avx512.vector_bits() > IsaLevel::Avx2Fma.vector_bits());
        assert!(IsaLevel::Avx2Fma.vector_bits() > 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(IsaLevel::Avx512.to_string(), "avx512");
        assert_eq!(IsaLevel::Portable.to_string(), "portable");
    }

    #[test]
    fn cache_defaults_sane() {
        let c = CacheInfo::detect();
        assert!(c.l1d >= 8 * 1024);
        assert!(c.l2 >= c.l1d);
        assert!(c.l3 >= c.l2);
        assert_eq!(c.line, 64);
    }

    #[test]
    fn num_cpus_positive() {
        assert!(num_cpus() >= 1);
    }
}
