//! The macro kernel: updates an `mc x nc` block of `C` from packed `A~` and
//! `B~` by sweeping the micro-kernel over micro-tiles (paper §2.1).
//!
//! Optionally threads the fused-ABFT reference-checksum accumulators through
//! to the micro-kernel so the post-update row/column sums of the whole block
//! are collected at register level.

use crate::matrix::MatMut;
use crate::microkernel::Kernel;
use crate::scalar::Scalar;

/// Runs `C_block += A~ * B~` over an `mc x nc` block.
///
/// * `a_packed` — packed block of `ceil(mc/mr)` slabs, depth `kc`.
/// * `b_packed` — packed block of `ceil(nc/nr)` slabs, depth `kc`.
/// * `c` — mutable view of exactly the `mc x nc` block to update.
/// * `sums` — `Some((col_sums, row_sums))` to accumulate post-update
///   checksum references; lengths `nc` and `mc`.
pub fn macro_kernel<T: Scalar>(
    kernel: &Kernel<T>,
    kc: usize,
    a_packed: &[T],
    b_packed: &[T],
    c: &mut MatMut<'_, T>,
    sums: Option<(&mut [T], &mut [T])>,
) {
    let mc = c.nrows();
    let nc = c.ncols();
    let (mr, nr) = (kernel.mr, kernel.nr);
    let ldc = c.ld();
    assert!(
        a_packed.len() >= mc.div_ceil(mr) * mr * kc,
        "macro_kernel: a_packed too small"
    );
    assert!(
        b_packed.len() >= nc.div_ceil(nr) * nr * kc,
        "macro_kernel: b_packed too small"
    );

    let (mut col_ptr, mut row_ptr) = (std::ptr::null_mut(), std::ptr::null_mut());
    if let Some((col_sums, row_sums)) = sums {
        assert_eq!(col_sums.len(), nc, "macro_kernel: col_sums length");
        assert_eq!(row_sums.len(), mc, "macro_kernel: row_sums length");
        col_ptr = col_sums.as_mut_ptr();
        row_ptr = row_sums.as_mut_ptr();
    }
    let ft = !col_ptr.is_null();

    let c_ptr = c.as_mut_ptr();
    let mut jr = 0;
    while jr < nc {
        let n_eff = nr.min(nc - jr);
        let b_slab = &b_packed[(jr / nr) * nr * kc..];
        let mut ir = 0;
        while ir < mc {
            let m_eff = mr.min(mc - ir);
            let a_slab = &a_packed[(ir / mr) * mr * kc..];
            // SAFETY: the tile (ir..ir+m_eff, jr..jr+n_eff) lies inside the
            // mc x nc view; packed slabs are sized per the asserts above;
            // sum pointers offset into slices of the asserted lengths.
            unsafe {
                (kernel.func)(
                    kc,
                    a_slab.as_ptr(),
                    b_slab.as_ptr(),
                    c_ptr.add(ir + jr * ldc),
                    ldc,
                    m_eff,
                    n_eff,
                    if ft {
                        col_ptr.add(jr)
                    } else {
                        std::ptr::null_mut()
                    },
                    if ft {
                        row_ptr.add(ir)
                    } else {
                        std::ptr::null_mut()
                    },
                );
            }
            ir += mr;
        }
        jr += nr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::IsaLevel;
    use crate::matrix::Matrix;
    use crate::microkernel::select_kernel;
    use crate::pack::{pack_a, pack_b};

    fn run_block(mc: usize, nc: usize, kc: usize, isa: IsaLevel, ft: bool) {
        if isa > IsaLevel::detect() {
            return;
        }
        let kernel = select_kernel::<f64>(isa);
        let a = Matrix::<f64>::random(mc, kc, 11);
        let b = Matrix::<f64>::random(kc, nc, 12);
        let mut c = Matrix::<f64>::random(mc, nc, 13);
        let c0 = c.clone();

        let mut ap = vec![0.0; mc.div_ceil(kernel.mr) * kernel.mr * kc];
        let mut bp = vec![0.0; nc.div_ceil(kernel.nr) * kernel.nr * kc];
        pack_a(&a.as_ref(), 1.0, kernel.mr, &mut ap);
        pack_b(&b.as_ref(), kernel.nr, &mut bp);

        let mut col_sums = vec![0.0; nc];
        let mut row_sums = vec![0.0; mc];
        {
            let mut cv = c.as_mut();
            let sums = if ft {
                Some((col_sums.as_mut_slice(), row_sums.as_mut_slice()))
            } else {
                None
            };
            macro_kernel(&kernel, kc, &ap, &bp, &mut cv, sums);
        }

        // Oracle: C = C0 + A*B.
        let tol = 1e-12 * kc as f64;
        for j in 0..nc {
            for i in 0..mc {
                let mut want = c0.get(i, j);
                for p in 0..kc {
                    want += a.get(i, p) * b.get(p, j);
                }
                let got = c.get(i, j);
                assert!(
                    (got - want).abs() < tol * want.abs().max(1.0),
                    "({i},{j}) got {got} want {want} [{:?} ft={ft} mc={mc} nc={nc} kc={kc}]",
                    kernel.isa
                );
            }
        }
        if ft {
            for j in 0..nc {
                let want: f64 = (0..mc).map(|i| c.get(i, j)).sum();
                assert!(
                    (col_sums[j] - want).abs() < tol * want.abs().max(1.0) * mc as f64,
                    "col_sums[{j}]"
                );
            }
            for i in 0..mc {
                let want: f64 = (0..nc).map(|j| c.get(i, j)).sum();
                assert!(
                    (row_sums[i] - want).abs() < tol * want.abs().max(1.0) * nc as f64,
                    "row_sums[{i}]"
                );
            }
        }
    }

    #[test]
    fn block_portable_exact_tiles() {
        run_block(16, 8, 5, IsaLevel::Portable, false);
        run_block(16, 8, 5, IsaLevel::Portable, true);
    }

    #[test]
    fn block_portable_ragged() {
        run_block(13, 9, 7, IsaLevel::Portable, true);
        run_block(1, 1, 1, IsaLevel::Portable, true);
        run_block(7, 3, 4, IsaLevel::Portable, false);
    }

    #[test]
    fn block_avx2() {
        run_block(24, 18, 33, IsaLevel::Avx2Fma, true);
        run_block(17, 13, 9, IsaLevel::Avx2Fma, true);
    }

    #[test]
    fn block_avx512() {
        run_block(48, 24, 33, IsaLevel::Avx512, true);
        run_block(33, 17, 65, IsaLevel::Avx512, true);
        run_block(16, 8, 128, IsaLevel::Avx512, false);
    }

    #[test]
    fn ft_and_plain_identical_results() {
        let kernel = select_kernel::<f64>(IsaLevel::detect());
        let (mc, nc, kc) = (40, 30, 20);
        let a = Matrix::<f64>::random(mc, kc, 1);
        let b = Matrix::<f64>::random(kc, nc, 2);
        let mut c1 = Matrix::<f64>::random(mc, nc, 3);
        let mut c2 = c1.clone();

        let mut ap = vec![0.0; mc.div_ceil(kernel.mr) * kernel.mr * kc];
        let mut bp = vec![0.0; nc.div_ceil(kernel.nr) * kernel.nr * kc];
        pack_a(&a.as_ref(), 1.0, kernel.mr, &mut ap);
        pack_b(&b.as_ref(), kernel.nr, &mut bp);

        let mut cs = vec![0.0; nc];
        let mut rs = vec![0.0; mc];
        macro_kernel(&kernel, kc, &ap, &bp, &mut c1.as_mut(), None);
        macro_kernel(
            &kernel,
            kc,
            &ap,
            &bp,
            &mut c2.as_mut(),
            Some((cs.as_mut_slice(), rs.as_mut_slice())),
        );
        assert_eq!(c1.as_slice(), c2.as_slice(), "FT path altered numerics");
    }
}
