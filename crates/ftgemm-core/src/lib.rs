//! # ftgemm-core
//!
//! Cache-blocked, SIMD-dispatched GEMM substrate for the FT-GEMM
//! reproduction (Wu et al., *FT-GEMM: A Fault Tolerant High Performance GEMM
//! Implementation on x86 CPUs*, HPDC '23).
//!
//! This crate implements the paper's **baseline** high-performance GEMM
//! ("FT-GEMM: Ori"): a GotoBLAS-style algorithm with
//!
//! * packing of `A` into MR-row micro-panels and `B` into NR-column
//!   micro-panels ([`pack`]),
//! * a macro kernel iterating micro-kernels over an `MC x NC` block of `C`
//!   ([`macro_kernel`]),
//! * runtime-dispatched micro-kernels: portable (auto-vectorized), AVX2+FMA
//!   and AVX-512F `std::arch` implementations ([`microkernel`]),
//! * cache-driven blocking parameters `MC`, `NC`, `KC` ([`params`]).
//!
//! The micro-kernels optionally accumulate **register-level row/column sums
//! of the updated `C` tile**. This is the hook the fused ABFT layer
//! (`ftgemm-abft`) uses to obtain reference checksums "for free", which is
//! the core idea of the paper: the O(n^2) checksum traffic is fused into
//! memory traffic GEMM performs anyway.
//!
//! ## Quick start
//!
//! ```
//! use ftgemm_core::{Matrix, gemm, GemmContext};
//!
//! let m = 64;
//! let a = Matrix::<f64>::from_fn(m, m, |i, j| (i + j) as f64);
//! let b = Matrix::<f64>::identity(m);
//! let mut c = Matrix::<f64>::zeros(m, m);
//!
//! let mut ctx = GemmContext::<f64>::new();
//! gemm(&mut ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut());
//! assert_eq!(c.get(3, 5), a.get(3, 5));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aligned;
pub mod cpu;
pub mod error;
pub mod gemm;
pub mod macro_kernel;
pub mod matrix;
pub mod microkernel;
pub mod pack;
pub mod params;
pub mod reference;
pub mod scalar;
pub mod tune;

pub use aligned::AlignedVec;
pub use cpu::{CacheInfo, IsaLevel};
pub use error::{CoreError, Result};
pub use gemm::{gemm, gemm_op, gemm_with_params, GemmContext, Op};
pub use matrix::{MatMut, MatRef, Matrix};
pub use microkernel::{select_kernel, Kernel};
pub use params::BlockingParams;
pub use scalar::Scalar;
