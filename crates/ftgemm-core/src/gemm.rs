//! Serial high-performance GEMM driver: `C = alpha * A * B + beta * C`.
//!
//! This is the paper's "FT-GEMM: Ori" code path — the five-loop GotoBLAS
//! structure (jc / pc / ic around the macro kernel) with packing, without
//! any fault-tolerance work. The fused-ABFT driver in `ftgemm-abft` reuses
//! the same packing/macro-kernel substrate with the checksum hooks engaged.

use crate::cpu::{CacheInfo, IsaLevel};
use crate::error::{CoreError, Result};
use crate::matrix::{MatMut, MatRef};
use crate::microkernel::{select_kernel, Kernel};
use crate::params::BlockingParams;
use crate::scalar::Scalar;
use crate::{aligned::Scratch, pack};

/// Reusable state for repeated GEMM calls: the selected micro-kernel,
/// blocking parameters, and the packing scratch buffers.
///
/// Creating a context is cheap but allocating packing buffers is not;
/// reuse one context across calls of similar size (as the benchmarks do).
#[derive(Debug)]
pub struct GemmContext<T: Scalar> {
    /// Selected micro-kernel.
    pub kernel: Kernel<T>,
    /// Blocking parameters (override for ablations via [`Self::set_params`]).
    pub params: BlockingParams,
    pub(crate) a_scratch: Scratch<T>,
    pub(crate) b_scratch: Scratch<T>,
}

impl<T: Scalar> GemmContext<T> {
    /// Context with the best ISA tier the CPU supports and cache-derived
    /// blocking parameters.
    pub fn new() -> Self {
        Self::with_isa(IsaLevel::detect())
    }

    /// Context pinned to a specific ISA tier (must be supported by the CPU;
    /// used by the baseline stand-ins and ablation benches).
    pub fn with_isa(isa: IsaLevel) -> Self {
        let kernel = select_kernel::<T>(isa);
        let params = BlockingParams::derive::<T>(&CacheInfo::detect(), kernel.mr, kernel.nr);
        Self {
            kernel,
            params,
            a_scratch: Scratch::new(),
            b_scratch: Scratch::new(),
        }
    }

    /// Borrows the two packing scratch buffers, grown to at least the given
    /// element counts. Used by the fault-tolerant and parallel drivers that
    /// share this context's buffer management.
    pub fn pack_buffers(&mut self, a_len: usize, b_len: usize) -> Result<(&mut [T], &mut [T])> {
        let a = self.a_scratch.get(a_len)?;
        let b = self.b_scratch.get(b_len)?;
        Ok((a, b))
    }

    /// Overrides the blocking parameters (validated).
    pub fn set_params(&mut self, params: BlockingParams) -> Result<()> {
        if params.mr != self.kernel.mr || params.nr != self.kernel.nr {
            return Err(CoreError::InvalidBlocking {
                context: format!(
                    "micro-tile {}x{} does not match kernel {}x{}",
                    params.mr, params.nr, self.kernel.mr, self.kernel.nr
                ),
            });
        }
        params.validate()?;
        self.params = params;
        Ok(())
    }
}

impl<T: Scalar> Default for GemmContext<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Validates GEMM operand shapes; shared by every driver in the workspace.
pub fn validate_shapes<T: Scalar>(
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    c: &MatMut<'_, T>,
) -> Result<(usize, usize, usize)> {
    let (m, ka) = (a.nrows(), a.ncols());
    let (kb, n) = (b.nrows(), b.ncols());
    let (mc_, nc_) = (c.nrows(), c.ncols());
    if ka != kb {
        return Err(CoreError::ShapeMismatch {
            context: format!("A is {m}x{ka} but B is {kb}x{n}"),
        });
    }
    if m != mc_ || n != nc_ {
        return Err(CoreError::ShapeMismatch {
            context: format!("C is {mc_}x{nc_} but A*B is {m}x{n}"),
        });
    }
    Ok((m, n, ka))
}

/// Scales `C *= beta` (handling `beta == 0` as a fill with zeros so that
/// NaN/Inf in uninitialized output memory cannot leak through).
pub fn scale_c<T: Scalar>(c: &mut MatMut<'_, T>, beta: T) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        c.fill(T::ZERO);
        return;
    }
    for j in 0..c.ncols() {
        for v in c.col_mut(j) {
            *v *= beta;
        }
    }
}

/// Serial GEMM: `C = alpha * A * B + beta * C` with context-held buffers.
pub fn gemm<T: Scalar>(
    ctx: &mut GemmContext<T>,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> Result<()> {
    let (m, n, k) = validate_shapes(a, b, c)?;
    scale_c(c, beta);
    if m == 0 || n == 0 || k == 0 || alpha == T::ZERO {
        return Ok(());
    }

    let p = ctx.params;
    p.validate()?;
    let kernel = ctx.kernel;

    // Packing buffers sized for one block each; Scratch reuses allocations
    // across calls.
    // Split borrows: scratch lives in ctx, taken as raw slices.
    let (a_buf_owner, b_buf_owner) = (&mut ctx.a_scratch, &mut ctx.b_scratch);
    let a_buf = a_buf_owner.get(p.packed_a_len())?;
    let b_buf = b_buf_owner.get(p.packed_b_len())?;

    let mut jc = 0;
    while jc < n {
        let nc_eff = p.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc_eff = p.kc.min(k - pc);
            let b_block = b.submatrix(pc, jc, kc_eff, nc_eff);
            pack::pack_b(&b_block, p.nr, b_buf);

            let mut ic = 0;
            while ic < m {
                let mc_eff = p.mc.min(m - ic);
                let a_block = a.submatrix(ic, pc, mc_eff, kc_eff);
                pack::pack_a(&a_block, alpha, p.mr, a_buf);

                let mut c_block = c.submatrix_mut(ic, jc, mc_eff, nc_eff);
                crate::macro_kernel::macro_kernel(
                    &kernel,
                    kc_eff,
                    a_buf,
                    b_buf,
                    &mut c_block,
                    None,
                );
                ic += p.mc;
            }
            pc += p.kc;
        }
        jc += p.nc;
    }
    Ok(())
}

/// Serial GEMM with explicit blocking parameters (ablation entry point).
pub fn gemm_with_params<T: Scalar>(
    isa: IsaLevel,
    params: BlockingParams,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> Result<()> {
    let mut ctx = GemmContext::<T>::with_isa(isa);
    ctx.set_params(params)?;
    gemm(&mut ctx, alpha, a, b, beta, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;

    fn check_case<T: Scalar>(
        isa: IsaLevel,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
        tol: f64,
    ) {
        if isa > IsaLevel::detect() {
            return;
        }
        let a = Matrix::<T>::random(m, k, 21);
        let b = Matrix::<T>::random(k, n, 22);
        let mut c = Matrix::<T>::random(m, n, 23);
        let mut c_ref = c.clone();

        let mut ctx = GemmContext::<T>::with_isa(isa);
        gemm(
            &mut ctx,
            T::from_f64(alpha),
            &a.as_ref(),
            &b.as_ref(),
            T::from_f64(beta),
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(
            T::from_f64(alpha),
            &a.as_ref(),
            &b.as_ref(),
            T::from_f64(beta),
            &mut c_ref.as_mut(),
        );
        let d = c.rel_max_diff(&c_ref);
        assert!(
            d < tol,
            "rel diff {d} for {m}x{n}x{k} alpha={alpha} beta={beta} isa={isa}"
        );
    }

    #[test]
    fn small_sizes_all_isas_f64() {
        for isa in IsaLevel::available() {
            for &(m, n, k) in &[
                (1usize, 1usize, 1usize),
                (2, 3, 4),
                (16, 8, 4),
                (17, 9, 5),
                (31, 33, 7),
                (64, 64, 64),
                (65, 63, 65),
            ] {
                check_case::<f64>(isa, m, n, k, 1.0, 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn alpha_beta_combinations() {
        for &(alpha, beta) in &[(0.0, 0.0), (0.0, 2.0), (1.0, 0.0), (-1.0, 1.0), (0.5, -0.5)] {
            check_case::<f64>(IsaLevel::detect(), 33, 29, 17, alpha, beta, 1e-10);
        }
    }

    #[test]
    fn crosses_blocking_boundaries() {
        // Force tiny blocks so jc/pc/ic loops all iterate multiple times.
        let kernel = select_kernel::<f64>(IsaLevel::detect());
        let params = BlockingParams {
            mr: kernel.mr,
            nr: kernel.nr,
            mc: kernel.mr * 2,
            nc: kernel.nr * 3,
            kc: 8,
        };
        let (m, n, k) = (kernel.mr * 5 + 3, kernel.nr * 7 + 1, 37);
        let a = Matrix::<f64>::random(m, k, 31);
        let b = Matrix::<f64>::random(k, n, 32);
        let mut c = Matrix::<f64>::random(m, n, 33);
        let mut c_ref = c.clone();

        gemm_with_params(
            IsaLevel::detect(),
            params,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn f32_path() {
        for isa in IsaLevel::available() {
            check_case::<f32>(isa, 40, 24, 33, 1.0, 1.0, 1e-3);
        }
    }

    #[test]
    fn identity_multiplication() {
        let n = 50;
        let a = Matrix::<f64>::random(n, n, 44);
        let id = Matrix::<f64>::identity(n);
        let mut c = Matrix::<f64>::zeros(n, n);
        let mut ctx = GemmContext::<f64>::new();
        gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &id.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        assert!(a.max_abs_diff(&c) < 1e-12);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(5, 6);
        let mut c = Matrix::<f64>::zeros(3, 6);
        let mut ctx = GemmContext::<f64>::new();
        let r = gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        );
        assert!(matches!(r, Err(CoreError::ShapeMismatch { .. })));
    }

    #[test]
    fn c_shape_mismatch_rejected() {
        let a = Matrix::<f64>::zeros(3, 4);
        let b = Matrix::<f64>::zeros(4, 6);
        let mut c = Matrix::<f64>::zeros(3, 5);
        let mut ctx = GemmContext::<f64>::new();
        assert!(gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut()
        )
        .is_err());
    }

    #[test]
    fn zero_dims_are_noops() {
        let a = Matrix::<f64>::zeros(0, 4);
        let b = Matrix::<f64>::zeros(4, 6);
        let mut c = Matrix::<f64>::zeros(0, 6);
        let mut ctx = GemmContext::<f64>::new();
        gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();

        // k == 0: C = beta*C only.
        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::<f64>::filled(2, 2, 3.0);
        gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.5,
            &mut c.as_mut(),
        )
        .unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 1.5));
    }

    #[test]
    fn context_reuse_many_sizes() {
        let mut ctx = GemmContext::<f64>::new();
        for &s in &[5usize, 64, 17, 130, 3] {
            let a = Matrix::<f64>::random(s, s, s as u64);
            let b = Matrix::<f64>::random(s, s, s as u64 + 1);
            let mut c = Matrix::<f64>::zeros(s, s);
            let mut c_ref = Matrix::<f64>::zeros(s, s);
            gemm(
                &mut ctx,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                0.0,
                &mut c.as_mut(),
            )
            .unwrap();
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "size {s}");
        }
    }

    #[test]
    fn strided_c_view() {
        // Write into a submatrix of a larger C to exercise non-trivial ldc.
        let (m, n, k) = (20, 12, 9);
        let a = Matrix::<f64>::random(m, k, 50);
        let b = Matrix::<f64>::random(k, n, 51);
        let mut big = Matrix::<f64>::filled(m + 8, n + 4, 9.0);
        {
            let mut cview = big.as_mut();
            let mut sub = cview.submatrix_mut(3, 2, m, n);
            let mut ctx = GemmContext::<f64>::new();
            gemm(&mut ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut sub).unwrap();
        }
        // Border untouched.
        assert_eq!(big.get(0, 0), 9.0);
        assert_eq!(big.get(m + 7, n + 3), 9.0);
        // Interior correct.
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        for j in 0..n {
            for i in 0..m {
                assert!((big.get(i + 3, j + 2) - c_ref.get(i, j)).abs() < 1e-10);
            }
        }
    }
}

/// Transposition operator for a GEMM operand (BLAS `TRANSA`/`TRANSB`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the operand as stored.
    NoTrans,
    /// Use the transpose of the stored operand.
    Trans,
}

/// Serial GEMM with transposition operators:
/// `C = alpha * op_a(A) * op_b(B) + beta * C`.
///
/// `a` is the *stored* matrix: `m x k` under `NoTrans`, `k x m` under
/// `Trans` (and correspondingly for `b`). Transposed operands are handled
/// inside the packing routines (contiguous reads, strided writes) — no
/// operand copies are materialized.
pub fn gemm_op<T: Scalar>(
    ctx: &mut GemmContext<T>,
    op_a: Op,
    op_b: Op,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> Result<()> {
    // Logical dimensions after applying the ops.
    let (m, ka) = match op_a {
        Op::NoTrans => (a.nrows(), a.ncols()),
        Op::Trans => (a.ncols(), a.nrows()),
    };
    let (kb, n) = match op_b {
        Op::NoTrans => (b.nrows(), b.ncols()),
        Op::Trans => (b.ncols(), b.nrows()),
    };
    if ka != kb {
        return Err(CoreError::ShapeMismatch {
            context: format!("op(A) is {m}x{ka} but op(B) is {kb}x{n}"),
        });
    }
    if c.nrows() != m || c.ncols() != n {
        return Err(CoreError::ShapeMismatch {
            context: format!(
                "C is {}x{} but op(A)*op(B) is {m}x{n}",
                c.nrows(),
                c.ncols()
            ),
        });
    }
    let k = ka;
    scale_c(c, beta);
    if m == 0 || n == 0 || k == 0 || alpha == T::ZERO {
        return Ok(());
    }

    let p = ctx.params;
    p.validate()?;
    let kernel = ctx.kernel;
    let (a_buf, b_buf) = ctx.pack_buffers(p.packed_a_len(), p.packed_b_len())?;

    let mut jc = 0;
    while jc < n {
        let nc_eff = p.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc_eff = p.kc.min(k - pc);
            match op_b {
                Op::NoTrans => {
                    let blk = b.submatrix(pc, jc, kc_eff, nc_eff);
                    crate::pack::pack_b(&blk, p.nr, b_buf);
                }
                Op::Trans => {
                    // Stored b is n x k; logical B(pc.., jc..) = b(jc.., pc..)^T.
                    let blk = b.submatrix(jc, pc, nc_eff, kc_eff);
                    crate::pack::pack_b_trans(&blk, p.nr, b_buf);
                }
            }

            let mut ic = 0;
            while ic < m {
                let mc_eff = p.mc.min(m - ic);
                match op_a {
                    Op::NoTrans => {
                        let blk = a.submatrix(ic, pc, mc_eff, kc_eff);
                        crate::pack::pack_a(&blk, alpha, p.mr, a_buf);
                    }
                    Op::Trans => {
                        // Stored a is k x m; logical A(ic.., pc..) = a(pc.., ic..)^T.
                        let blk = a.submatrix(pc, ic, kc_eff, mc_eff);
                        crate::pack::pack_a_trans(&blk, alpha, p.mr, a_buf);
                    }
                }
                let mut c_block = c.submatrix_mut(ic, jc, mc_eff, nc_eff);
                crate::macro_kernel::macro_kernel(
                    &kernel,
                    kc_eff,
                    a_buf,
                    b_buf,
                    &mut c_block,
                    None,
                );
                ic += p.mc;
            }
            pc += p.kc;
        }
        jc += p.nc;
    }
    Ok(())
}

#[cfg(test)]
mod op_tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::reference::naive_gemm;

    fn check_ops(op_a: Op, op_b: Op, m: usize, n: usize, k: usize) {
        let a_logical = Matrix::<f64>::random(m, k, 61);
        let b_logical = Matrix::<f64>::random(k, n, 62);
        let a_stored = match op_a {
            Op::NoTrans => a_logical.clone(),
            Op::Trans => a_logical.transpose(),
        };
        let b_stored = match op_b {
            Op::NoTrans => b_logical.clone(),
            Op::Trans => b_logical.transpose(),
        };
        let mut c = Matrix::<f64>::random(m, n, 63);
        let mut c_ref = c.clone();

        let mut ctx = GemmContext::<f64>::new();
        gemm_op(
            &mut ctx,
            op_a,
            op_b,
            1.5,
            &a_stored.as_ref(),
            &b_stored.as_ref(),
            -0.5,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(
            1.5,
            &a_logical.as_ref(),
            &b_logical.as_ref(),
            -0.5,
            &mut c_ref.as_mut(),
        );
        assert!(
            c.rel_max_diff(&c_ref) < 1e-10,
            "{op_a:?}/{op_b:?} {m}x{n}x{k}: {}",
            c.rel_max_diff(&c_ref)
        );
    }

    #[test]
    fn all_op_combinations() {
        for &(m, n, k) in &[(17usize, 19usize, 23usize), (64, 64, 64), (90, 45, 130)] {
            check_ops(Op::NoTrans, Op::NoTrans, m, n, k);
            check_ops(Op::Trans, Op::NoTrans, m, n, k);
            check_ops(Op::NoTrans, Op::Trans, m, n, k);
            check_ops(Op::Trans, Op::Trans, m, n, k);
        }
    }

    #[test]
    fn op_shape_validation() {
        let a = Matrix::<f64>::zeros(4, 3); // stored k x m for Trans: logical 3x4
        let b = Matrix::<f64>::zeros(4, 5);
        let mut c = Matrix::<f64>::zeros(3, 5);
        let mut ctx = GemmContext::<f64>::new();
        // op(A) = 3x4, op(B) = 4x5 -> ok
        gemm_op(
            &mut ctx,
            Op::Trans,
            Op::NoTrans,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        // wrong C shape
        let mut c_bad = Matrix::<f64>::zeros(4, 5);
        assert!(gemm_op(
            &mut ctx,
            Op::Trans,
            Op::NoTrans,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            0.0,
            &mut c_bad.as_mut()
        )
        .is_err());
    }

    #[test]
    fn trans_trans_tiny() {
        // (A^T B^T)^T = B A: check a 2x2 by hand.
        let a_stored = Matrix::from_col_major(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap(); // A^T stored
        let b_stored = Matrix::from_col_major(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut c = Matrix::<f64>::zeros(2, 2);
        let mut ctx = GemmContext::<f64>::new();
        gemm_op(
            &mut ctx,
            Op::Trans,
            Op::Trans,
            1.0,
            &a_stored.as_ref(),
            &b_stored.as_ref(),
            0.0,
            &mut c.as_mut(),
        )
        .unwrap();
        // logical A = stored^T = [1 2; 3 4], logical B = [5 6; 7 8]
        // C = A*B = [19 22; 43 50]
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }
}
