//! Column-major dense matrices and borrowed views.
//!
//! BLAS convention throughout: element `(i, j)` of an `m x n` matrix with
//! leading dimension `ld >= m` lives at linear offset `i + j * ld`. Views
//! ([`MatRef`], [`MatMut`]) carry an arbitrary leading dimension so
//! submatrices (the blocks the GEMM loops walk) are zero-copy.

use crate::aligned::AlignedVec;
use crate::error::{CoreError, Result};
use crate::scalar::Scalar;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::marker::PhantomData;

/// Owned, contiguous (ld == nrows), 64-byte aligned column-major matrix.
#[derive(Clone, Debug)]
pub struct Matrix<T: Scalar> {
    data: AlignedVec<T>,
    nrows: usize,
    ncols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// `m x n` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        let data = AlignedVec::zeroed(nrows.checked_mul(ncols).expect("matrix size overflow"))
            .expect("matrix allocation failed");
        Self { data, nrows, ncols }
    }

    /// `m x n` matrix with every element `value`.
    pub fn filled(nrows: usize, ncols: usize, value: T) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        m.data.fill(value);
        m
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(nrows, ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Builds from a column-major slice (`len == nrows * ncols`).
    pub fn from_col_major(nrows: usize, ncols: usize, data: &[T]) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(CoreError::ShapeMismatch {
                context: format!(
                    "column-major slice has {} elements, expected {}x{} = {}",
                    data.len(),
                    nrows,
                    ncols,
                    nrows * ncols
                ),
            });
        }
        Ok(Self {
            data: AlignedVec::from_slice(data)?,
            nrows,
            ncols,
        })
    }

    /// Identity matrix (square).
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { T::ONE } else { T::ZERO })
    }

    /// Uniform random matrix in `(-1, 1)`, deterministic under `seed`.
    ///
    /// This mirrors the paper's benchmark inputs (dense random operands).
    pub fn random(nrows: usize, ncols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = Uniform::new(-1.0f64, 1.0f64);
        let mut m = Self::zeros(nrows, ncols);
        for v in m.data.as_mut_slice() {
            *v = T::from_f64(dist.sample(&mut rng));
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Leading dimension (always `nrows` for owned matrices).
    #[inline]
    pub fn ld(&self) -> usize {
        self.nrows
    }

    /// Element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i + j * self.nrows]
    }

    /// Sets element `(i, j)`, bounds-checked.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i + j * self.nrows] = v;
    }

    /// Column-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        self.data.as_slice()
    }

    /// Mutable column-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        self.data.as_mut_slice()
    }

    /// Immutable view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.data.as_ptr(),
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            _marker: PhantomData,
        }
    }

    /// Mutable view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.data.as_mut_ptr(),
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.nrows,
            _marker: PhantomData,
        }
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self.get(j, i))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        let mut acc = T::ZERO;
        for &v in self.data.as_slice() {
            acc = v.mul_add(v, acc);
        }
        acc.sqrt()
    }

    /// Largest absolute element.
    pub fn max_abs(&self) -> T {
        let mut acc = T::ZERO;
        for &v in self.data.as_slice() {
            acc = acc.max(v.abs());
        }
        acc
    }

    /// Max absolute difference against another matrix of identical shape.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut acc = T::ZERO;
        for (a, b) in self.as_slice().iter().zip(other.as_slice()) {
            acc = acc.max((*a - *b).abs());
        }
        acc
    }

    /// Relative max-norm distance: `max|a-b| / max(1, max|a|)`.
    pub fn rel_max_diff(&self, other: &Self) -> f64 {
        let d = self.max_abs_diff(other).to_f64();
        let s = self.max_abs().to_f64().max(1.0);
        d / s
    }
}

/// Immutable column-major matrix view with leading dimension `ld`.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a, T: Scalar> {
    ptr: *const T,
    nrows: usize,
    ncols: usize,
    ld: usize,
    _marker: PhantomData<&'a [T]>,
}

// SAFETY: a MatRef is a shared borrow of matrix memory.
unsafe impl<T: Scalar> Send for MatRef<'_, T> {}
unsafe impl<T: Scalar> Sync for MatRef<'_, T> {}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Builds a view from a raw slice.
    ///
    /// `data` must contain at least `ld * (ncols - 1) + nrows` elements.
    pub fn from_slice(data: &'a [T], nrows: usize, ncols: usize, ld: usize) -> Result<Self> {
        validate_view(data.len(), nrows, ncols, ld)?;
        Ok(Self {
            ptr: data.as_ptr(),
            nrows,
            ncols,
            ld,
            _marker: PhantomData,
        })
    }

    /// Builds a view from raw parts.
    ///
    /// # Safety
    /// `ptr` must point to an allocation valid for reads of the column-major
    /// region `{i + j*ld : i < nrows, j < ncols}` for the lifetime `'a`, and
    /// no mutable alias to that region may exist during `'a`.
    pub unsafe fn from_raw_parts(ptr: *const T, nrows: usize, ncols: usize, ld: usize) -> Self {
        debug_assert!(ld >= nrows.max(1));
        Self {
            ptr,
            nrows,
            ncols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// Raw pointer to element (0,0).
    #[inline]
    pub fn as_ptr(&self) -> *const T {
        self.ptr
    }

    /// Element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        // SAFETY: in-bounds per the assertion and view invariant.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Zero-copy submatrix `rows x cols` starting at `(i, j)`.
    #[inline]
    pub fn submatrix(&self, i: usize, j: usize, rows: usize, cols: usize) -> MatRef<'a, T> {
        assert!(
            i + rows <= self.nrows && j + cols <= self.ncols,
            "submatrix out of bounds"
        );
        MatRef {
            // SAFETY: offset stays within the viewed allocation.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Column `j` as a slice (contiguous thanks to column-major layout).
    #[inline]
    pub fn col(&self, j: usize) -> &'a [T] {
        assert!(j < self.ncols, "column out of bounds");
        // SAFETY: column j spans [j*ld, j*ld + nrows) within the view.
        unsafe { std::slice::from_raw_parts(self.ptr.add(j * self.ld), self.nrows) }
    }

    /// Copies into an owned matrix.
    pub fn to_owned(&self) -> Matrix<T> {
        Matrix::from_fn(self.nrows, self.ncols, |i, j| self.get(i, j))
    }
}

/// Mutable column-major matrix view with leading dimension `ld`.
#[derive(Debug)]
pub struct MatMut<'a, T: Scalar> {
    ptr: *mut T,
    nrows: usize,
    ncols: usize,
    ld: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a MatMut is an exclusive borrow of matrix memory.
unsafe impl<T: Scalar> Send for MatMut<'_, T> {}
unsafe impl<T: Scalar> Sync for MatMut<'_, T> {}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Builds a mutable view from raw parts.
    ///
    /// # Safety
    /// `ptr` must point to an allocation valid for reads and writes of the
    /// column-major region `{i + j*ld : i < nrows, j < ncols}` for the
    /// lifetime `'a`, and that region must not be aliased by any other
    /// reference during `'a`. (Parallel drivers use this to hand disjoint
    /// row slices of `C` to different threads.)
    pub unsafe fn from_raw_parts(ptr: *mut T, nrows: usize, ncols: usize, ld: usize) -> Self {
        debug_assert!(ld >= nrows.max(1));
        Self {
            ptr,
            nrows,
            ncols,
            ld,
            _marker: PhantomData,
        }
    }

    /// Builds a mutable view from a raw slice.
    pub fn from_slice(data: &'a mut [T], nrows: usize, ncols: usize, ld: usize) -> Result<Self> {
        validate_view(data.len(), nrows, ncols, ld)?;
        Ok(Self {
            ptr: data.as_mut_ptr(),
            nrows,
            ncols,
            ld,
            _marker: PhantomData,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }
    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }
    /// Leading dimension.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }
    /// Raw mutable pointer to element (0,0).
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut T {
        self.ptr
    }

    /// Element at `(i, j)`, bounds-checked.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        // SAFETY: in-bounds per the assertion and view invariant.
        unsafe { *self.ptr.add(i + j * self.ld) }
    }

    /// Sets element `(i, j)`, bounds-checked.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        // SAFETY: in-bounds per the assertion and view invariant.
        unsafe { *self.ptr.add(i + j * self.ld) = v };
    }

    /// Immutable re-borrow of this view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Mutable re-borrow (shortens the lifetime).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            nrows: self.nrows,
            ncols: self.ncols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Zero-copy mutable submatrix `rows x cols` starting at `(i, j)`.
    #[inline]
    pub fn submatrix_mut(&mut self, i: usize, j: usize, rows: usize, cols: usize) -> MatMut<'_, T> {
        assert!(
            i + rows <= self.nrows && j + cols <= self.ncols,
            "submatrix out of bounds"
        );
        MatMut {
            // SAFETY: offset stays within the viewed allocation.
            ptr: unsafe { self.ptr.add(i + j * self.ld) },
            nrows: rows,
            ncols: cols,
            ld: self.ld,
            _marker: PhantomData,
        }
    }

    /// Splits into disjoint mutable row-slices at row `i` (for M-partitioned
    /// parallel work). Both halves keep the full column range.
    pub fn split_rows_mut(self, i: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(i <= self.nrows, "split row out of bounds");
        let top = MatMut {
            ptr: self.ptr,
            nrows: i,
            ncols: self.ncols,
            ld: self.ld,
            _marker: PhantomData,
        };
        let bot = MatMut {
            // SAFETY: row offset i is within the view; the two views address
            // disjoint row ranges of every column.
            ptr: unsafe { self.ptr.add(i) },
            nrows: self.nrows - i,
            ncols: self.ncols,
            ld: self.ld,
            _marker: PhantomData,
        };
        (top, bot)
    }

    /// Mutable column `j` as a slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        assert!(j < self.ncols, "column out of bounds");
        // SAFETY: column j spans [j*ld, j*ld + nrows) within the view.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(j * self.ld), self.nrows) }
    }

    /// Fills the viewed region with `v`.
    pub fn fill(&mut self, v: T) {
        for j in 0..self.ncols {
            self.col_mut(j).fill(v);
        }
    }

    /// Copies from another view of identical shape.
    pub fn copy_from(&mut self, src: &MatRef<'_, T>) {
        assert_eq!(self.nrows, src.nrows(), "copy_from: row mismatch");
        assert_eq!(self.ncols, src.ncols(), "copy_from: col mismatch");
        for j in 0..self.ncols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }
}

fn validate_view(len: usize, nrows: usize, ncols: usize, ld: usize) -> Result<()> {
    if ld < nrows.max(1) {
        return Err(CoreError::InvalidLeadingDimension {
            operand: "view",
            ld,
            min: nrows.max(1),
        });
    }
    let needed = if ncols == 0 || nrows == 0 {
        0
    } else {
        ld * (ncols - 1) + nrows
    };
    if len < needed {
        return Err(CoreError::ShapeMismatch {
            context: format!(
                "backing slice has {len} elements, view {nrows}x{ncols} (ld {ld}) needs {needed}"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::<f64>::zeros(3, 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.get(2, 3), 0.0);
        m.set(2, 3, 5.0);
        assert_eq!(m.get(2, 3), 5.0);
        // col-major: element (2,3) is at offset 2 + 3*3 = 11
        assert_eq!(m.as_slice()[11], 5.0);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::<f64>::from_fn(2, 3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn identity() {
        let m = Matrix::<f32>::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn random_deterministic() {
        let a = Matrix::<f64>::random(5, 7, 42);
        let b = Matrix::<f64>::random(5, 7, 42);
        let c = Matrix::<f64>::random(5, 7, 43);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
        assert!(a.as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::<f64>::random(4, 6, 1);
        let att = a.transpose().transpose();
        assert_eq!(a.as_slice(), att.as_slice());
        assert_eq!(a.get(1, 3), a.transpose().get(3, 1));
    }

    #[test]
    fn submatrix_view() {
        let m = Matrix::<f64>::from_fn(6, 6, |i, j| (i * 10 + j) as f64);
        let v = m.as_ref().submatrix(2, 3, 3, 2);
        assert_eq!(v.nrows(), 3);
        assert_eq!(v.ncols(), 2);
        assert_eq!(v.get(0, 0), 23.0);
        assert_eq!(v.get(2, 1), 44.0);
        assert_eq!(v.ld(), 6);
    }

    #[test]
    fn submatrix_mut_writes_through() {
        let mut m = Matrix::<f64>::zeros(4, 4);
        {
            let mut v = m.as_mut();
            let mut s = v.submatrix_mut(1, 1, 2, 2);
            s.set(0, 0, 7.0);
            s.set(1, 1, 8.0);
        }
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.get(2, 2), 8.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn col_slices() {
        let m = Matrix::<f64>::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.as_ref().col(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn split_rows_disjoint() {
        let mut m = Matrix::<f64>::zeros(6, 2);
        let (mut top, mut bot) = m.as_mut().split_rows_mut(2);
        assert_eq!(top.nrows(), 2);
        assert_eq!(bot.nrows(), 4);
        top.set(1, 1, 1.0);
        bot.set(0, 1, 2.0);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(2, 1), 2.0);
    }

    #[test]
    fn view_from_slice_with_ld() {
        // 2x2 view with ld=3 over a 3x2 buffer: picks rows 0..2.
        let data = [1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0];
        let v = MatRef::from_slice(&data, 2, 2, 3).unwrap();
        assert_eq!(v.get(0, 0), 1.0);
        assert_eq!(v.get(1, 0), 2.0);
        assert_eq!(v.get(0, 1), 4.0);
        assert_eq!(v.get(1, 1), 5.0);
    }

    #[test]
    fn view_validation() {
        let data = [0.0f64; 5];
        assert!(MatRef::from_slice(&data, 2, 2, 1).is_err(), "ld < nrows");
        assert!(MatRef::from_slice(&data, 2, 3, 2).is_err(), "too short");
        assert!(MatRef::from_slice(&data, 2, 2, 3).is_ok());
    }

    #[test]
    fn copy_from_and_fill() {
        let src = Matrix::<f64>::random(3, 3, 9);
        let mut dst = Matrix::<f64>::zeros(3, 3);
        dst.as_mut().copy_from(&src.as_ref());
        assert_eq!(dst.as_slice(), src.as_slice());
        dst.as_mut().fill(0.5);
        assert!(dst.as_slice().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn norms() {
        let m = Matrix::<f64>::from_fn(2, 2, |i, j| {
            if i == 0 && j == 0 {
                3.0
            } else {
                4.0 * ((i + j) % 2) as f64
            }
        });
        // entries: 3, 0 / 4? layout irrelevant; just check frobenius of known matrix
        let m2 = Matrix::<f64>::from_col_major(2, 2, &[3.0, 4.0, 0.0, 0.0]).unwrap();
        assert!((m2.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m2.max_abs(), 4.0);
        let _ = m;
    }

    #[test]
    fn diff_metrics() {
        let a = Matrix::<f64>::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(1, 1, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!((a.rel_max_diff(&b) - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn oob_get_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "submatrix out of bounds")]
    fn oob_submatrix_panics() {
        let m = Matrix::<f64>::zeros(2, 2);
        let _ = m.as_ref().submatrix(1, 1, 2, 2);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::<f64>::zeros(0, 5);
        assert_eq!(m.nrows(), 0);
        let v = m.as_ref();
        assert_eq!(v.ncols(), 5);
    }
}
