//! Triple-loop GEMM: the correctness floor and performance zero-point.

use ftgemm_core::reference::naive_gemm;
use ftgemm_core::{MatMut, MatRef, Scalar};

/// The unblocked, unvectorized jik-loop GEMM.
///
/// Used as the numerical oracle in tests and as the zero-point in the
/// benchmark harness (it shows where "no optimization at all" lands).
#[derive(Debug, Default, Clone, Copy)]
pub struct NaiveGemm;

impl NaiveGemm {
    /// Display name for reports.
    pub const NAME: &'static str = "naive";

    /// `C = alpha*A*B + beta*C`.
    pub fn run<T: Scalar>(
        &self,
        alpha: T,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        beta: T,
        c: &mut MatMut<'_, T>,
    ) {
        naive_gemm(alpha, a, b, beta, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::Matrix;

    #[test]
    fn identity_times_identity() {
        let id = Matrix::<f64>::identity(8);
        let mut c = Matrix::<f64>::zeros(8, 8);
        NaiveGemm.run(1.0, &id.as_ref(), &id.as_ref(), 0.0, &mut c.as_mut());
        assert!(c.max_abs_diff(&id) == 0.0);
    }
}
