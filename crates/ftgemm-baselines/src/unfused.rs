//! Traditional (unfused) ABFT baseline.
//!
//! Same checksum algebra as FT-GEMM, but every checksum operation is a
//! separate O(n^2) memory pass: encoding `C`'s checksums re-reads `C` after
//! scaling, `B_c`/`A_r` encoding re-reads the operand panels, and the
//! reference checksums re-read the updated `C` block after the macro kernel
//! instead of riding in registers. On AVX-512-class machines these passes
//! no longer amortize — the paper quotes ~15% overhead vs ~3% fused (§2.2),
//! which experiment T1 reproduces with this baseline.

use ftgemm_abft::{ft_gemm_with_ctx, FtConfig, FtGemmContext, FtReport, FtResult};
use ftgemm_core::{MatMut, MatRef, Scalar};
use ftgemm_parallel::{par_ft_gemm, ParGemmContext};

/// Serial unfused-ABFT GEMM (traditional scheme).
pub fn unfused_ft_gemm<T: Scalar>(
    ctx: &mut FtGemmContext<T>,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    let cfg = FtConfig::unfused();
    ft_gemm_with_ctx(ctx, &cfg, alpha, a, b, beta, c)
}

/// Parallel unfused-ABFT GEMM.
pub fn unfused_par_ft_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    let cfg = FtConfig::unfused();
    par_ft_gemm(ctx, &cfg, alpha, a, b, beta, c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    #[test]
    fn unfused_serial_correct() {
        let mut ctx = FtGemmContext::<f64>::new();
        let a = Matrix::<f64>::random(50, 40, 1);
        let b = Matrix::<f64>::random(40, 45, 2);
        let mut c = Matrix::<f64>::random(50, 45, 3);
        let mut c_ref = c.clone();
        let rep = unfused_ft_gemm(
            &mut ctx,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
        assert_eq!(rep.detected, 0);
        assert!(rep.verifications > 0);
    }

    #[test]
    fn unfused_parallel_correct() {
        let ctx = ParGemmContext::<f64>::with_threads(3);
        let a = Matrix::<f64>::random(80, 64, 4);
        let b = Matrix::<f64>::random(64, 70, 5);
        let mut c = Matrix::<f64>::zeros(80, 70);
        let mut c_ref = Matrix::<f64>::zeros(80, 70);
        unfused_par_ft_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }
}
