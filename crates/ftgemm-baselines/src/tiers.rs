//! The library stand-ins: packed/blocked GEMMs pinned to distinct ISA tiers.

use ftgemm_core::{gemm, GemmContext, IsaLevel, MatMut, MatRef, Result, Scalar};
use ftgemm_parallel::{par_gemm, ParGemmContext};

/// Which comparator library a stand-in represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// BLIS 0.8.0 stand-in: portable micro-kernel.
    Blis,
    /// OpenBLAS 0.3.13 stand-in: AVX2+FMA micro-kernel.
    OpenBlas,
    /// Intel MKL 2020.2 stand-in: best available micro-kernel.
    Mkl,
}

impl Tier {
    /// ISA tier this stand-in is pinned to (clamped to what the CPU has).
    pub fn isa(self) -> IsaLevel {
        let best = IsaLevel::detect();
        let want = match self {
            Tier::Blis => IsaLevel::Portable,
            Tier::OpenBlas => IsaLevel::Avx2Fma,
            Tier::Mkl => best,
        };
        want.min(best)
    }

    /// Report name (the `*` marks a stand-in, per DESIGN.md).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Blis => "BLIS*",
            Tier::OpenBlas => "OpenBLAS*",
            Tier::Mkl => "MKL*",
        }
    }
}

/// Serial library stand-in: a packed cache-blocked GEMM at a pinned tier.
#[derive(Debug)]
pub struct ReferenceGemm<T: Scalar> {
    /// The tier this instance represents.
    pub tier: Tier,
    ctx: GemmContext<T>,
}

impl<T: Scalar> ReferenceGemm<T> {
    /// Stand-in for the given tier.
    pub fn new(tier: Tier) -> Self {
        ReferenceGemm {
            tier,
            ctx: GemmContext::with_isa(tier.isa()),
        }
    }

    /// BLIS stand-in.
    pub fn blis() -> Self {
        Self::new(Tier::Blis)
    }
    /// OpenBLAS stand-in.
    pub fn openblas() -> Self {
        Self::new(Tier::OpenBlas)
    }
    /// MKL stand-in.
    pub fn mkl() -> Self {
        Self::new(Tier::Mkl)
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        self.tier.name()
    }

    /// `C = alpha*A*B + beta*C`.
    pub fn run(
        &mut self,
        alpha: T,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        beta: T,
        c: &mut MatMut<'_, T>,
    ) -> Result<()> {
        gemm(&mut self.ctx, alpha, a, b, beta, c)
    }
}

/// Parallel library stand-in.
#[derive(Debug)]
pub struct ReferenceParGemm<T: Scalar> {
    /// The tier this instance represents.
    pub tier: Tier,
    ctx: ParGemmContext<T>,
}

impl<T: Scalar> ReferenceParGemm<T> {
    /// Stand-in for `tier` with `threads` workers.
    pub fn new(tier: Tier, threads: usize) -> Self {
        ReferenceParGemm {
            tier,
            ctx: ParGemmContext::with_threads_and_isa(threads, tier.isa()),
        }
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        self.tier.name()
    }

    /// `C = alpha*A*B + beta*C`, parallel.
    pub fn run(
        &self,
        alpha: T,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        beta: T,
        c: &mut MatMut<'_, T>,
    ) -> Result<()> {
        par_gemm(&self.ctx, alpha, a, b, beta, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    #[test]
    fn all_tiers_correct_serial() {
        for tier in [Tier::Blis, Tier::OpenBlas, Tier::Mkl] {
            let mut g = ReferenceGemm::<f64>::new(tier);
            let a = Matrix::<f64>::random(65, 47, 1);
            let b = Matrix::<f64>::random(47, 53, 2);
            let mut c = Matrix::<f64>::random(65, 53, 3);
            let mut c_ref = c.clone();
            g.run(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c.as_mut())
                .unwrap();
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{}", g.name());
        }
    }

    #[test]
    fn all_tiers_correct_parallel() {
        for tier in [Tier::Blis, Tier::OpenBlas, Tier::Mkl] {
            let g = ReferenceParGemm::<f64>::new(tier, 4);
            let a = Matrix::<f64>::random(96, 60, 4);
            let b = Matrix::<f64>::random(60, 72, 5);
            let mut c = Matrix::<f64>::zeros(96, 72);
            let mut c_ref = Matrix::<f64>::zeros(96, 72);
            g.run(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut())
                .unwrap();
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{}", g.name());
        }
    }

    #[test]
    fn tier_isa_clamped_to_cpu() {
        for tier in [Tier::Blis, Tier::OpenBlas, Tier::Mkl] {
            assert!(tier.isa() <= IsaLevel::detect());
        }
        assert_eq!(Tier::Blis.isa(), IsaLevel::Portable);
    }

    #[test]
    fn names_marked_as_stand_ins() {
        assert!(Tier::Mkl.name().ends_with('*'));
        assert!(Tier::Blis.name().ends_with('*'));
        assert!(Tier::OpenBlas.name().ends_with('*'));
    }
}
