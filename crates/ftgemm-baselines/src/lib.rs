//! # ftgemm-baselines
//!
//! Comparator GEMM implementations for the paper's evaluation.
//!
//! The paper benchmarks against Intel MKL 2020.2, OpenBLAS 0.3.13 and BLIS
//! 0.8.0. Those libraries are not linkable here (closed-source / external C
//! toolchains), so per the substitution policy in `DESIGN.md` each is stood
//! in by an in-repo packed/blocked GEMM pinned to a distinct optimization
//! tier, preserving the *relative* structure of the comparison:
//!
//! | paper library | stand-in | tier |
//! |---|---|---|
//! | BLIS (slowest of the three in the paper) | [`ReferenceGemm::blis`] | packed + blocked, portable auto-vectorized micro-kernel |
//! | OpenBLAS | [`ReferenceGemm::openblas`] | packed + blocked, AVX2+FMA micro-kernel |
//! | MKL (strongest comparator) | [`ReferenceGemm::mkl`] | packed + blocked, best SIMD tier (AVX-512 when available) |
//!
//! Names carry a `*` suffix in reports to mark them as stand-ins.
//!
//! Also provided:
//! * [`NaiveGemm`] — the triple-loop oracle (sanity floor);
//! * [`BlockedGemm`] — cache-blocked but unpacked/unvectorized (shows why
//!   packing matters);
//! * [`unfused_ft_gemm`] — "traditional" ABFT with separate O(n^2) checksum
//!   passes (the ~15%-overhead baseline of §2.2).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod blocked;
mod naive;
mod tiers;
mod unfused;

pub use blocked::BlockedGemm;
pub use naive::NaiveGemm;
pub use tiers::{ReferenceGemm, ReferenceParGemm, Tier};
pub use unfused::{unfused_ft_gemm, unfused_par_ft_gemm};
