//! Cache-blocked but unpacked GEMM.
//!
//! One rung above naive: loop tiling keeps operand blocks cache-resident,
//! but without packing the inner loops still stride through memory and the
//! compiler must vectorize strided accesses. The gap between this and the
//! packed tiers quantifies the value of packing (the paper's §2.1 frame).

use ftgemm_core::{MatMut, MatRef, Scalar};

/// Register/cache-tiled GEMM without packing or explicit SIMD.
#[derive(Debug, Clone, Copy)]
pub struct BlockedGemm {
    /// Tile edge for the i/j/p loops.
    pub block: usize,
}

impl Default for BlockedGemm {
    fn default() -> Self {
        BlockedGemm { block: 64 }
    }
}

impl BlockedGemm {
    /// Display name for reports.
    pub const NAME: &'static str = "blocked-nopack";

    /// `C = alpha*A*B + beta*C`.
    pub fn run<T: Scalar>(
        &self,
        alpha: T,
        a: &MatRef<'_, T>,
        b: &MatRef<'_, T>,
        beta: T,
        c: &mut MatMut<'_, T>,
    ) {
        let m = a.nrows();
        let k = a.ncols();
        let n = b.ncols();
        assert_eq!(b.nrows(), k, "BlockedGemm: inner dimension mismatch");
        assert_eq!(c.nrows(), m, "BlockedGemm: C rows mismatch");
        assert_eq!(c.ncols(), n, "BlockedGemm: C cols mismatch");
        let bs = self.block.max(1);

        ftgemm_core::gemm::scale_c(c, beta);
        if alpha == T::ZERO {
            return;
        }

        // jc/pc/ic tiling; the micro loop is j-i-p with a column-contiguous
        // inner axis so LLVM can vectorize the i loop.
        let mut jj = 0;
        while jj < n {
            let nb = bs.min(n - jj);
            let mut pp = 0;
            while pp < k {
                let kb = bs.min(k - pp);
                let mut ii = 0;
                while ii < m {
                    let mb = bs.min(m - ii);
                    for j in jj..jj + nb {
                        for p in pp..pp + kb {
                            let w = alpha * b.get(p, j);
                            if w == T::ZERO {
                                continue;
                            }
                            let a_col = &a.col(p)[ii..ii + mb];
                            let c_col = &mut c.col_mut(j)[ii..ii + mb];
                            for i in 0..mb {
                                c_col[i] = a_col[i].mul_add(w, c_col[i]);
                            }
                        }
                    }
                    ii += bs;
                }
                pp += bs;
            }
            jj += bs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    #[test]
    fn matches_naive() {
        for &(m, n, k) in &[(5usize, 7usize, 9usize), (64, 64, 64), (100, 33, 77)] {
            let a = Matrix::<f64>::random(m, k, 1);
            let b = Matrix::<f64>::random(k, n, 2);
            let mut c1 = Matrix::<f64>::random(m, n, 3);
            let mut c2 = c1.clone();
            BlockedGemm::default().run(1.5, &a.as_ref(), &b.as_ref(), -0.5, &mut c1.as_mut());
            naive_gemm(1.5, &a.as_ref(), &b.as_ref(), -0.5, &mut c2.as_mut());
            assert!(c1.rel_max_diff(&c2) < 1e-10, "{m}x{n}x{k}");
        }
    }

    #[test]
    fn small_block_size() {
        let a = Matrix::<f64>::random(20, 20, 4);
        let b = Matrix::<f64>::random(20, 20, 5);
        let mut c1 = Matrix::<f64>::zeros(20, 20);
        let mut c2 = Matrix::<f64>::zeros(20, 20);
        BlockedGemm { block: 3 }.run(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c1.as_mut());
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c2.as_mut());
        assert!(c1.rel_max_diff(&c2) < 1e-10);
    }

    #[test]
    fn alpha_zero_scales_only() {
        let a = Matrix::<f64>::random(4, 4, 6);
        let b = Matrix::<f64>::random(4, 4, 7);
        let mut c = Matrix::<f64>::filled(4, 4, 2.0);
        BlockedGemm::default().run(0.0, &a.as_ref(), &b.as_ref(), 3.0, &mut c.as_mut());
        assert!(c.as_slice().iter().all(|&v| v == 6.0));
    }
}
