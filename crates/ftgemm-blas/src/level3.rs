//! BLAS-compatible Level-3 entry points over raw column-major slices.
//!
//! These mirror the reference `cblas_dgemm`/`cblas_sgemm` signatures
//! (column-major layout, transpose flags, leading dimensions) so code
//! ported from C BLAS can call FT-GEMM directly. Both the plain and the
//! fault-tolerant drivers are exposed.

use crate::dmr::DmrConfig;
use ftgemm_abft::{ft_gemm, FtConfig, FtReport, FtResult};
use ftgemm_core::{gemm_op, GemmContext, MatMut, MatRef, Op, Result, Scalar};

/// Transpose flag, mirroring CBLAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// `op(X) = X`
    None,
    /// `op(X) = X^T`
    Trans,
}

impl From<Transpose> for Op {
    fn from(t: Transpose) -> Op {
        match t {
            Transpose::None => Op::NoTrans,
            Transpose::Trans => Op::Trans,
        }
    }
}

/// Generic BLAS-style GEMM over raw column-major slices:
/// `C = alpha * op(A) * op(B) + beta * C`.
///
/// * `a`: `lda x (k or m)` column-major storage; logical `op(A)` is `m x k`.
/// * `b`: `ldb x (n or k)`; logical `op(B)` is `k x n`.
/// * `c`: `ldc x n`; always `m x n` untransposed.
#[allow(clippy::too_many_arguments)]
pub fn gemm_blas<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) -> Result<()> {
    let (a_rows, a_cols) = match transa {
        Transpose::None => (m, k),
        Transpose::Trans => (k, m),
    };
    let (b_rows, b_cols) = match transb {
        Transpose::None => (k, n),
        Transpose::Trans => (n, k),
    };
    let a_view = MatRef::from_slice(a, a_rows, a_cols, lda)?;
    let b_view = MatRef::from_slice(b, b_rows, b_cols, ldb)?;
    let mut c_view = MatMut::from_slice(c, m, n, ldc)?;
    let mut ctx = GemmContext::<T>::new();
    gemm_op(
        &mut ctx,
        transa.into(),
        transb.into(),
        alpha,
        &a_view,
        &b_view,
        beta,
        &mut c_view,
    )
}

/// `dgemm`: the classic double-precision BLAS-3 signature.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) -> Result<()> {
    gemm_blas(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

/// `sgemm`: single-precision BLAS-3.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) -> Result<()> {
    gemm_blas(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

/// Fault-tolerant `dgemm` (NoTrans/NoTrans; the ABFT checksum layout is
/// defined on untransposed operands — transpose inputs up front if needed).
#[allow(clippy::too_many_arguments)]
pub fn ft_dgemm(
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
    cfg: &FtConfig,
) -> FtResult<FtReport> {
    let a_view = MatRef::from_slice(a, m, k, lda).map_err(ftgemm_abft::FtError::Core)?;
    let b_view = MatRef::from_slice(b, k, n, ldb).map_err(ftgemm_abft::FtError::Core)?;
    let mut c_view = MatMut::from_slice(c, m, n, ldc).map_err(ftgemm_abft::FtError::Core)?;
    ft_gemm(cfg, alpha, &a_view, &b_view, beta, &mut c_view)
}

/// DMR-protected DGEMV over raw slices (BLAS signature, NoTrans).
#[allow(clippy::too_many_arguments)]
pub fn ft_dgemv(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
    cfg: &DmrConfig,
) -> Result<crate::dmr::DmrReport> {
    let a_view = MatRef::from_slice(a, m, n, lda)?;
    Ok(crate::level2_ft::ft_gemv(cfg, alpha, &a_view, x, beta, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::Matrix;

    #[test]
    fn dgemm_matches_oracle_all_transposes() {
        let (m, n, k) = (23, 17, 31);
        let a_log = Matrix::<f64>::random(m, k, 1);
        let b_log = Matrix::<f64>::random(k, n, 2);
        let mut c_exp = Matrix::<f64>::random(m, n, 3);
        let c0 = c_exp.clone();
        naive_gemm(
            2.0,
            &a_log.as_ref(),
            &b_log.as_ref(),
            -1.0,
            &mut c_exp.as_mut(),
        );

        for (ta, tb) in [
            (Transpose::None, Transpose::None),
            (Transpose::Trans, Transpose::None),
            (Transpose::None, Transpose::Trans),
            (Transpose::Trans, Transpose::Trans),
        ] {
            let a_stored = match ta {
                Transpose::None => a_log.clone(),
                Transpose::Trans => a_log.transpose(),
            };
            let b_stored = match tb {
                Transpose::None => b_log.clone(),
                Transpose::Trans => b_log.transpose(),
            };
            let mut c = c0.clone();
            dgemm(
                ta,
                tb,
                m,
                n,
                k,
                2.0,
                a_stored.as_slice(),
                a_stored.nrows(),
                b_stored.as_slice(),
                b_stored.nrows(),
                -1.0,
                c.as_mut_slice(),
                m,
            )
            .unwrap();
            assert!(c.rel_max_diff(&c_exp) < 1e-10, "{ta:?}/{tb:?}");
        }
    }

    #[test]
    fn dgemm_with_padded_ld() {
        // lda > rows: BLAS-style padded storage.
        let (m, n, k) = (4, 3, 5);
        let lda = 7;
        let a_log = Matrix::<f64>::random(m, k, 4);
        let mut a_padded = vec![9.9; lda * k];
        for q in 0..k {
            for i in 0..m {
                a_padded[i + q * lda] = a_log.get(i, q);
            }
        }
        let b = Matrix::<f64>::random(k, n, 5);
        let mut c = Matrix::<f64>::zeros(m, n);
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        dgemm(
            Transpose::None,
            Transpose::None,
            m,
            n,
            k,
            1.0,
            &a_padded,
            lda,
            b.as_slice(),
            k,
            0.0,
            c.as_mut_slice(),
            m,
        )
        .unwrap();
        naive_gemm(1.0, &a_log.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn sgemm_basic() {
        let n = 16;
        let id = Matrix::<f32>::identity(n);
        let a = Matrix::<f32>::random(n, n, 6);
        let mut c = Matrix::<f32>::zeros(n, n);
        sgemm(
            Transpose::None,
            Transpose::None,
            n,
            n,
            n,
            1.0,
            a.as_slice(),
            n,
            id.as_slice(),
            n,
            0.0,
            c.as_mut_slice(),
            n,
        )
        .unwrap();
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn ft_dgemm_raw_slices() {
        let (m, n, k) = (40, 30, 50);
        let a = Matrix::<f64>::random(m, k, 7);
        let b = Matrix::<f64>::random(k, n, 8);
        let mut c = vec![0.0; m * n];
        let rep = ft_dgemm(
            m,
            n,
            k,
            1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            k,
            0.0,
            &mut c,
            m,
            &FtConfig::default(),
        )
        .unwrap();
        assert_eq!(rep.detected, 0);
        let mut c_ref = Matrix::<f64>::zeros(m, n);
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        let got = Matrix::from_col_major(m, n, &c).unwrap();
        assert!(got.rel_max_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn ld_validation_errors() {
        let a = vec![0.0; 4];
        let b = vec![0.0; 4];
        let mut c = vec![0.0; 4];
        // lda too small for m=4
        assert!(dgemm(
            Transpose::None,
            Transpose::None,
            4,
            1,
            1,
            1.0,
            &a,
            2,
            &b,
            1,
            0.0,
            &mut c,
            4
        )
        .is_err());
    }
}
