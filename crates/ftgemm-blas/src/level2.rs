//! Plain Level-2 BLAS routines (column-major, unit increments).

use ftgemm_core::{MatRef, Scalar};

/// Whether a triangular matrix is stored in its lower or upper part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// GEMV: `y = alpha * A * x + beta * y` (column-sweep formulation, the
/// cache-friendly order for column-major `A`).
pub fn gemv<T: Scalar>(alpha: T, a: &MatRef<'_, T>, x: &[T], beta: T, y: &mut [T]) {
    let m = a.nrows();
    let n = a.ncols();
    assert_eq!(x.len(), n, "gemv: x length");
    assert_eq!(y.len(), m, "gemv: y length");

    if beta == T::ZERO {
        y.fill(T::ZERO);
    } else if beta != T::ONE {
        for v in y.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == T::ZERO {
        return;
    }
    for j in 0..n {
        let w = alpha * x[j];
        if w == T::ZERO {
            continue;
        }
        let col = a.col(j);
        for i in 0..m {
            y[i] = col[i].mul_add(w, y[i]);
        }
    }
}

/// GER: rank-1 update `A += alpha * x * y^T` applied to a dense buffer in
/// column-major order with leading dimension `lda`.
pub fn ger<T: Scalar>(alpha: T, x: &[T], y: &[T], a: &mut [T], lda: usize) {
    let m = x.len();
    let n = y.len();
    assert!(lda >= m.max(1), "ger: lda too small");
    assert!(
        a.len() >= if n == 0 { 0 } else { lda * (n - 1) + m },
        "ger: A too small"
    );
    for j in 0..n {
        let w = alpha * y[j];
        if w == T::ZERO {
            continue;
        }
        let col = &mut a[j * lda..j * lda + m];
        for i in 0..m {
            col[i] = x[i].mul_add(w, col[i]);
        }
    }
}

/// TRSV: solves `T * x = b` in place (`x` holds `b` on entry, the solution
/// on exit) for a non-unit-diagonal triangular matrix.
pub fn trsv<T: Scalar>(tri: Triangle, a: &MatRef<'_, T>, x: &mut [T]) {
    let n = a.nrows();
    assert_eq!(a.ncols(), n, "trsv: matrix must be square");
    assert_eq!(x.len(), n, "trsv: x length");
    match tri {
        Triangle::Lower => {
            // Forward substitution, column-oriented.
            for j in 0..n {
                let xj = x[j] / a.get(j, j);
                x[j] = xj;
                let col = a.col(j);
                for i in j + 1..n {
                    x[i] -= col[i] * xj;
                }
            }
        }
        Triangle::Upper => {
            // Backward substitution, column-oriented.
            for j in (0..n).rev() {
                let xj = x[j] / a.get(j, j);
                x[j] = xj;
                let col = a.col(j);
                for i in 0..j {
                    x[i] -= col[i] * xj;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemv;
    use ftgemm_core::Matrix;

    #[test]
    fn gemv_matches_naive() {
        let a = Matrix::<f64>::random(23, 17, 1);
        let x: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let mut y1: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let mut y2 = y1.clone();
        gemv(1.5, &a.as_ref(), &x, -0.5, &mut y1);
        naive_gemv(1.5, &a.as_ref(), &x, -0.5, &mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_beta_zero_clears_nan() {
        let a = Matrix::<f64>::identity(2);
        let x = [1.0, 2.0];
        let mut y = [f64::NAN, f64::NAN];
        gemv(1.0, &a.as_ref(), &x, 0.0, &mut y);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn ger_rank1() {
        let mut a = vec![0.0f64; 6]; // 2x3, lda=2
        ger(2.0, &[1.0, 10.0], &[1.0, 2.0, 3.0], &mut a, 2);
        assert_eq!(a, vec![2.0, 20.0, 4.0, 40.0, 6.0, 60.0]);
    }

    #[test]
    fn trsv_lower_and_upper() {
        let n = 12;
        let l = Matrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                2.0 + i as f64 * 0.1
            } else if i > j {
                0.3 * ((i * 7 + j) % 5) as f64 / 5.0
            } else {
                0.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        // b = L * x_true
        let mut b = vec![0.0; n];
        naive_gemv(1.0, &l.as_ref(), &x_true, 0.0, &mut b);
        trsv(Triangle::Lower, &l.as_ref(), &mut b);
        for (p, q) in b.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-10);
        }

        let u = l.transpose();
        let mut b = vec![0.0; n];
        naive_gemv(1.0, &u.as_ref(), &x_true, 0.0, &mut b);
        trsv(Triangle::Upper, &u.as_ref(), &mut b);
        for (p, q) in b.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-10);
        }
    }
}
