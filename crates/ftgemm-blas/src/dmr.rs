//! DMR configuration and reporting shared by the FT Level-1/2 routines.

use ftgemm_faults::FaultInjector;

/// Configuration for DMR-protected routines.
#[derive(Debug, Clone)]
pub struct DmrConfig {
    /// Block length over which results are duplicated and compared.
    /// Smaller blocks detect earlier but compare more often.
    pub block: usize,
    /// Optional injector; one injection site per duplicated block.
    pub injector: Option<FaultInjector>,
    /// Stream id disambiguator (callers bump per invocation).
    pub stream_id: u64,
}

impl Default for DmrConfig {
    fn default() -> Self {
        DmrConfig {
            block: 512,
            injector: None,
            stream_id: 0,
        }
    }
}

impl DmrConfig {
    /// Config with an injector attached.
    pub fn with_injector(injector: FaultInjector) -> Self {
        DmrConfig {
            injector: Some(injector),
            ..Default::default()
        }
    }
}

/// Outcome counters of one DMR-protected call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmrReport {
    /// Duplicated blocks processed.
    pub blocks: usize,
    /// Blocks whose duplicate results disagreed.
    pub mismatches: usize,
    /// Blocks recomputed to resolve a mismatch.
    pub recomputed: usize,
    /// Errors injected by the attached injector.
    pub injected: usize,
}

impl DmrReport {
    /// Accumulates another report.
    pub fn absorb(&mut self, o: DmrReport) {
        self.blocks += o.blocks;
        self.mismatches += o.mismatches;
        self.recomputed += o.recomputed;
        self.injected += o.injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = DmrConfig::default();
        assert_eq!(c.block, 512);
        assert!(c.injector.is_none());
    }

    #[test]
    fn absorb_sums() {
        let mut a = DmrReport {
            blocks: 1,
            mismatches: 2,
            recomputed: 3,
            injected: 4,
        };
        a.absorb(a);
        assert_eq!(a.blocks, 2);
        assert_eq!(a.injected, 8);
    }
}
