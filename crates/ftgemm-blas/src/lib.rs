//! # ftgemm-blas
//!
//! FT-BLAS companion routines: Level-1 and Level-2 BLAS with **DMR** (dual
//! modular redundancy) fault tolerance.
//!
//! FT-GEMM is built within the FT-BLAS framework (Zhai et al., ICS '21 —
//! reference \[4\] of the paper), which splits routines by arithmetic
//! intensity: compute-bound GEMM gets ABFT checksums (see `ftgemm-abft`),
//! while **memory-bound** Level-1/2 routines get DMR — every arithmetic
//! result is computed twice and compared, and a mismatch triggers a
//! recompute (a third vote). The paper's §3 measurements run "with fault
//! tolerant DMR and ABFT operating", so a faithful reproduction carries
//! both layers.
//!
//! FT-BLAS implements DMR at the instruction level inside assembly kernels
//! (duplicated registers); in safe-ish Rust we emulate it at **block**
//! granularity: each block of the vector is computed twice into independent
//! accumulators/temporaries, compared exactly (identical instruction
//! ordering makes clean duplicates bit-identical), and recomputed on
//! mismatch. The substitution preserves the detection/correction semantics
//! and the doubled-arithmetic cost profile; see DESIGN.md.
//!
//! Fault injection hooks corrupt one copy of a duplicated block, exercising
//! the detection path deterministically.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod dmr;
pub mod level1;
pub mod level1_ft;
pub mod level2;
pub mod level2_ft;
pub mod level3;

pub use dmr::{DmrConfig, DmrReport};
