//! Plain Level-1 BLAS routines (the unprotected baselines).
//!
//! Signatures follow BLAS semantics on contiguous slices (increments of 1 —
//! the common case the paper benchmarks). All are type-generic over
//! [`Scalar`].

use ftgemm_core::Scalar;

/// `x = alpha * x` (SCAL).
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// `y = alpha * x + y` (AXPY).
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (xi, yi) in x.iter().zip(y.iter_mut()) {
        *yi = alpha.mul_add(*xi, *yi);
    }
}

/// Dot product (DOT).
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    let mut acc = T::ZERO;
    for (xi, yi) in x.iter().zip(y.iter()) {
        acc = xi.mul_add(*yi, acc);
    }
    acc
}

/// Euclidean norm (NRM2). Unscaled accumulation — adequate for the
/// benchmark value ranges; a production BLAS would rescale.
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    let mut acc = T::ZERO;
    for xi in x {
        acc = xi.mul_add(*xi, acc);
    }
    acc.sqrt()
}

/// Sum of absolute values (ASUM).
pub fn asum<T: Scalar>(x: &[T]) -> T {
    let mut acc = T::ZERO;
    for xi in x {
        acc += xi.abs();
    }
    acc
}

/// Index of the element with maximum absolute value (IAMAX).
/// Returns 0 for an empty slice-of-zero-length contract consistency.
pub fn iamax<T: Scalar>(x: &[T]) -> usize {
    let mut best = 0usize;
    let mut best_v = T::ZERO;
    for (i, xi) in x.iter().enumerate() {
        let a = xi.abs();
        if a > best_v {
            best_v = a;
            best = i;
        }
    }
    best
}

/// `y = x` (COPY).
pub fn copy<T: Scalar>(x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

/// Exchanges `x` and `y` (SWAP).
pub fn swap<T: Scalar>(x: &mut [T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    x.swap_with_slice(y);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scal_basic() {
        let mut x = [1.0f64, -2.0, 3.0];
        scal(2.0, &mut x);
        assert_eq!(x, [2.0, -4.0, 6.0]);
    }

    #[test]
    fn axpy_basic() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0f64, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot::<f64>(&[], &[]), 0.0);
    }

    #[test]
    fn nrm2_pythagorean() {
        assert!((nrm2(&[3.0f64, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn asum_abs() {
        assert_eq!(asum(&[1.0f64, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn iamax_finds_largest() {
        assert_eq!(iamax(&[1.0f64, -7.0, 3.0]), 1);
        assert_eq!(iamax::<f64>(&[]), 0);
        // ties keep the first index (BLAS convention)
        assert_eq!(iamax(&[5.0f64, -5.0]), 0);
    }

    #[test]
    fn copy_swap() {
        let x = [1.0f64, 2.0];
        let mut y = [0.0f64; 2];
        copy(&x, &mut y);
        assert_eq!(y, x);
        let mut a = [1.0f64, 2.0];
        let mut b = [3.0f64, 4.0];
        swap(&mut a, &mut b);
        assert_eq!(a, [3.0, 4.0]);
        assert_eq!(b, [1.0, 2.0]);
    }

    #[test]
    fn f32_variants() {
        let mut x = [1.0f32, 2.0];
        scal(0.5f32, &mut x);
        assert_eq!(x, [0.5, 1.0]);
        assert_eq!(dot(&[1.0f32, 1.0], &[2.0, 3.0]), 5.0);
    }
}
