//! DMR-protected Level-1 routines.
//!
//! Per block: compute the result twice with identical instruction order
//! (clean duplicates are bit-identical), compare exactly, and on mismatch
//! recompute a third time, taking the majority (two equal votes win).
//! A fault injector, when attached, corrupts copy 1 of a block — every
//! injected error is therefore detected and voted out.

use crate::dmr::{DmrConfig, DmrReport};
use crate::level1;
use ftgemm_core::Scalar;
use ftgemm_faults::SiteStream;

/// Applies an injection event to one element of the primary copy.
fn maybe_corrupt<T: Scalar>(stream: &mut Option<SiteStream>, block: &mut [T], rep: &mut DmrReport) {
    if let Some(s) = stream.as_mut() {
        if let Some(ev) = s.poll() {
            if !block.is_empty() {
                rep.injected += 1;
                let i = (ev.lane as usize) % block.len();
                block[i] = T::from_f64(ev.apply_f64(block[i].to_f64()));
            }
        }
    }
}

/// Majority vote between two copies (with a third recompute on mismatch).
///
/// `compute` fills its output slice deterministically from captured inputs.
fn dmr_blocks<T: Scalar>(
    cfg: &DmrConfig,
    out: &mut [T],
    mut compute: impl FnMut(usize, &mut [T]),
) -> DmrReport {
    let mut rep = DmrReport::default();
    let mut stream = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(cfg.stream_id, out.len().div_ceil(cfg.block.max(1))));
    let block = cfg.block.max(1);
    let mut tmp1 = vec![T::ZERO; block];
    let mut tmp2 = vec![T::ZERO; block];

    let mut start = 0;
    while start < out.len() {
        let len = block.min(out.len() - start);
        rep.blocks += 1;
        let (t1, t2) = (&mut tmp1[..len], &mut tmp2[..len]);
        compute(start, t1);
        compute(start, t2);
        maybe_corrupt(&mut stream, t1, &mut rep);
        if t1 != t2 {
            rep.mismatches += 1;
            rep.recomputed += 1;
            if let Some(inj) = cfg.injector.as_ref() {
                inj.stats().record_detected();
            }
            // Third vote.
            let mut t3 = vec![T::ZERO; len];
            compute(start, &mut t3);
            let winner: &[T] = if t3 == *t2 {
                t2
            } else if t3 == *t1 {
                t1
            } else {
                // All three differ (multiple faults): trust the freshest.
                &t3
            };
            out[start..start + len].copy_from_slice(winner);
            if let Some(inj) = cfg.injector.as_ref() {
                inj.stats().record_corrected();
            }
        } else {
            out[start..start + len].copy_from_slice(t1);
        }
        start += len;
    }
    rep
}

/// DMR-protected SCAL: `x = alpha * x`.
pub fn ft_scal<T: Scalar>(cfg: &DmrConfig, alpha: T, x: &mut [T]) -> DmrReport {
    let input = x.to_vec();
    dmr_blocks(cfg, x, |start, out| {
        for (i, o) in out.iter_mut().enumerate() {
            *o = alpha * input[start + i];
        }
    })
}

/// DMR-protected AXPY: `y = alpha * x + y`.
pub fn ft_axpy<T: Scalar>(cfg: &DmrConfig, alpha: T, x: &[T], y: &mut [T]) -> DmrReport {
    assert_eq!(x.len(), y.len(), "ft_axpy: length mismatch");
    let y0 = y.to_vec();
    dmr_blocks(cfg, y, |start, out| {
        for (i, o) in out.iter_mut().enumerate() {
            *o = alpha.mul_add(x[start + i], y0[start + i]);
        }
    })
}

/// DMR-protected DOT with duplicated accumulators.
pub fn ft_dot<T: Scalar>(cfg: &DmrConfig, x: &[T], y: &[T]) -> (T, DmrReport) {
    assert_eq!(x.len(), y.len(), "ft_dot: length mismatch");
    let mut rep = DmrReport::default();
    let mut stream = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(cfg.stream_id, x.len().div_ceil(cfg.block.max(1))));
    let block = cfg.block.max(1);
    let mut acc = T::ZERO;
    let mut start = 0;
    while start < x.len() {
        let len = block.min(x.len() - start);
        rep.blocks += 1;
        let mut s1 = level1::dot(&x[start..start + len], &y[start..start + len]);
        let s2 = level1::dot(&x[start..start + len], &y[start..start + len]);
        if let Some(s) = stream.as_mut() {
            if let Some(ev) = s.poll() {
                rep.injected += 1;
                s1 = T::from_f64(ev.apply_f64(s1.to_f64()));
            }
        }
        let v = if s1 == s2 {
            s1
        } else {
            rep.mismatches += 1;
            rep.recomputed += 1;
            if let Some(inj) = cfg.injector.as_ref() {
                inj.stats().record_detected();
                inj.stats().record_corrected();
            }
            let s3 = level1::dot(&x[start..start + len], &y[start..start + len]);
            if s3 == s2 {
                s2
            } else if s3 == s1 {
                s1
            } else {
                s3
            }
        };
        acc += v;
        start += len;
    }
    (acc, rep)
}

/// DMR-protected NRM2.
pub fn ft_nrm2<T: Scalar>(cfg: &DmrConfig, x: &[T]) -> (T, DmrReport) {
    let (ss, rep) = ft_dot(cfg, x, x);
    (ss.sqrt(), rep)
}

/// DMR-protected ASUM.
pub fn ft_asum<T: Scalar>(cfg: &DmrConfig, x: &[T]) -> (T, DmrReport) {
    let mut rep = DmrReport::default();
    let block = cfg.block.max(1);
    let mut acc = T::ZERO;
    let mut start = 0;
    while start < x.len() {
        let len = block.min(x.len() - start);
        rep.blocks += 1;
        let s1 = level1::asum(&x[start..start + len]);
        let s2 = level1::asum(&x[start..start + len]);
        acc += if s1 == s2 {
            s1
        } else {
            rep.mismatches += 1;
            rep.recomputed += 1;
            level1::asum(&x[start..start + len])
        };
        start += len;
    }
    (acc, rep)
}

/// DMR-protected IAMAX (duplicated scan + compare).
pub fn ft_iamax<T: Scalar>(cfg: &DmrConfig, x: &[T]) -> (usize, DmrReport) {
    let mut rep = DmrReport::default();
    rep.blocks = 1;
    let i1 = level1::iamax(x);
    let i2 = level1::iamax(x);
    let idx = if i1 == i2 {
        i1
    } else {
        rep.mismatches += 1;
        rep.recomputed += 1;
        level1::iamax(x)
    };
    let _ = cfg;
    (idx, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_faults::{ErrorModel, FaultInjector, Rate};

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        (x, y)
    }

    #[test]
    fn clean_ft_matches_plain() {
        let cfg = DmrConfig::default();
        let (x, y) = vecs(3000);

        let mut y1 = y.clone();
        let mut y2 = y.clone();
        level1::axpy(1.5, &x, &mut y1);
        let rep = ft_axpy(&cfg, 1.5, &x, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(rep.mismatches, 0);
        assert!(rep.blocks >= 5);

        let (d, _) = ft_dot(&cfg, &x, &y);
        // Blocked summation reorders; compare with tolerance.
        assert!((d - level1::dot(&x, &y)).abs() < 1e-10);

        let (nrm, _) = ft_nrm2(&cfg, &x);
        assert!((nrm - level1::nrm2(&x)).abs() < 1e-10);

        let (s, _) = ft_asum(&cfg, &x);
        assert!((s - level1::asum(&x)).abs() < 1e-10);

        let (i, _) = ft_iamax(&cfg, &x);
        assert_eq!(i, level1::iamax(&x));
    }

    #[test]
    fn ft_scal_clean() {
        let cfg = DmrConfig::default();
        let (x, _) = vecs(1000);
        let mut x1 = x.clone();
        let mut x2 = x.clone();
        level1::scal(-0.25, &mut x1);
        let rep = ft_scal(&cfg, -0.25, &mut x2);
        assert_eq!(x1, x2);
        assert_eq!(rep.mismatches, 0);
    }

    #[test]
    fn injected_errors_detected_and_voted_out_axpy() {
        let inj = FaultInjector::new(3, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(4));
        let mut cfg = DmrConfig::with_injector(inj.clone());
        cfg.block = 64;
        let (x, y) = vecs(2048);
        let mut y_ft = y.clone();
        let rep = ft_axpy(&cfg, 2.0, &x, &mut y_ft);
        let mut y_ref = y.clone();
        level1::axpy(2.0, &x, &mut y_ref);
        assert!(rep.injected > 0, "{rep:?}");
        assert_eq!(rep.mismatches, rep.injected, "{rep:?}");
        assert_eq!(y_ft, y_ref, "corrupted result leaked through DMR");
        assert_eq!(inj.stats().corrected(), rep.recomputed as u64);
    }

    #[test]
    fn injected_errors_detected_dot() {
        let inj = FaultInjector::new(7, ErrorModel::BitFlip { bit: None }, Rate::Count(3));
        let mut cfg = DmrConfig::with_injector(inj);
        cfg.block = 128;
        let (x, y) = vecs(4096);
        let (d_ft, rep) = ft_dot(&cfg, &x, &y);
        let d_ref = {
            // Same blocked order as ft_dot for exact comparison.
            let mut acc = 0.0;
            for c in x.chunks(128).zip(y.chunks(128)) {
                acc += level1::dot(c.0, c.1);
            }
            acc
        };
        assert!(rep.injected > 0);
        assert_eq!(d_ft, d_ref, "rep {rep:?}");
    }

    #[test]
    fn empty_inputs() {
        let cfg = DmrConfig::default();
        let mut empty: [f64; 0] = [];
        let rep = ft_scal(&cfg, 2.0, &mut empty);
        assert_eq!(rep.blocks, 0);
        let (d, _) = ft_dot::<f64>(&cfg, &[], &[]);
        assert_eq!(d, 0.0);
    }
}
