//! DMR-protected Level-2 routines.
//!
//! `y`/`x` outputs are computed twice over column-block panels and compared
//! exactly; a mismatch triggers a third vote. The injector corrupts copy 1
//! of a panel result.

use crate::dmr::{DmrConfig, DmrReport};
use crate::level2::{self, Triangle};
use ftgemm_core::{MatRef, Scalar};

/// DMR-protected GEMV: `y = alpha*A*x + beta*y`.
pub fn ft_gemv<T: Scalar>(
    cfg: &DmrConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    x: &[T],
    beta: T,
    y: &mut [T],
) -> DmrReport {
    let m = a.nrows();
    let n = a.ncols();
    assert_eq!(x.len(), n, "ft_gemv: x length");
    assert_eq!(y.len(), m, "ft_gemv: y length");

    let mut rep = DmrReport::default();
    let mut stream = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(cfg.stream_id, 1));

    // Duplicate the whole GEMV into two buffers (memory-bound routine: the
    // doubled arithmetic is the DMR cost profile FT-BLAS reports).
    let compute = |out: &mut Vec<T>| {
        out.clear();
        out.extend_from_slice(y);
        level2::gemv(alpha, a, x, beta, out.as_mut_slice());
    };
    let mut r1 = Vec::with_capacity(m);
    let mut r2 = Vec::with_capacity(m);
    compute(&mut r1);
    compute(&mut r2);
    rep.blocks = 1;

    if let Some(s) = stream.as_mut() {
        if let Some(ev) = s.poll() {
            if m > 0 {
                rep.injected += 1;
                let i = (ev.lane as usize) % m;
                r1[i] = T::from_f64(ev.apply_f64(r1[i].to_f64()));
            }
        }
    }

    if r1 != r2 {
        rep.mismatches += 1;
        rep.recomputed += 1;
        if let Some(inj) = cfg.injector.as_ref() {
            inj.stats().record_detected();
            inj.stats().record_corrected();
        }
        let mut r3 = Vec::with_capacity(m);
        compute(&mut r3);
        let winner = if r3 == r2 {
            r2
        } else if r3 == r1 {
            r1
        } else {
            r3
        };
        y.copy_from_slice(&winner);
    } else {
        y.copy_from_slice(&r1);
    }
    rep
}

/// DMR-protected GER: `A += alpha * x * y^T`.
pub fn ft_ger<T: Scalar>(
    cfg: &DmrConfig,
    alpha: T,
    x: &[T],
    yv: &[T],
    a: &mut [T],
    lda: usize,
) -> DmrReport {
    let mut rep = DmrReport::default();
    rep.blocks = 1;
    let a0 = a.to_vec();
    let mut r1 = a0.clone();
    let mut r2 = a0.clone();
    level2::ger(alpha, x, yv, &mut r1, lda);
    level2::ger(alpha, x, yv, &mut r2, lda);

    let mut stream = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(cfg.stream_id, 1));
    if let Some(s) = stream.as_mut() {
        if let Some(ev) = s.poll() {
            if !r1.is_empty() {
                rep.injected += 1;
                let i = (ev.lane as usize) % r1.len();
                r1[i] = T::from_f64(ev.apply_f64(r1[i].to_f64()));
            }
        }
    }

    if r1 != r2 {
        rep.mismatches += 1;
        rep.recomputed += 1;
        let mut r3 = a0;
        level2::ger(alpha, x, yv, &mut r3, lda);
        let winner = if r3 == r2 {
            r2
        } else if r3 == r1 {
            r1
        } else {
            r3
        };
        a.copy_from_slice(&winner);
    } else {
        a.copy_from_slice(&r1);
    }
    rep
}

/// DMR-protected TRSV.
pub fn ft_trsv<T: Scalar>(
    cfg: &DmrConfig,
    tri: Triangle,
    a: &MatRef<'_, T>,
    x: &mut [T],
) -> DmrReport {
    let mut rep = DmrReport::default();
    rep.blocks = 1;
    let b = x.to_vec();
    let mut r1 = b.clone();
    let mut r2 = b.clone();
    level2::trsv(tri, a, &mut r1);
    level2::trsv(tri, a, &mut r2);

    let mut stream = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(cfg.stream_id, 1));
    if let Some(s) = stream.as_mut() {
        if let Some(ev) = s.poll() {
            if !r1.is_empty() {
                rep.injected += 1;
                let i = (ev.lane as usize) % r1.len();
                r1[i] = T::from_f64(ev.apply_f64(r1[i].to_f64()));
            }
        }
    }

    if r1 != r2 {
        rep.mismatches += 1;
        rep.recomputed += 1;
        let mut r3 = b;
        level2::trsv(tri, a, &mut r3);
        let winner = if r3 == r2 {
            r2
        } else if r3 == r1 {
            r1
        } else {
            r3
        };
        x.copy_from_slice(&winner);
    } else {
        x.copy_from_slice(&r1);
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemv;
    use ftgemm_core::Matrix;
    use ftgemm_faults::{ErrorModel, FaultInjector, Rate};

    #[test]
    fn ft_gemv_clean_matches() {
        let cfg = DmrConfig::default();
        let a = Matrix::<f64>::random(30, 20, 1);
        let x: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let mut y1: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mut y2 = y1.clone();
        let rep = ft_gemv(&cfg, 2.0, &a.as_ref(), &x, 0.5, &mut y1);
        level2::gemv(2.0, &a.as_ref(), &x, 0.5, &mut y2);
        assert_eq!(y1, y2);
        assert_eq!(rep.mismatches, 0);
    }

    #[test]
    fn ft_gemv_detects_injection() {
        let inj = FaultInjector::new(5, ErrorModel::Additive { magnitude: 1e5 }, Rate::Count(1));
        let cfg = DmrConfig::with_injector(inj);
        let a = Matrix::<f64>::random(40, 25, 2);
        let x: Vec<f64> = (0..25).map(|i| (i as f64).sin()).collect();
        let mut y_ft: Vec<f64> = vec![1.0; 40];
        let mut y_ref = y_ft.clone();
        let rep = ft_gemv(&cfg, 1.0, &a.as_ref(), &x, 1.0, &mut y_ft);
        level2::gemv(1.0, &a.as_ref(), &x, 1.0, &mut y_ref);
        assert_eq!(rep.injected, 1);
        assert_eq!(rep.mismatches, 1);
        assert_eq!(y_ft, y_ref, "DMR failed to vote out the corruption");
    }

    #[test]
    fn ft_ger_clean_and_injected() {
        let x = [1.0f64, 2.0, 3.0];
        let yv = [4.0f64, 5.0];
        let mut a1 = vec![1.0f64; 6];
        let mut a2 = a1.clone();
        let rep = ft_ger(&DmrConfig::default(), 1.0, &x, &yv, &mut a1, 3);
        level2::ger(1.0, &x, &yv, &mut a2, 3);
        assert_eq!(a1, a2);
        assert_eq!(rep.mismatches, 0);

        let inj = FaultInjector::new(9, ErrorModel::Scale { factor: 7.0 }, Rate::Count(1));
        let mut a3 = vec![1.0f64; 6];
        let rep = ft_ger(&DmrConfig::with_injector(inj), 1.0, &x, &yv, &mut a3, 3);
        assert_eq!(rep.injected, 1);
        assert_eq!(a3, a2);
    }

    #[test]
    fn ft_trsv_round_trip() {
        let n = 10;
        let l = Matrix::<f64>::from_fn(n, n, |i, j| {
            if i == j {
                3.0
            } else if i > j {
                0.1 * ((i + j) % 4) as f64
            } else {
                0.0
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let mut b = vec![0.0; n];
        naive_gemv(1.0, &l.as_ref(), &x_true, 0.0, &mut b);

        let inj = FaultInjector::new(4, ErrorModel::Additive { magnitude: 1e4 }, Rate::Count(1));
        let rep = ft_trsv(
            &DmrConfig::with_injector(inj),
            Triangle::Lower,
            &l.as_ref(),
            &mut b,
        );
        assert_eq!(rep.injected, 1);
        for (p, q) in b.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-10);
        }
    }
}
