//! The persistent worker pool and its parallel regions.

use crate::barrier::SenseBarrier;
use crate::topology::{PoolPartition, Topology};
use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Type-erased reference to the region closure.
///
/// `run` publishes a pointer to a stack closure; the completion barrier at
/// the end of the region guarantees the closure outlives every use, making
/// the lifetime erasure sound.
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    call: unsafe fn(*const (), &WorkerCtx<'_>),
}

// SAFETY: JobRef is only dereferenced while the publishing `run` call is
// blocked on the completion barrier, and the underlying closure is Sync.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

struct Shared {
    /// Latest published job and its generation.
    job: Mutex<(u64, Option<JobRef>)>,
    wake: Condvar,
    /// Barrier used by `WorkerCtx::barrier` inside regions.
    region_barrier: SenseBarrier,
    /// Barrier marking the end of a region (main thread participates).
    done_barrier: SenseBarrier,
    generation: AtomicU64,
    /// Lifetime counters, readable while regions run (relaxed loads); the
    /// hook a serving layer uses to report pool utilization without
    /// instrumenting every call site.
    regions: AtomicU64,
    barrier_crossings: AtomicU64,
    /// How thread ids split across the topology's memory domains; every
    /// worker subset is contiguous, so node-scoped work inside a region is
    /// an index-range check away.
    partition: PoolPartition,
}

/// Snapshot of a pool's lifetime activity counters.
///
/// `regions` counts [`ThreadPool::run`] invocations; `barrier_crossings`
/// counts individual thread arrivals at [`WorkerCtx::barrier`] (one region
/// with `t` threads and `b` barriers contributes `t * b`). Both are
/// monotonically increasing, so a monitor can difference two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel regions executed so far.
    pub regions: u64,
    /// Thread arrivals at in-region barriers so far.
    pub barrier_crossings: u64,
}

/// Per-thread context handed to the region closure.
pub struct WorkerCtx<'a> {
    /// Thread index in `0..nthreads` (0 is the caller of [`ThreadPool::run`]).
    pub tid: usize,
    /// Number of threads in the region.
    pub nthreads: usize,
    shared: &'a Shared,
}

impl WorkerCtx<'_> {
    /// Synchronizes all threads of the region (OpenMP `#pragma omp barrier`).
    pub fn barrier(&self) {
        self.shared
            .barrier_crossings
            .fetch_add(1, Ordering::Relaxed);
        self.shared.region_barrier.wait();
    }

    /// This thread's aligned chunk of `0..len` (paper's M/N partitioning).
    pub fn partition(&self, len: usize, align: usize) -> Range<usize> {
        crate::partition::partition_aligned(len, self.nthreads, self.tid, align)
    }

    /// The memory domain this thread is pinned to.
    pub fn node(&self) -> usize {
        self.shared.partition.node_of(self.tid)
    }

    /// The contiguous thread-id range sharing this thread's node.
    pub fn node_workers(&self) -> Range<usize> {
        self.shared.partition.workers(self.node())
    }

    /// This thread's aligned chunk of a *node-local* `0..len`: the length is
    /// partitioned across only the threads of this thread's node, so each
    /// node can sweep its own node-resident data without touching its
    /// neighbours' (the locality contract NUMA-aware packing wants).
    pub fn node_partition(&self, len: usize, align: usize) -> Range<usize> {
        let workers = self.node_workers();
        crate::partition::partition_aligned(len, workers.len(), self.tid - workers.start, align)
    }
}

/// A pool of `nthreads - 1` persistent workers; the thread calling
/// [`ThreadPool::run`] acts as thread 0 of every region.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    nthreads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("nthreads", &self.nthreads)
            .finish()
    }
}

impl ThreadPool {
    /// Pool with `nthreads` total region participants (`>= 1`), all on one
    /// memory domain (the UMA case every pre-topology call site means).
    pub fn new(nthreads: usize) -> Self {
        Self::with_partition(nthreads, PoolPartition::single(nthreads))
    }

    /// Pool with one thread per core of `topology`, worker subsets pinned
    /// per node: node `i`'s threads are the contiguous id range
    /// `partition().workers(i)`, and each worker knows its domain through
    /// [`WorkerCtx::node`]. Pinning is logical — thread→node bookkeeping the
    /// schedulers key off; OS-level affinity is a deployment concern layered
    /// outside this crate.
    pub fn with_topology(topology: &Topology) -> Self {
        let nthreads = topology.total_cores().max(1);
        Self::with_partition(nthreads, PoolPartition::new(topology, nthreads))
    }

    /// Pool with an explicit thread-to-node partition (`partition` must
    /// cover exactly `nthreads`).
    pub fn with_partition(nthreads: usize, partition: PoolPartition) -> Self {
        assert!(nthreads >= 1, "pool needs at least one thread");
        assert_eq!(
            partition.nthreads(),
            nthreads,
            "partition must cover the pool's threads"
        );
        let shared = Arc::new(Shared {
            job: Mutex::new((0, None)),
            wake: Condvar::new(),
            region_barrier: SenseBarrier::new(nthreads),
            done_barrier: SenseBarrier::new(nthreads),
            generation: AtomicU64::new(0),
            regions: AtomicU64::new(0),
            barrier_crossings: AtomicU64::new(0),
            partition,
        });
        let mut handles = Vec::new();
        for tid in 1..nthreads {
            let shared = Arc::clone(&shared);
            let node = shared.partition.node_of(tid);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ftgemm-n{node}-worker-{tid}"))
                    .spawn(move || worker_loop(shared, tid))
                    .expect("failed to spawn pool worker"),
            );
        }
        pool_workers_gauge().add(handles.len() as f64);
        ThreadPool {
            shared,
            handles,
            nthreads,
        }
    }

    /// Pool sized to the machine (one thread per available CPU).
    pub fn with_all_cores() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(n)
    }

    /// Number of threads participating in each region.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// The thread-to-node partition the pool was built with (a single
    /// node covering every thread for [`ThreadPool::new`]).
    pub fn partition(&self) -> &PoolPartition {
        &self.shared.partition
    }

    /// Memory domains the pool spans.
    pub fn num_nodes(&self) -> usize {
        self.shared.partition.num_nodes()
    }

    /// Lifetime activity counters (regions run, barrier crossings).
    ///
    /// Safe to call concurrently with running regions; the snapshot is a
    /// pair of independent relaxed loads.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            regions: self.shared.regions.load(Ordering::Relaxed),
            barrier_crossings: self.shared.barrier_crossings.load(Ordering::Relaxed),
        }
    }

    /// Executes `f` as a parallel region on all threads; returns when every
    /// thread has finished. Panics in workers propagate as a pool poison
    /// (abort) rather than deadlocks: the closure is required to be
    /// panic-free in practice (compute kernels do not panic).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(&WorkerCtx<'_>) + Sync,
    {
        self.shared.regions.fetch_add(1, Ordering::Relaxed);
        ftgemm_obs::global_counter!(
            "ftgemm_pool_regions_total",
            "Parallel regions executed across every pool in the process."
        )
        .inc();
        if self.nthreads == 1 {
            // Degenerate pool: run inline, still providing barrier semantics.
            let ctx = WorkerCtx {
                tid: 0,
                nthreads: 1,
                shared: &self.shared,
            };
            f(&ctx);
            return;
        }

        unsafe fn call_impl<F: Fn(&WorkerCtx<'_>) + Sync>(data: *const (), ctx: &WorkerCtx<'_>) {
            // SAFETY: `data` was created from an `&F` in this function and
            // remains alive until the done-barrier below releases.
            let f = unsafe { &*data.cast::<F>() };
            f(ctx);
        }
        let job = JobRef {
            data: (&f as *const F).cast::<()>(),
            call: call_impl::<F>,
        };

        // Publish the job and wake workers.
        {
            let mut slot = self.shared.job.lock();
            let gen = self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1;
            *slot = (gen, Some(job));
            self.shared.wake.notify_all();
        }

        // Participate as thread 0.
        let ctx = WorkerCtx {
            tid: 0,
            nthreads: self.nthreads,
            shared: &self.shared,
        };
        f(&ctx);

        // Wait for all workers to finish the region; after this, `f` may be
        // dropped safely.
        self.shared.done_barrier.wait();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.job.lock();
            let gen = self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1;
            *slot = (gen, None); // None = shutdown signal
            self.shared.wake.notify_all();
        }
        let joined = self.handles.len();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        pool_workers_gauge().add(-(joined as f64));
    }
}

/// Process-wide gauge of live pool worker threads (region-calling threads
/// excluded — a 1-thread pool contributes 0).
fn pool_workers_gauge() -> &'static ftgemm_obs::Gauge {
    ftgemm_obs::global_gauge!(
        "ftgemm_pool_workers",
        "Live worker threads across every pool in the process."
    )
}

fn worker_loop(shared: Arc<Shared>, tid: usize) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut slot = shared.job.lock();
            while slot.0 == seen_gen {
                shared.wake.wait(&mut slot);
            }
            seen_gen = slot.0;
            slot.1
        };
        let Some(job) = job else {
            return; // shutdown
        };
        let nthreads = shared.done_barrier.participants();
        let ctx = WorkerCtx {
            tid,
            nthreads,
            shared: &shared,
        };
        // SAFETY: the publishing thread blocks on done_barrier until we
        // arrive below, so the closure behind `job` is still alive.
        unsafe { (job.call)(job.data, &ctx) };
        shared.done_barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_threads_run_once() {
        let pool = ThreadPool::new(6);
        let hits = AtomicUsize::new(0);
        let tid_mask = AtomicUsize::new(0);
        pool.run(|ctx| {
            hits.fetch_add(1, Ordering::Relaxed);
            tid_mask.fetch_or(1 << ctx.tid, Ordering::Relaxed);
            assert_eq!(ctx.nthreads, 6);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        assert_eq!(tid_mask.load(Ordering::Relaxed), 0b11_1111);
    }

    #[test]
    fn regions_run_sequentially() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for round in 0..50 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), (round + 1) * 4);
        }
    }

    #[test]
    fn barrier_inside_region() {
        let pool = ThreadPool::new(8);
        let stage = AtomicUsize::new(0);
        pool.run(|ctx| {
            stage.fetch_add(1, Ordering::Relaxed);
            ctx.barrier();
            // Every thread must see all 8 first-stage increments.
            assert!(stage.load(Ordering::Relaxed) >= 8);
            ctx.barrier();
            stage.fetch_add(100, Ordering::Relaxed);
        });
        assert_eq!(stage.load(Ordering::Relaxed), 8 + 800);
    }

    #[test]
    fn writes_to_disjoint_partitions() {
        let pool = ThreadPool::new(5);
        let n = 1003;
        let mut data = vec![0usize; n];
        let ptr = SendPtr(data.as_mut_ptr());
        pool.run(|ctx| {
            let range = ctx.partition(n, 8);
            let p = ptr;
            for i in range {
                // SAFETY: partitions are disjoint per partition_aligned.
                unsafe { *p.0.add(i) = ctx.tid + 1 };
            }
        });
        assert!(data.iter().all(|&v| v != 0));
    }

    #[derive(Clone, Copy)]
    struct SendPtr(*mut usize);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        let mut touched = false;
        let cell = std::cell::Cell::new(&mut touched);
        pool.run(|ctx| {
            assert_eq!(ctx.tid, 0);
            ctx.barrier(); // must not deadlock
        });
        let _ = cell;
    }

    #[test]
    fn closure_captures_by_reference() {
        let pool = ThreadPool::new(3);
        let input: Vec<usize> = (0..100).collect();
        let total = AtomicUsize::new(0);
        pool.run(|ctx| {
            let r = ctx.partition(input.len(), 1);
            let s: usize = input[r].iter().sum();
            total.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn stats_count_regions_and_barriers() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.stats(), PoolStats::default());
        for _ in 0..5 {
            pool.run(|ctx| {
                ctx.barrier();
                ctx.barrier();
            });
        }
        let s = pool.stats();
        assert_eq!(s.regions, 5);
        assert_eq!(s.barrier_crossings, 5 * 3 * 2);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.run(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn topology_pool_reports_nodes_and_partitions() {
        use crate::topology::Topology;
        let pool = ThreadPool::with_topology(&Topology::synthetic(2, 3));
        assert_eq!(pool.nthreads(), 6);
        assert_eq!(pool.num_nodes(), 2);
        assert_eq!(pool.partition().workers(1), 3..6);

        let node_mask = AtomicUsize::new(0);
        let local_sum = AtomicUsize::new(0);
        pool.run(|ctx| {
            let expected_node = usize::from(ctx.tid >= 3);
            assert_eq!(ctx.node(), expected_node);
            assert_eq!(
                ctx.node_workers(),
                if expected_node == 0 { 0..3 } else { 3..6 }
            );
            node_mask.fetch_or(1 << ctx.node(), Ordering::Relaxed);
            // Node-local partition: each node's 3 threads cover 0..30
            // exactly once, so the two nodes together cover it twice.
            local_sum.fetch_add(ctx.node_partition(30, 1).len(), Ordering::Relaxed);
        });
        assert_eq!(node_mask.load(Ordering::Relaxed), 0b11);
        assert_eq!(local_sum.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn flat_pool_is_single_node() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.num_nodes(), 1);
        pool.run(|ctx| {
            assert_eq!(ctx.node(), 0);
            assert_eq!(ctx.node_workers(), 0..3);
            // node_partition degenerates to partition on one node.
            assert_eq!(ctx.node_partition(9, 1), ctx.partition(9, 1));
        });
    }

    #[test]
    fn many_small_regions_stress() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..2000 {
            pool.run(|ctx| {
                counter.fetch_add(1, Ordering::Relaxed);
                ctx.barrier();
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000 * 4 * 2);
    }
}
