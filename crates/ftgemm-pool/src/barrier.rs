//! Centralized epoch barrier.
//!
//! A counter-and-epoch barrier: each arrival increments the count; the last
//! arrival resets the count and advances the epoch, releasing the waiters
//! spinning on it. Unlike a sense-reversing barrier there is **no
//! per-participant state**, so any set of threads can reuse the barrier
//! across any number of parallel regions without re-synchronizing tokens —
//! the property the persistent pool needs (the main thread changes identity
//! between regions).
//!
//! Waiting spins with `spin_loop` for a short budget and then yields to the
//! OS — GEMM phases between barriers are long (packing a panel, a macro
//! kernel sweep), so wake-up latency is irrelevant but burning a core is
//! not acceptable when the machine is oversubscribed.

// analyze::policy(publish: epoch)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`): the
// barrier publishes phase completion through `epoch` (Release store by
// the last arriver, Acquire loads by spinners). `count` is deliberately
// not a publication cell: its AcqRel fetch_add orders arrivals, and the
// Relaxed reset is safe because only the last arriver (who won the
// AcqRel race) writes it before the Release store of `epoch`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A reusable barrier for a fixed set of `n` participants.
#[derive(Debug)]
pub struct SenseBarrier {
    count: AtomicUsize,
    epoch: AtomicUsize,
    n: usize,
}

impl SenseBarrier {
    /// Barrier for `n` participants (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            count: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
            n,
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have arrived at this epoch.
    pub fn wait(&self) {
        let epoch = self.epoch.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) == self.n - 1 {
            // Last arrival: reset the count for the next epoch, then release.
            self.count.store(0, Ordering::Relaxed);
            self.epoch.store(epoch.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.epoch.load(Ordering::Acquire) == epoch {
                spins += 1;
                if spins < 1 << 12 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..100 {
            b.wait();
        }
    }

    #[test]
    fn phases_are_ordered() {
        // Each thread increments a counter before the barrier; after the
        // barrier all participants must observe every increment.
        const T: usize = 8;
        const PHASES: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(T));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..T {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for phase in 1..=PHASES {
                    counter.fetch_add(1, Ordering::Relaxed);
                    barrier.wait();
                    let seen = counter.load(Ordering::Relaxed);
                    assert!(seen >= (phase * T) as u64, "phase {phase}: saw {seen}");
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), (T * PHASES) as u64);
    }

    #[test]
    fn reusable_across_many_epochs() {
        const T: usize = 4;
        let barrier = Arc::new(SenseBarrier::new(T));
        let mut handles = Vec::new();
        for _ in 0..T {
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    barrier.wait();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn changing_participant_identity_is_fine() {
        // The pool's exact pattern: a "main" participant that is a fresh
        // logical context each region, plus persistent workers.
        const REGIONS: usize = 500;
        let barrier = Arc::new(SenseBarrier::new(2));
        let worker = {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for _ in 0..REGIONS {
                    barrier.wait();
                }
            })
        };
        for _ in 0..REGIONS {
            // A brand-new "main" context per region: no token state.
            barrier.wait();
        }
        worker.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
