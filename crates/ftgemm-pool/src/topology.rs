//! Memory-domain topology: what the scheduler needs to know about NUMA.
//!
//! A GEMM's operands, packing buffers, and worker threads should live on the
//! same memory domain; everything above this module (pool partitioning,
//! queue sharding, request placement) keys off a [`Topology`] rather than
//! probing the machine directly. That indirection is deliberate: production
//! builds call [`Topology::detect`] once, while tests build any shape they
//! want with [`Topology::synthetic`] and get **deterministic** placement —
//! no sysfs, no wall clock, no machine dependence in any decision path.

use std::ops::Range;

/// One memory domain (NUMA node) and the cores attached to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSpec {
    /// Node id, dense in `0..num_nodes` (detected ids are re-densified so
    /// sparse sysfs numbering never leaks into scheduling math).
    pub id: usize,
    /// Cores attached to this node (always `>= 1`).
    pub cores: usize,
}

/// The machine's memory-domain layout, as the scheduling layers see it.
///
/// Construction:
/// * [`Topology::detect`] — Linux sysfs (`/sys/devices/system/node`), with
///   a single-node fallback everywhere else;
/// * [`Topology::synthetic`] — an arbitrary `nodes x cores_per_node` shape
///   for tests and for forcing a layout from benchmarks (`--topology 2x2`);
/// * [`Topology::single`] — the explicit UMA case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
}

impl Topology {
    /// Topology of the running machine: parsed from
    /// `/sys/devices/system/node/node*/cpulist` on Linux, one node holding
    /// every available core anywhere that fails (non-Linux, masked sysfs,
    /// containers).
    pub fn detect() -> Self {
        detect_linux().unwrap_or_else(|| Self::single(available_cores()))
    }

    /// A synthetic `nodes x cores_per_node` topology for tests and forced
    /// layouts. Panics if either dimension is zero.
    pub fn synthetic(nodes: usize, cores_per_node: usize) -> Self {
        assert!(nodes >= 1, "topology needs at least one node");
        assert!(cores_per_node >= 1, "nodes need at least one core");
        Topology {
            nodes: (0..nodes)
                .map(|id| NodeSpec {
                    id,
                    cores: cores_per_node,
                })
                .collect(),
        }
    }

    /// A single-domain (UMA) topology with `cores` cores.
    pub fn single(cores: usize) -> Self {
        Self::synthetic(1, cores.max(1))
    }

    /// Topology from explicit per-node core counts (ids are assigned
    /// densely in order). Zero-core entries are rejected.
    pub fn from_core_counts(cores: &[usize]) -> Self {
        assert!(!cores.is_empty(), "topology needs at least one node");
        assert!(
            cores.iter().all(|&c| c >= 1),
            "nodes need at least one core"
        );
        Topology {
            nodes: cores
                .iter()
                .enumerate()
                .map(|(id, &cores)| NodeSpec { id, cores })
                .collect(),
        }
    }

    /// The nodes, ordered by id.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Number of memory domains.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total cores across all nodes.
    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// True for a single-domain machine, where every NUMA decision
    /// degenerates to the status quo.
    pub fn is_uniform(&self) -> bool {
        self.nodes.len() == 1
    }
}

/// Cores reported by the OS, `1` when unknown.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parses `/sys/devices/system/node`. `None` when the hierarchy is missing,
/// unreadable, or degenerate — callers fall back to a single node.
fn detect_linux() -> Option<Topology> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let dir = std::fs::read_dir("/sys/devices/system/node").ok()?;
    let mut found: Vec<(usize, usize)> = Vec::new();
    for entry in dir.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(idx) = name
            .strip_prefix("node")
            .and_then(|s| s.parse::<usize>().ok())
        else {
            continue;
        };
        let cpulist = std::fs::read_to_string(entry.path().join("cpulist")).ok()?;
        let cores = parse_cpulist(cpulist.trim());
        if cores > 0 {
            found.push((idx, cores));
        }
    }
    if found.is_empty() {
        return None;
    }
    found.sort_unstable_by_key(|&(idx, _)| idx);
    Some(Topology::from_core_counts(
        &found.iter().map(|&(_, cores)| cores).collect::<Vec<_>>(),
    ))
}

/// Counts CPUs in a kernel cpulist string (`"0-3,8,10-11"` → 7). Malformed
/// chunks count zero rather than failing the whole detection.
fn parse_cpulist(list: &str) -> usize {
    list.split(',')
        .filter(|chunk| !chunk.trim().is_empty())
        .map(|chunk| {
            let chunk = chunk.trim();
            match chunk.split_once('-') {
                Some((lo, hi)) => match (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    (Ok(lo), Ok(hi)) if hi >= lo => hi - lo + 1,
                    _ => 0,
                },
                None => usize::from(chunk.parse::<usize>().is_ok()),
            }
        })
        .sum()
}

/// How a pool's `nthreads` region participants split across a topology's
/// nodes: node `i` owns the contiguous thread-id range `workers(i)`.
///
/// Threads are distributed proportionally to each node's core share (exact
/// when `nthreads == total_cores`, largest-remainder otherwise), so a pool
/// sized to the machine maps one thread per core per node. Nodes can come
/// out empty when `nthreads < num_nodes`; scheduling layers that need every
/// node populated (the serving layer does) size per-node pools themselves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPartition {
    node_ranges: Vec<Range<usize>>,
}

impl PoolPartition {
    /// Splits `nthreads` across `topology`'s nodes by core share.
    pub fn new(topology: &Topology, nthreads: usize) -> Self {
        let total = topology.total_cores().max(1);
        let mut node_ranges = Vec::with_capacity(topology.num_nodes());
        let mut cum_cores = 0usize;
        let mut start = 0usize;
        for node in topology.nodes() {
            cum_cores += node.cores;
            // Cumulative rounding keeps ranges contiguous and exactly
            // covering 0..nthreads.
            let end = (nthreads * cum_cores + total / 2) / total;
            let end = end.clamp(start, nthreads);
            node_ranges.push(start..end);
            start = end;
        }
        if let Some(last) = node_ranges.last_mut() {
            last.end = nthreads; // absorb rounding slack
        }
        PoolPartition { node_ranges }
    }

    /// Everything on one node (the UMA degenerate case).
    pub fn single(nthreads: usize) -> Self {
        Self::for_node(0, nthreads)
    }

    /// A node-scoped partition: all `nthreads` threads belong to `node`
    /// (nodes `0..node` exist but own no threads). This is what a pool
    /// serving exactly one memory domain carries, so its workers report
    /// the *real* node id through `WorkerCtx::node`, not `0`.
    pub fn for_node(node: usize, nthreads: usize) -> Self {
        let mut node_ranges = vec![0..0; node];
        node_ranges.push(0..nthreads);
        PoolPartition { node_ranges }
    }

    /// Number of nodes (including any that received no threads).
    pub fn num_nodes(&self) -> usize {
        self.node_ranges.len()
    }

    /// Total threads covered.
    pub fn nthreads(&self) -> usize {
        self.node_ranges.last().map_or(0, |r| r.end)
    }

    /// The node owning pool thread `tid`.
    pub fn node_of(&self, tid: usize) -> usize {
        assert!(tid < self.nthreads(), "tid out of range");
        self.node_ranges
            .iter()
            .position(|r| r.contains(&tid))
            .expect("ranges cover 0..nthreads")
    }

    /// The contiguous thread-id range pinned to `node`.
    pub fn workers(&self, node: usize) -> Range<usize> {
        self.node_ranges[node].clone()
    }

    /// Threads pinned to `node`.
    pub fn threads_on(&self, node: usize) -> usize {
        self.node_ranges[node].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shape() {
        let t = Topology::synthetic(4, 2);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.total_cores(), 8);
        assert!(!t.is_uniform());
        assert_eq!(t.nodes()[3], NodeSpec { id: 3, cores: 2 });
    }

    #[test]
    fn single_is_uniform() {
        let t = Topology::single(6);
        assert!(t.is_uniform());
        assert_eq!(t.total_cores(), 6);
        assert!(Topology::single(0).total_cores() >= 1);
    }

    #[test]
    fn detect_never_panics_and_is_sane() {
        let t = Topology::detect();
        assert!(t.num_nodes() >= 1);
        assert!(t.total_cores() >= 1);
        assert!(t.nodes().iter().enumerate().all(|(i, n)| n.id == i));
    }

    #[test]
    fn from_core_counts_uneven() {
        let t = Topology::from_core_counts(&[3, 1, 2]);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.total_cores(), 6);
        assert_eq!(t.nodes()[1].cores, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_node_rejected() {
        let _ = Topology::from_core_counts(&[2, 0]);
    }

    #[test]
    fn cpulist_parsing() {
        assert_eq!(parse_cpulist("0-3,8,10-11"), 7);
        assert_eq!(parse_cpulist("0"), 1);
        assert_eq!(parse_cpulist(""), 0);
        assert_eq!(parse_cpulist("junk"), 0);
        assert_eq!(parse_cpulist("4-2"), 0, "inverted range ignored");
    }

    #[test]
    fn partition_exact_when_threads_match_cores() {
        let t = Topology::synthetic(2, 3);
        let p = PoolPartition::new(&t, 6);
        assert_eq!(p.workers(0), 0..3);
        assert_eq!(p.workers(1), 3..6);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(2), 0);
        assert_eq!(p.node_of(3), 1);
        assert_eq!(p.nthreads(), 6);
    }

    #[test]
    fn partition_proportional_to_core_share() {
        let t = Topology::from_core_counts(&[6, 2]);
        let p = PoolPartition::new(&t, 4);
        assert_eq!(p.threads_on(0), 3);
        assert_eq!(p.threads_on(1), 1);
    }

    #[test]
    fn partition_covers_and_is_contiguous() {
        for (nodes, cores, nthreads) in [(1, 4, 4), (3, 2, 7), (4, 1, 2), (2, 8, 1), (5, 3, 0)] {
            let t = Topology::synthetic(nodes, cores);
            let p = PoolPartition::new(&t, nthreads);
            let mut prev_end = 0;
            for node in 0..p.num_nodes() {
                let r = p.workers(node);
                assert_eq!(r.start, prev_end, "contiguous");
                prev_end = r.end;
            }
            assert_eq!(prev_end, nthreads, "covers exactly");
            assert_eq!(p.nthreads(), nthreads);
        }
    }

    #[test]
    fn partition_single_owns_everything() {
        let p = PoolPartition::single(5);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(p.workers(0), 0..5);
        assert_eq!(p.node_of(4), 0);
    }

    #[test]
    fn partition_for_node_reports_the_real_node_id() {
        let p = PoolPartition::for_node(3, 2);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.nthreads(), 2);
        assert_eq!(p.node_of(0), 3);
        assert_eq!(p.node_of(1), 3);
        assert_eq!(p.workers(3), 0..2);
        assert!(p.workers(0).is_empty());
        assert_eq!(p.threads_on(2), 0);
    }

    #[test]
    #[should_panic(expected = "tid out of range")]
    fn node_of_bounds_checked() {
        PoolPartition::single(2).node_of(2);
    }
}
