//! Static loop partitioning helpers.
//!
//! The paper partitions the `C`/`A` work along the M dimension and the `B`
//! packing along the N dimension with static chunks ("partition M, compute
//! offset m_s and length m_len"). Chunks must respect the micro-tile
//! granularity so no micro-panel straddles two threads.

use std::ops::Range;

/// Splits `0..len` into `nparts` contiguous chunks whose boundaries are
/// multiples of `align` (except the final end), returning chunk `part`.
///
/// The `align`-unit blocks are distributed as evenly as possible; threads
/// beyond the number of blocks receive empty ranges.
pub fn partition_aligned(len: usize, nparts: usize, part: usize, align: usize) -> Range<usize> {
    assert!(nparts > 0, "nparts must be positive");
    assert!(part < nparts, "part out of range");
    assert!(align > 0, "align must be positive");

    let blocks = len.div_ceil(align);
    let base = blocks / nparts;
    let extra = blocks % nparts;
    // First `extra` parts get (base+1) blocks.
    let my_blocks = base + usize::from(part < extra);
    let start_block = part * base + part.min(extra);
    let start = (start_block * align).min(len);
    let end = ((start_block + my_blocks) * align).min(len);
    start..end
}

/// Even (alignment-1) partitioning.
pub fn partition_even(len: usize, nparts: usize, part: usize) -> Range<usize> {
    partition_aligned(len, nparts, part, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(len: usize, nparts: usize, align: usize) {
        let mut covered = 0;
        let mut prev_end = 0;
        for p in 0..nparts {
            let r = partition_aligned(len, nparts, p, align);
            assert_eq!(r.start, prev_end, "chunks must be contiguous");
            assert!(r.start % align == 0 || r.start == len);
            covered += r.len();
            prev_end = r.end;
        }
        assert_eq!(prev_end, len);
        assert_eq!(covered, len);
    }

    #[test]
    fn covers_exactly() {
        for &(len, np, al) in &[
            (100usize, 4usize, 8usize),
            (100, 3, 16),
            (7, 4, 8),
            (0, 4, 8),
            (1024, 16, 16),
            (1000, 7, 1),
            (5, 10, 2),
        ] {
            check_cover(len, np, al);
        }
    }

    #[test]
    fn balanced_within_one_block() {
        let lens: Vec<usize> = (0..8)
            .map(|p| partition_aligned(1024, 8, p, 16).len())
            .collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(max - min <= 16, "imbalance {lens:?}");
    }

    #[test]
    fn small_len_gives_empty_tails() {
        // 2 blocks of 8 across 4 parts: parts 2,3 empty.
        let r0 = partition_aligned(16, 4, 0, 8);
        let r3 = partition_aligned(16, 4, 3, 8);
        assert_eq!(r0, 0..8);
        assert!(r3.is_empty());
    }

    #[test]
    fn even_partition() {
        assert_eq!(partition_even(10, 3, 0), 0..4);
        assert_eq!(partition_even(10, 3, 1), 4..7);
        assert_eq!(partition_even(10, 3, 2), 7..10);
    }

    #[test]
    #[should_panic(expected = "part out of range")]
    fn part_bounds_checked() {
        let _ = partition_aligned(10, 2, 2, 1);
    }
}
