//! Per-thread output lanes with a reduction step.
//!
//! The paper's parallel FT-GEMM packs `B` cooperatively along N, so each
//! thread accumulates a *partial* `B_c` checksum; "an extra stage of
//! reduction operation among threads is required to compute the final
//! column checksum B_c" (§2.3). `ShardedBuffer` is that pattern as a safe
//! API: every thread owns one lane during the parallel phase, and any
//! single thread reduces the lanes after a barrier.

use std::cell::UnsafeCell;

/// `lanes x len` scratch where lane `t` is written exclusively by thread `t`.
#[derive(Debug)]
pub struct ShardedBuffer<T> {
    data: UnsafeCell<Vec<T>>,
    lanes: usize,
    len: usize,
}

// SAFETY: access discipline is lane-exclusive (enforced by the caller
// contract of `lane_mut`, which hands out disjoint ranges per tid), and the
// reduce step happens after a barrier, with no concurrent lane writers.
unsafe impl<T: Send> Send for ShardedBuffer<T> {}
unsafe impl<T: Send + Sync> Sync for ShardedBuffer<T> {}

impl<T: Copy + Default> ShardedBuffer<T> {
    /// Buffer with `lanes` lanes of `len` default-initialized elements.
    pub fn new(lanes: usize, len: usize) -> Self {
        ShardedBuffer {
            data: UnsafeCell::new(vec![T::default(); lanes * len]),
            lanes,
            len,
        }
    }

    /// Lane length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when lanes are zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Exclusive access to lane `tid`.
    ///
    /// # Safety
    /// At most one thread may hold lane `tid` at a time, and no thread may
    /// call [`Self::reduce_into`] or [`Self::fill`] while any lane borrow is
    /// live. The pool's barrier discipline provides exactly this.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn lane_mut(&self, tid: usize) -> &mut [T] {
        assert!(tid < self.lanes, "lane out of range");
        // SAFETY: caller contract gives exclusive lane access; lanes are
        // disjoint ranges of the backing vector.
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            std::slice::from_raw_parts_mut(base.add(tid * self.len), self.len)
        }
    }

    /// Reduces all lanes element-wise with `combine` into `out`
    /// (`out.len() == len`). Must run with no live lane borrows.
    pub fn reduce_into(&self, out: &mut [T], combine: impl FnMut(T, T) -> T) {
        assert_eq!(out.len(), self.len, "reduce_into: output length");
        self.reduce_into_prefix(out, combine);
    }

    /// Like [`Self::reduce_into`] but reduces only the first `out.len()`
    /// elements of each lane (lanes are often over-allocated to the maximum
    /// panel size while a given panel uses a prefix).
    pub fn reduce_into_prefix(&self, out: &mut [T], mut combine: impl FnMut(T, T) -> T) {
        assert!(out.len() <= self.len, "reduce_into_prefix: output too long");
        // SAFETY: caller contract (post-barrier, no lane writers).
        let data = unsafe { &*self.data.get() };
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = data[i]; // lane 0
            for t in 1..self.lanes {
                acc = combine(acc, data[t * self.len + i]);
            }
            *o = acc;
        }
    }

    /// Resets every lane to `value`. Must run with no live lane borrows.
    pub fn fill(&self, value: T) {
        // SAFETY: caller contract (no concurrent lane access).
        let data = unsafe { &mut *self.data.get() };
        data.fill(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn lanes_are_disjoint() {
        let buf = ShardedBuffer::<f64>::new(4, 10);
        for t in 0..4 {
            // SAFETY: sequential exclusive access in the test.
            let lane = unsafe { buf.lane_mut(t) };
            lane.fill(t as f64 + 1.0);
        }
        let mut out = vec![0.0; 10];
        buf.reduce_into(&mut out, |a, b| a + b);
        assert!(out.iter().all(|&v| v == 10.0));
    }

    #[test]
    fn reduce_with_max() {
        let buf = ShardedBuffer::<f64>::new(3, 4);
        for t in 0..3 {
            // SAFETY: sequential exclusive access.
            let lane = unsafe { buf.lane_mut(t) };
            for (i, v) in lane.iter_mut().enumerate() {
                *v = (t * 10 + i) as f64;
            }
        }
        let mut out = vec![0.0; 4];
        buf.reduce_into(&mut out, f64::max);
        assert_eq!(out, vec![20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn fill_resets() {
        let buf = ShardedBuffer::<f64>::new(2, 3);
        // SAFETY: exclusive in test.
        unsafe { buf.lane_mut(0) }.fill(5.0);
        buf.fill(0.0);
        let mut out = vec![1.0; 3];
        buf.reduce_into(&mut out, |a, b| a + b);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn parallel_accumulate_and_reduce() {
        // The exact B_c pattern: threads accumulate partials, barrier,
        // thread 0 reduces.
        let pool = ThreadPool::new(6);
        let buf = ShardedBuffer::<f64>::new(6, 100);
        let result = std::sync::Mutex::new(vec![0.0f64; 100]);
        pool.run(|ctx| {
            // SAFETY: each thread touches only its own lane, pre-barrier.
            let lane = unsafe { buf.lane_mut(ctx.tid) };
            for (i, v) in lane.iter_mut().enumerate() {
                *v = (ctx.tid * i) as f64;
            }
            ctx.barrier();
            if ctx.tid == 0 {
                buf.reduce_into(&mut result.lock().unwrap(), |a, b| a + b);
            }
            ctx.barrier();
        });
        let out = result.into_inner().unwrap();
        for (i, &v) in out.iter().enumerate() {
            let want = (0..6).map(|t| (t * i) as f64).sum::<f64>();
            assert_eq!(v, want, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_bounds() {
        let buf = ShardedBuffer::<f64>::new(2, 3);
        // SAFETY: bounds assert fires before any access.
        let _ = unsafe { buf.lane_mut(2) };
    }
}
