//! # ftgemm-pool
//!
//! A persistent worker-thread pool with OpenMP-style **parallel regions**,
//! built for the parallel FT-GEMM of the paper (§2.3 / Fig. 1).
//!
//! The paper's threaded algorithm is structured as one `#pragma omp
//! parallel` region containing cooperative packing, barriers, and per-thread
//! private buffers. Rayon-style fork-join does not map cleanly onto that
//! (threads must meet at barriers *inside* one long-lived region, keeping
//! thread-private state across phases), so this crate provides the runtime
//! the C code gets from OpenMP:
//!
//! * [`ThreadPool::run`] — execute a closure on every thread of the pool
//!   simultaneously (the parallel region); returns when all threads finish;
//! * [`WorkerCtx::barrier`] — sense-reversing barrier across the region;
//! * [`partition_aligned`] — static loop partitioning with alignment (the
//!   `M`-dimension split must respect the micro-tile height `MR`);
//! * [`ShardedBuffer`] — per-thread output lanes with a safe reduce step
//!   (the paper's cross-thread reduction of the `B_c` checksum);
//! * [`topology`] — memory-domain awareness: [`Topology`] (detected from
//!   sysfs or built synthetically for deterministic tests) and
//!   [`PoolPartition`], which pins contiguous worker subsets per NUMA node
//!   ([`ThreadPool::with_topology`], [`WorkerCtx::node`] /
//!   [`WorkerCtx::node_partition`]).
//!
//! Workers park on a condvar between regions, so an idle pool costs nothing;
//! inside a region, barriers spin briefly and then yield.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod barrier;
mod partition;
mod pool;
mod shard;
pub mod topology;

pub use barrier::SenseBarrier;
pub use partition::{partition_aligned, partition_even};
pub use pool::{PoolStats, ThreadPool, WorkerCtx};
pub use shard::ShardedBuffer;
pub use topology::{NodeSpec, PoolPartition, Topology};
