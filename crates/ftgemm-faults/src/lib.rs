//! # ftgemm-faults
//!
//! Deterministic, source-level soft-error injection for the FT-GEMM
//! reproduction.
//!
//! The paper (§3.2) validates fault tolerance by injecting computing errors
//! *at the source-code level* into the GEMM kernels — external injection
//! tools slow the native program too much. This crate reproduces that
//! methodology:
//!
//! * an [`ErrorModel`] describes how a value is corrupted (bit flip,
//!   additive offset, scaling) — the fail-continue "soft errors" of §1;
//! * a [`Rate`] describes when errors fire (fixed count per call,
//!   probability per site, or errors-per-second wall-clock rates for the
//!   "hundreds of errors injected per minute" experiments);
//! * a [`FaultInjector`] owns the model, a seed, and global statistics;
//!   compute drivers open one [`SiteStream`] per call (or per thread) and
//!   poll it once per injection site (one site = one macro-kernel tile
//!   update);
//! * [`InjectionStats`] counts injected/detected/corrected/unrecoverable
//!   events across threads.
//!
//! Everything is deterministic given the seed and the site visit order (for
//! count/probability rates), so fault-tolerance tests can assert *exact*
//! correction.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod campaign;
mod injector;
mod model;
mod stats;

pub use campaign::{Campaign, CampaignOutcome, CampaignReport};
pub use injector::{FaultInjector, SiteStream};
pub use model::{ErrorEvent, ErrorModel, Rate};
pub use stats::{ErrorRateEwma, InjectionStats};
