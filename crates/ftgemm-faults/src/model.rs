//! Error models (how a value is corrupted) and rates (when errors fire).

use rand::Rng;

/// How an injected soft error transforms a floating-point value.
///
/// These model the paper's fail-continue computing errors ("1+1=3"): the
/// corrupted value is finite but wrong, and execution continues.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorModel {
    /// Flip one bit of the IEEE-754 representation.
    ///
    /// `bit: None` picks a random bit in the high-mantissa/low-exponent
    /// range: visible to any sane verification tolerance (low-mantissa
    /// flips fall below it and are harmless by construction — the same
    /// blind spot real ABFT has), yet bounded to a few binades so that
    /// checksum-based correction, which repairs an error of magnitude `d`
    /// up to `O(eps * d)` roundoff, restores full precision. Flips of high
    /// exponent bits (choose them via `Some(bit)`) are still detected and
    /// corrected, but leave that `O(eps * d)` residual — an inherent
    /// property of ABFT, not of this injector.
    BitFlip {
        /// Fixed bit index (0 = LSB), or `None` for a random significant bit.
        bit: Option<u32>,
    },
    /// Add an offset to the value. The applied offset is
    /// `magnitude * u` with `u` drawn per event from `[0.5, 1.5)` and a
    /// random sign — distinct events carry distinct deltas, like real
    /// bit-level corruptions do (and unlike a constant offset, which would
    /// make simultaneous errors algebraically indistinguishable to any
    /// row+column checksum scheme).
    Additive {
        /// The base offset magnitude.
        magnitude: f64,
    },
    /// Multiply the value by a constant factor (models dropped/duplicated
    /// partial products).
    ///
    /// On an exactly-zero value this is a **no-op** by construction
    /// (`0 * factor == 0`): a dropped partial product of zero changes
    /// nothing, so a `Scale` event landing on a zero element injects no
    /// error. Campaigns over sparse/zero-heavy data that must guarantee
    /// every event perturbs its victim should use [`ErrorModel::BitFlip`]
    /// or [`ErrorModel::Additive`] (pinned by `scale_is_noop_on_zero`).
    Scale {
        /// Multiplicative factor.
        factor: f64,
    },
}

impl ErrorModel {
    /// Default model used in the figure-2(c)/(d) reproductions: a large
    /// additive error that any reasonable tolerance flags.
    pub fn default_for_benchmarks() -> Self {
        ErrorModel::Additive { magnitude: 1.0e6 }
    }
}

/// When errors fire, expressed over a stream of injection sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Rate {
    /// Exactly `count` errors per [`SiteStream`](crate::SiteStream),
    /// uniformly spread over the expected number of sites. This is the
    /// paper's "20 injected errors" per run mode.
    Count(usize),
    /// Independent probability per site.
    PerSite(f64),
    /// Wall-clock rate (errors per second); the "hundreds of errors per
    /// minute" campaign mode.
    PerSecond(f64),
}

/// One concrete injection event produced by a [`SiteStream`](crate::SiteStream).
#[derive(Debug, Clone, Copy)]
pub struct ErrorEvent {
    /// Uniform random draw used to select the victim element within the
    /// site's tile (the driver maps it onto its local geometry).
    pub lane: u64,
    model: ErrorModel,
    /// Random payload fixed at event creation so application is pure.
    payload: u64,
}

impl ErrorEvent {
    pub(crate) fn new<R: Rng>(model: ErrorModel, rng: &mut R) -> Self {
        ErrorEvent {
            lane: rng.gen(),
            model,
            payload: rng.gen(),
        }
    }

    /// Applies the error to an `f64` value, returning the corrupted value.
    ///
    /// Deterministic: the same event applied to the same value yields the
    /// same corruption.
    pub fn apply_f64(&self, v: f64) -> f64 {
        match self.model {
            ErrorModel::BitFlip { bit } => {
                // Random bits restricted to [44, 53]: high mantissa and the
                // lowest exponent bit — corruption between 2^-8x and 4x of
                // the value, always detectable and exactly correctable.
                let b = bit.unwrap_or(44 + (self.payload % 10) as u32);
                let flipped = f64::from_bits(v.to_bits() ^ (1u64 << (b % 64)));
                if flipped.is_finite() {
                    flipped
                } else {
                    // Exponent flips can overflow to inf; fall back to a
                    // corruption *relative* to the value (halving = an
                    // exponent-decrement flip) so the fail-continue model
                    // holds at any magnitude. An absolute addend would be
                    // absorbed by rounding for |v| beyond its precision
                    // (e.g. `v + 1e12` is a no-op at 1e300) and the
                    // "injected" error would silently change nothing.
                    v * 0.5
                }
            }
            ErrorModel::Additive { magnitude } => {
                let sign = if self.payload & 1 == 0 { 1.0 } else { -1.0 };
                let u = 0.5 + ((self.payload >> 16) & 0xFFFF) as f64 / 65536.0;
                v + sign * magnitude * u
            }
            ErrorModel::Scale { factor } => v * factor,
        }
    }

    /// Applies the error to an `f32` value.
    pub fn apply_f32(&self, v: f32) -> f32 {
        match self.model {
            ErrorModel::BitFlip { bit } => {
                // f32: high mantissa + lowest exponent bit, [18, 24].
                let b = bit.unwrap_or(18 + (self.payload % 7) as u32);
                let flipped = f32::from_bits(v.to_bits() ^ (1u32 << (b % 32)));
                if flipped.is_finite() {
                    flipped
                } else {
                    // Same relative fallback as `apply_f64`: `v + 1e6`
                    // was absorbed for |v| ≳ 1e30.
                    v * 0.5
                }
            }
            ErrorModel::Additive { magnitude } => {
                let sign = if self.payload & 1 == 0 { 1.0f32 } else { -1.0 };
                let u = 0.5 + ((self.payload >> 16) & 0xFFFF) as f32 / 65536.0;
                v + sign * (magnitude as f32) * u
            }
            ErrorModel::Scale { factor } => v * factor as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn event(model: ErrorModel, seed: u64) -> ErrorEvent {
        let mut rng = StdRng::seed_from_u64(seed);
        ErrorEvent::new(model, &mut rng)
    }

    #[test]
    fn bitflip_changes_value_and_stays_finite() {
        for seed in 0..50 {
            let e = event(ErrorModel::BitFlip { bit: None }, seed);
            let v = 1.234_f64;
            let c = e.apply_f64(v);
            assert_ne!(c, v, "seed {seed}");
            assert!(c.is_finite(), "seed {seed}");
        }
    }

    #[test]
    fn fixed_bit_flip_is_exact() {
        let e = event(ErrorModel::BitFlip { bit: Some(52) }, 1);
        let v = 1.0_f64; // exponent 0x3FF -> 0x3FE, i.e. 1.0 becomes 0.5
        assert_eq!(e.apply_f64(v), 0.5);
    }

    #[test]
    fn additive_is_signed_offset_in_range() {
        let e = event(ErrorModel::Additive { magnitude: 5.0 }, 3);
        let c = e.apply_f64(10.0);
        let d = (c - 10.0).abs();
        assert!((2.5..7.5).contains(&d), "delta {d}");
    }

    #[test]
    fn additive_deltas_are_distinct_across_events() {
        let deltas: Vec<f64> = (0..32)
            .map(|seed| event(ErrorModel::Additive { magnitude: 1e6 }, seed).apply_f64(0.0))
            .collect();
        for i in 0..deltas.len() {
            for j in i + 1..deltas.len() {
                assert_ne!(deltas[i], deltas[j], "collision at {i},{j}");
            }
        }
    }

    #[test]
    fn scale_multiplies() {
        let e = event(ErrorModel::Scale { factor: 3.0 }, 4);
        assert_eq!(e.apply_f64(2.0), 6.0);
        assert_eq!(e.apply_f32(2.0), 6.0);
    }

    #[test]
    fn apply_is_deterministic() {
        let e = event(ErrorModel::BitFlip { bit: None }, 9);
        assert_eq!(e.apply_f64(3.5), e.apply_f64(3.5));
    }

    #[test]
    fn f32_bitflip_finite() {
        for seed in 0..50 {
            let e = event(ErrorModel::BitFlip { bit: None }, seed);
            let c = e.apply_f32(0.75);
            assert!(c.is_finite());
            assert_ne!(c, 0.75);
        }
    }

    #[test]
    fn infinity_fallback() {
        // Exponent flips on large values must stay finite (fail-continue)
        // AND still corrupt the value — the old absolute fallback
        // (`v + 1e12`) was absorbed by rounding at 1e300 and "injected"
        // nothing. Bit 62 at 1e300 clears the already-set exponent MSB
        // (finite but corrupted); bit 52 at 1e308 sets the exponent to
        // 2047 (inf) and exercises the fallback itself.
        for (bit, v) in [(62u32, 1.0e300_f64), (52, 1.0e308)] {
            let e = event(ErrorModel::BitFlip { bit: Some(bit) }, 5);
            let c = e.apply_f64(v);
            assert!(c.is_finite(), "bit {bit} at {v}");
            assert_ne!(c, v, "bit {bit} at {v}: corruption was absorbed");
        }
        // The 1e308 case really does overflow before the fallback.
        assert!(!f64::from_bits(1.0e308_f64.to_bits() ^ (1 << 52)).is_finite());
    }

    #[test]
    fn f32_infinity_fallback() {
        // f32 analogue at 1e38: flipping exponent bit 1 (bit index 24)
        // lands on exponent 255 = inf, so the fallback fires; the old
        // `v + 1e6` fallback was absorbed at this magnitude.
        let e = event(ErrorModel::BitFlip { bit: Some(24) }, 5);
        assert!(!f32::from_bits(1.0e38_f32.to_bits() ^ (1 << 24)).is_finite());
        let c = e.apply_f32(1.0e38);
        assert!(c.is_finite());
        assert_ne!(c, 1.0e38, "fallback corruption was absorbed");
    }

    #[test]
    fn scale_is_noop_on_zero() {
        // Documented blind spot: a Scale event on an exactly-zero value
        // changes nothing (0 * factor == 0). See the ErrorModel docs.
        let e = event(ErrorModel::Scale { factor: 100.0 }, 6);
        assert_eq!(e.apply_f64(0.0), 0.0);
        assert_eq!(e.apply_f32(0.0), 0.0);
    }
}
