//! Long-running reliability campaigns ("hundreds of errors injected per
//! minute", paper §3.2 / abstract).
//!
//! A campaign repeatedly executes a caller-supplied iteration — typically
//! one fault-tolerant GEMM plus a comparison against a clean reference —
//! under a shared [`FaultInjector`], for a wall-clock budget, and reports
//! validated/mismatched runs together with the achieved error rate.

use crate::injector::FaultInjector;
use std::time::{Duration, Instant};

/// Outcome of one campaign iteration, as judged by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// The fault-tolerant result matched the clean reference.
    Correct,
    /// The result diverged from the reference (fault tolerance failed).
    Mismatch,
    /// The iteration was not evaluated (e.g. warm-up).
    Skipped,
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Wall-clock budget for the campaign.
    pub duration: Duration,
    /// Injector shared with the iterations.
    pub injector: FaultInjector,
    /// Optional cap on iterations (0 = unbounded).
    pub max_runs: u64,
}

/// Campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Iterations executed.
    pub runs: u64,
    /// Iterations whose result matched the reference.
    pub validated: u64,
    /// Iterations whose result diverged.
    pub mismatches: u64,
    /// Iterations skipped.
    pub skipped: u64,
    /// Wall-clock time consumed.
    pub elapsed: Duration,
    /// Errors injected over the campaign.
    pub injected: u64,
    /// Errors corrected over the campaign.
    pub corrected: u64,
    /// Achieved injection rate in errors per minute.
    pub errors_per_minute: f64,
}

impl Campaign {
    /// New campaign with the given wall-clock budget.
    pub fn new(duration: Duration, injector: FaultInjector) -> Self {
        Campaign {
            duration,
            injector,
            max_runs: 0,
        }
    }

    /// Runs the campaign. The iteration receives the injector and returns
    /// its verdict; iterations run back-to-back until the budget expires.
    pub fn run(
        &self,
        mut iteration: impl FnMut(&FaultInjector) -> CampaignOutcome,
    ) -> CampaignReport {
        self.injector.stats().reset();
        let start = Instant::now();
        let mut runs = 0u64;
        let mut validated = 0u64;
        let mut mismatches = 0u64;
        let mut skipped = 0u64;

        while start.elapsed() < self.duration {
            match iteration(&self.injector) {
                CampaignOutcome::Correct => validated += 1,
                CampaignOutcome::Mismatch => mismatches += 1,
                CampaignOutcome::Skipped => skipped += 1,
            }
            runs += 1;
            if self.max_runs != 0 && runs >= self.max_runs {
                break;
            }
        }
        let elapsed = start.elapsed();
        let injected = self.injector.stats().injected();
        let corrected = self.injector.stats().corrected();
        let errors_per_minute = if elapsed.as_secs_f64() > 0.0 {
            injected as f64 * 60.0 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        CampaignReport {
            runs,
            validated,
            mismatches,
            skipped,
            elapsed,
            injected,
            corrected,
            errors_per_minute,
        }
    }
}

impl CampaignReport {
    /// True when every evaluated run matched its reference.
    pub fn all_validated(&self) -> bool {
        self.mismatches == 0 && self.validated > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_runs_until_budget() {
        let inj = FaultInjector::counted(1, 1);
        let c = Campaign::new(Duration::from_millis(20), inj);
        let report = c.run(|inj| {
            // Simulate one "FT-GEMM": visit 10 sites, count corrections.
            let mut s = inj.stream(0, 10);
            for _ in 0..10 {
                if s.poll().is_some() {
                    inj.stats().record_detected();
                    inj.stats().record_corrected();
                }
            }
            CampaignOutcome::Correct
        });
        assert!(report.runs > 0);
        assert_eq!(report.validated, report.runs);
        assert!(report.all_validated());
        assert_eq!(report.injected, report.corrected);
        assert!(report.errors_per_minute > 0.0);
    }

    #[test]
    fn max_runs_caps() {
        let inj = FaultInjector::counted(1, 0);
        let mut c = Campaign::new(Duration::from_secs(60), inj);
        c.max_runs = 3;
        let report = c.run(|_| CampaignOutcome::Skipped);
        assert_eq!(report.runs, 3);
        assert_eq!(report.skipped, 3);
        assert!(!report.all_validated());
    }

    #[test]
    fn mismatch_recorded() {
        let inj = FaultInjector::counted(1, 0);
        let mut c = Campaign::new(Duration::from_secs(60), inj);
        c.max_runs = 2;
        let mut first = true;
        let report = c.run(|_| {
            if std::mem::take(&mut first) {
                CampaignOutcome::Mismatch
            } else {
                CampaignOutcome::Correct
            }
        });
        assert_eq!(report.mismatches, 1);
        assert_eq!(report.validated, 1);
        assert!(!report.all_validated());
    }
}
