//! Cross-thread injection/detection/correction counters.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// injection tallies only — Relaxed, never a synchronization point.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters describing the life cycle of injected errors.
///
/// `injected` is bumped by [`SiteStream`](crate::SiteStream); the detection
/// and correction counters are bumped by the fault-tolerant drivers
/// (`ftgemm-abft` / `ftgemm-parallel`) when their verification passes flag
/// and repair discrepancies.
#[derive(Debug, Default)]
pub struct InjectionStats {
    injected: AtomicU64,
    detected: AtomicU64,
    corrected: AtomicU64,
    unrecoverable: AtomicU64,
}

impl InjectionStats {
    /// Records one injected error.
    pub fn record_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one detected checksum discrepancy.
    pub fn record_detected(&self) {
        self.detected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one corrected element.
    pub fn record_corrected(&self) {
        self.corrected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one unrecoverable verification failure.
    pub fn record_unrecoverable(&self) {
        self.unrecoverable.fetch_add(1, Ordering::Relaxed);
    }

    /// Total injected errors.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
    /// Total detected discrepancies.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }
    /// Total corrected elements.
    pub fn corrected(&self) -> u64 {
        self.corrected.load(Ordering::Relaxed)
    }
    /// Total unrecoverable failures.
    pub fn unrecoverable(&self) -> u64 {
        self.unrecoverable.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.injected.store(0, Ordering::Relaxed);
        self.detected.store(0, Ordering::Relaxed);
        self.corrected.store(0, Ordering::Relaxed);
        self.unrecoverable.store(0, Ordering::Relaxed);
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "injected={} detected={} corrected={} unrecoverable={}",
            self.injected(),
            self.detected(),
            self.corrected(),
            self.unrecoverable()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let s = InjectionStats::default();
        s.record_injected();
        s.record_injected();
        s.record_detected();
        s.record_corrected();
        assert_eq!(s.injected(), 2);
        assert_eq!(s.detected(), 1);
        assert_eq!(s.corrected(), 1);
        assert_eq!(s.unrecoverable(), 0);
    }

    #[test]
    fn reset_clears() {
        let s = InjectionStats::default();
        s.record_unrecoverable();
        s.reset();
        assert_eq!(s.unrecoverable(), 0);
    }

    #[test]
    fn summary_format() {
        let s = InjectionStats::default();
        s.record_injected();
        assert_eq!(
            s.summary(),
            "injected=1 detected=0 corrected=0 unrecoverable=0"
        );
    }

    #[test]
    fn concurrent_increments() {
        let s = Arc::new(InjectionStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_injected();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.injected(), 8000);
    }
}
