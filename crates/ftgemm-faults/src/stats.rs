//! Cross-thread injection/detection/correction counters.

// analyze::policy(atomics: relaxed)
// Concurrency contract (checked by `cargo run -p ftgemm-analyze`):
// injection tallies only — Relaxed, never a synchronization point.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters describing the life cycle of injected errors.
///
/// `injected` is bumped by [`SiteStream`](crate::SiteStream); the detection
/// and correction counters are bumped by the fault-tolerant drivers
/// (`ftgemm-abft` / `ftgemm-parallel`) when their verification passes flag
/// and repair discrepancies.
#[derive(Debug, Default)]
pub struct InjectionStats {
    injected: AtomicU64,
    detected: AtomicU64,
    corrected: AtomicU64,
    unrecoverable: AtomicU64,
}

impl InjectionStats {
    /// Records one injected error.
    pub fn record_injected(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one detected checksum discrepancy.
    pub fn record_detected(&self) {
        self.detected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one corrected element.
    pub fn record_corrected(&self) {
        self.corrected.fetch_add(1, Ordering::Relaxed);
    }
    /// Records one unrecoverable verification failure.
    pub fn record_unrecoverable(&self) {
        self.unrecoverable.fetch_add(1, Ordering::Relaxed);
    }

    /// Total injected errors.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
    /// Total detected discrepancies.
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::Relaxed)
    }
    /// Total corrected elements.
    pub fn corrected(&self) -> u64 {
        self.corrected.load(Ordering::Relaxed)
    }
    /// Total unrecoverable failures.
    pub fn unrecoverable(&self) -> u64 {
        self.unrecoverable.load(Ordering::Relaxed)
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.injected.store(0, Ordering::Relaxed);
        self.detected.store(0, Ordering::Relaxed);
        self.corrected.store(0, Ordering::Relaxed);
        self.unrecoverable.store(0, Ordering::Relaxed);
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "injected={} detected={} corrected={} unrecoverable={}",
            self.injected(),
            self.detected(),
            self.corrected(),
            self.unrecoverable()
        )
    }
}

/// Flop-volume-weighted EWMA of an error rate (detected errors per flop).
///
/// This is the rate machinery behind the serving layer's error-aware
/// fault-policy monitor: each completed request contributes one
/// observation `(detected, flops)`, and the average decays by *observed
/// flop volume*, not wall-clock time — `w = 1 - exp(-flops / tau_flops)`
/// — so the estimate is fully deterministic for a given request sequence
/// (no clock reads) and a big request moves it proportionally more than
/// a small one.
///
/// Plain (non-atomic) state: callers that share one across threads put it
/// behind a lock; the serving monitor keeps one per node.
#[derive(Debug, Clone)]
pub struct ErrorRateEwma {
    /// Decay volume: one `tau_flops` of observations carries ~63% weight.
    tau_flops: f64,
    rate: f64,
}

impl ErrorRateEwma {
    /// A zeroed estimator decaying over `tau_flops` flops of history.
    ///
    /// `tau_flops` must be positive; non-positive or non-finite values are
    /// clamped to 1.0 so the estimator degrades to "latest observation
    /// wins" instead of producing NaNs.
    pub fn new(tau_flops: f64) -> Self {
        let tau_flops = if tau_flops.is_finite() && tau_flops > 0.0 {
            tau_flops
        } else {
            1.0
        };
        ErrorRateEwma {
            tau_flops,
            rate: 0.0,
        }
    }

    /// Folds one completed request's `(detected, flops)` into the rate.
    /// Zero-flop observations are ignored (no volume, no evidence).
    pub fn observe(&mut self, detected: u64, flops: u64) {
        if flops == 0 {
            return;
        }
        let w = 1.0 - (-(flops as f64) / self.tau_flops).exp();
        let sample = detected as f64 / flops as f64;
        self.rate += w * (sample - self.rate);
    }

    /// The current detected-errors-per-flop estimate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Resets the estimate to zero (history forgotten).
    pub fn reset(&mut self) {
        self.rate = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ewma_starts_at_zero_and_tracks_detections() {
        let mut e = ErrorRateEwma::new(1.0e6);
        assert_eq!(e.rate(), 0.0);
        e.observe(10, 1_000_000);
        assert!(e.rate() > 0.0);
        // Rate stays below the raw sample (EWMA, not replacement).
        assert!(e.rate() <= 10.0 / 1.0e6 + 1e-18);
    }

    #[test]
    fn ewma_decays_toward_zero_on_clean_volume() {
        let mut e = ErrorRateEwma::new(1.0e6);
        e.observe(100, 1_000_000);
        let peak = e.rate();
        for _ in 0..20 {
            e.observe(0, 1_000_000);
        }
        assert!(e.rate() < peak * 1e-3, "rate {} vs peak {peak}", e.rate());
    }

    #[test]
    fn ewma_is_deterministic_and_clock_free() {
        let run = || {
            let mut e = ErrorRateEwma::new(5.0e5);
            for i in 0..50u64 {
                e.observe(i % 3, 10_000 + i * 1_000);
            }
            e.rate()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }

    #[test]
    fn ewma_big_requests_move_it_more() {
        let mut small = ErrorRateEwma::new(1.0e6);
        small.observe(1, 1_000);
        let mut big = ErrorRateEwma::new(1.0e6);
        big.observe(1_000, 1_000_000);
        // Same sample rate (1e-3), but the big observation carries more
        // of its weight into the estimate.
        assert!(big.rate() > small.rate());
    }

    #[test]
    fn ewma_ignores_zero_flops_and_survives_bad_tau() {
        let mut e = ErrorRateEwma::new(0.0);
        e.observe(5, 0);
        assert_eq!(e.rate(), 0.0);
        e.observe(1, 100);
        assert!(e.rate().is_finite());
        e.reset();
        assert_eq!(e.rate(), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let s = InjectionStats::default();
        s.record_injected();
        s.record_injected();
        s.record_detected();
        s.record_corrected();
        assert_eq!(s.injected(), 2);
        assert_eq!(s.detected(), 1);
        assert_eq!(s.corrected(), 1);
        assert_eq!(s.unrecoverable(), 0);
    }

    #[test]
    fn reset_clears() {
        let s = InjectionStats::default();
        s.record_unrecoverable();
        s.reset();
        assert_eq!(s.unrecoverable(), 0);
    }

    #[test]
    fn summary_format() {
        let s = InjectionStats::default();
        s.record_injected();
        assert_eq!(
            s.summary(),
            "injected=1 detected=0 corrected=0 unrecoverable=0"
        );
    }

    #[test]
    fn concurrent_increments() {
        let s = Arc::new(InjectionStats::default());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record_injected();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.injected(), 8000);
    }
}
