//! The injector and its per-call/per-thread site streams.

use crate::model::{ErrorEvent, ErrorModel, Rate};
use crate::stats::InjectionStats;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A configured fault injector, shared (by reference) with compute drivers.
///
/// The injector itself is immutable and `Sync`; mutation lives in the
/// [`SiteStream`]s drivers open per call / per thread and in the atomic
/// [`InjectionStats`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    seed: u64,
    model: ErrorModel,
    rate: Rate,
    stats: Arc<InjectionStats>,
    /// Wall-clock injection state, shared across all streams/calls so a
    /// [`Rate::PerSecond`] budget accrues globally (a per-call clock would
    /// reset before any error became due).
    clock: Arc<ClockState>,
}

#[derive(Debug)]
struct ClockState {
    start: Instant,
    fired: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector with the given determinism seed.
    pub fn new(seed: u64, model: ErrorModel, rate: Rate) -> Self {
        FaultInjector {
            seed,
            model,
            rate,
            stats: Arc::new(InjectionStats::default()),
            clock: Arc::new(ClockState {
                start: Instant::now(),
                fired: AtomicU64::new(0),
            }),
        }
    }

    /// Convenience: `count` errors per stream with the benchmark default
    /// model (large additive corruption).
    pub fn counted(seed: u64, count: usize) -> Self {
        Self::new(
            seed,
            ErrorModel::default_for_benchmarks(),
            Rate::Count(count),
        )
    }

    /// The configured error model.
    pub fn model(&self) -> ErrorModel {
        self.model
    }

    /// The configured rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Shared statistics (injected/detected/corrected counters).
    pub fn stats(&self) -> &InjectionStats {
        &self.stats
    }

    /// Opens a site stream.
    ///
    /// * `stream_id` — disambiguates parallel streams (thread index) and
    ///   repeated calls (call counter); determinism is per `(seed,
    ///   stream_id)` pair.
    /// * `expected_sites` — how many sites the driver will visit on this
    ///   stream; used by [`Rate::Count`] to spread the errors uniformly.
    pub fn stream(&self, stream_id: u64, expected_sites: usize) -> SiteStream {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let schedule = match self.rate {
            Rate::Count(count) => {
                // Sample `count` distinct site indices (with replacement is
                // acceptable when sites < count; duplicates collapse).
                let n = expected_sites.max(1);
                let mut sites: Vec<usize> = (0..count).map(|_| rng.gen_range(0..n)).collect();
                sites.sort_unstable();
                sites.dedup();
                Schedule::Sites(sites)
            }
            Rate::PerSite(p) => Schedule::Probability(p),
            Rate::PerSecond(r) => Schedule::Clock { rate: r },
        };
        SiteStream {
            injector: self.clone(),
            rng,
            schedule,
            cursor: 0,
            visited: 0,
        }
    }
}

#[derive(Debug)]
enum Schedule {
    /// Sorted distinct site indices to hit (Count rate).
    Sites(Vec<usize>),
    /// Bernoulli per site.
    Probability(f64),
    /// Wall-clock driven (state lives in the shared [`ClockState`]).
    Clock { rate: f64 },
}

/// A per-call (or per-thread) stream of injection decisions.
///
/// The driver calls [`SiteStream::poll`] exactly once per injection site, in
/// its natural visit order. `Some(event)` means "corrupt one element at this
/// site with this event".
#[derive(Debug)]
pub struct SiteStream {
    injector: FaultInjector,
    rng: StdRng,
    schedule: Schedule,
    cursor: usize,
    visited: usize,
}

impl SiteStream {
    /// Polls the next site. Returns an event if an error fires here.
    pub fn poll(&mut self) -> Option<ErrorEvent> {
        let site = self.visited;
        self.visited += 1;
        let fire = match &mut self.schedule {
            Schedule::Sites(sites) => {
                if self.cursor < sites.len() && sites[self.cursor] == site {
                    self.cursor += 1;
                    true
                } else {
                    false
                }
            }
            Schedule::Probability(p) => self.rng.gen_bool(p.clamp(0.0, 1.0)),
            Schedule::Clock { rate } => {
                let clock = &self.injector.clock;
                let due = (clock.start.elapsed().as_secs_f64() * *rate) as u64;
                // Claim one due error atomically (streams on many threads
                // share the budget).
                let mut claimed = false;
                let mut fired = clock.fired.load(Ordering::Relaxed);
                while fired < due {
                    match clock.fired.compare_exchange_weak(
                        fired,
                        fired + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            claimed = true;
                            break;
                        }
                        Err(cur) => fired = cur,
                    }
                }
                claimed
            }
        };
        if fire {
            self.injector.stats.record_injected();
            Some(ErrorEvent::new(self.injector.model(), &mut self.rng))
        } else {
            None
        }
    }

    /// Number of sites visited so far.
    pub fn visited(&self) -> usize {
        self.visited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_rate_fires_exactly_count_distinct() {
        let inj = FaultInjector::counted(7, 5);
        let mut s = inj.stream(0, 1000);
        let mut fired = 0;
        for _ in 0..1000 {
            if s.poll().is_some() {
                fired += 1;
            }
        }
        assert!((1..=5).contains(&fired), "fired {fired}");
        assert_eq!(inj.stats().injected(), fired as u64);
    }

    #[test]
    fn count_rate_deterministic_per_stream_id() {
        let inj = FaultInjector::counted(7, 3);
        let collect = |id| {
            let mut s = inj.stream(id, 100);
            (0..100).filter(|_| s.poll().is_some()).collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(1));
        // Different streams usually differ (not guaranteed per-seed, but
        // with these constants they do).
        assert_ne!(collect(1), collect(2));
    }

    #[test]
    fn probability_rate_statistics() {
        let inj = FaultInjector::new(
            1,
            ErrorModel::Additive { magnitude: 1.0 },
            Rate::PerSite(0.5),
        );
        let mut s = inj.stream(0, 0);
        let fired = (0..10_000).filter(|_| s.poll().is_some()).count();
        assert!((4000..6000).contains(&fired), "fired {fired}");
    }

    #[test]
    fn zero_count_never_fires() {
        let inj = FaultInjector::counted(3, 0);
        let mut s = inj.stream(0, 50);
        assert!((0..50).all(|_| s.poll().is_none()));
        assert_eq!(inj.stats().injected(), 0);
    }

    #[test]
    fn clock_rate_fires_over_time() {
        let inj = FaultInjector::new(
            1,
            ErrorModel::Additive { magnitude: 1.0 },
            Rate::PerSecond(10_000.0),
        );
        let mut s = inj.stream(0, 0);
        std::thread::sleep(std::time::Duration::from_millis(5));
        // After 5ms at 10k/s, ~50 errors are due; polling a few sites fires.
        let fired = (0..100).filter(|_| s.poll().is_some()).count();
        assert!(fired > 0);
    }

    #[test]
    fn stats_shared_across_clones() {
        let inj = FaultInjector::counted(7, 2);
        let c = inj.clone();
        let mut s = c.stream(0, 10);
        for _ in 0..10 {
            s.poll();
        }
        assert!(inj.stats().injected() > 0);
    }

    #[test]
    fn sites_fire_even_when_fewer_sites_than_expected() {
        // Driver visits fewer sites than `expected_sites`; fires may be
        // fewer but polling must not panic.
        let inj = FaultInjector::counted(11, 4);
        let mut s = inj.stream(0, 1_000_000);
        for _ in 0..10 {
            s.poll();
        }
        assert_eq!(s.visited(), 10);
    }
}
