//! Checksum encoding primitives.
//!
//! The fused variants ride on passes GEMM performs anyway; the standalone
//! variants implement the same algebra as separate O(n^2) sweeps and back
//! the "traditional ABFT" baseline (fusion ablation).

use ftgemm_core::{MatMut, MatRef, Scalar};

/// Fused `C *= beta` + checksum encode over a column block of `C`.
///
/// In one pass over the block: scales each element by `beta`, and
/// accumulates the scaled values into `enc_row` (length = block rows) and
/// `enc_col` (length = block cols). Both output vectors are **overwritten**.
///
/// `beta == 0` skips reading `C` (fills zeros) and `beta == 1` skips the
/// write-back, exactly like the plain scaling pass it replaces.
pub fn scale_encode_c<T: Scalar>(
    c: &mut MatMut<'_, T>,
    beta: T,
    enc_row: &mut [T],
    enc_col: &mut [T],
) {
    let m = c.nrows();
    let n = c.ncols();
    assert_eq!(enc_row.len(), m, "scale_encode_c: enc_row length");
    assert_eq!(enc_col.len(), n, "scale_encode_c: enc_col length");
    enc_row.fill(T::ZERO);

    if beta == T::ZERO {
        c.fill(T::ZERO);
        enc_col.fill(T::ZERO);
        return;
    }
    for j in 0..n {
        let col = c.col_mut(j);
        let mut csum = T::ZERO;
        if beta == T::ONE {
            for i in 0..m {
                let v = col[i];
                csum += v;
                enc_row[i] += v;
            }
        } else {
            for i in 0..m {
                let v = beta * col[i];
                col[i] = v;
                csum += v;
                enc_row[i] += v;
            }
        }
        enc_col[j] = csum;
    }
}

/// Unfused equivalent of [`scale_encode_c`]: a scaling pass followed by a
/// second full read of the block for the checksums (the memory traffic the
/// paper's fusion eliminates).
pub fn scale_then_encode_c<T: Scalar>(
    c: &mut MatMut<'_, T>,
    beta: T,
    enc_row: &mut [T],
    enc_col: &mut [T],
) {
    ftgemm_core::gemm::scale_c(c, beta);
    encode_c(&c.as_ref(), enc_row, enc_col);
}

/// Standalone checksum read of a block: `enc_row[i] = Σ_j C[i,j]`,
/// `enc_col[j] = Σ_i C[i,j]`. Outputs overwritten.
pub fn encode_c<T: Scalar>(c: &MatRef<'_, T>, enc_row: &mut [T], enc_col: &mut [T]) {
    let m = c.nrows();
    let n = c.ncols();
    assert_eq!(enc_row.len(), m, "encode_c: enc_row length");
    assert_eq!(enc_col.len(), n, "encode_c: enc_col length");
    enc_row.fill(T::ZERO);
    for j in 0..n {
        let col = c.col(j);
        let mut csum = T::ZERO;
        for i in 0..m {
            let v = col[i];
            csum += v;
            enc_row[i] += v;
        }
        enc_col[j] = csum;
    }
}

/// Standalone `bc[p] = Σ_j B[p,j]` over a panel (unfused B_c).
pub fn encode_bc<T: Scalar>(b: &MatRef<'_, T>, bc: &mut [T]) {
    let k = b.nrows();
    let n = b.ncols();
    assert_eq!(bc.len(), k, "encode_bc: bc length");
    bc.fill(T::ZERO);
    for j in 0..n {
        let col = b.col(j);
        for p in 0..k {
            bc[p] += col[p];
        }
    }
}

/// Standalone `enc_col[j] += Σ_p ar[p] * B[p,j]` (unfused C_r update).
pub fn accumulate_enc_col<T: Scalar>(b: &MatRef<'_, T>, ar: &[T], enc_col: &mut [T]) {
    let k = b.nrows();
    let n = b.ncols();
    assert_eq!(ar.len(), k, "accumulate_enc_col: ar length");
    assert_eq!(enc_col.len(), n, "accumulate_enc_col: enc_col length");
    for j in 0..n {
        let col = b.col(j);
        let mut acc = T::ZERO;
        for p in 0..k {
            acc = ar[p].mul_add(col[p], acc);
        }
        enc_col[j] += acc;
    }
}

/// Standalone `enc_row[i] += alpha * Σ_q A[i,q] * bc[q]` (unfused C_c update).
pub fn accumulate_enc_row<T: Scalar>(a: &MatRef<'_, T>, alpha: T, bc: &[T], enc_row: &mut [T]) {
    let m = a.nrows();
    let k = a.ncols();
    assert_eq!(bc.len(), k, "accumulate_enc_row: bc length");
    assert_eq!(enc_row.len(), m, "accumulate_enc_row: enc_row length");
    for q in 0..k {
        let col = a.col(q);
        let w = alpha * bc[q];
        for i in 0..m {
            enc_row[i] = col[i].mul_add(w, enc_row[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::Matrix;

    #[test]
    fn scale_encode_matches_manual() {
        let mut c = Matrix::<f64>::random(7, 5, 1);
        let orig = c.clone();
        let beta = -1.5;
        let mut er = vec![9.0; 7];
        let mut ec = vec![9.0; 5];
        scale_encode_c(&mut c.as_mut(), beta, &mut er, &mut ec);
        for j in 0..5 {
            for i in 0..7 {
                assert!((c.get(i, j) - beta * orig.get(i, j)).abs() < 1e-15);
            }
        }
        for i in 0..7 {
            let want: f64 = (0..5).map(|j| c.get(i, j)).sum();
            assert!((er[i] - want).abs() < 1e-12);
        }
        for j in 0..5 {
            let want: f64 = (0..7).map(|i| c.get(i, j)).sum();
            assert!((ec[j] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn scale_encode_beta_zero() {
        let mut c = Matrix::<f64>::random(4, 4, 2);
        let mut er = vec![1.0; 4];
        let mut ec = vec![1.0; 4];
        scale_encode_c(&mut c.as_mut(), 0.0, &mut er, &mut ec);
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
        assert!(er.iter().chain(ec.iter()).all(|&v| v == 0.0));
    }

    #[test]
    fn scale_encode_beta_one_no_modification() {
        let mut c = Matrix::<f64>::random(4, 6, 3);
        let orig = c.clone();
        let mut er = vec![0.0; 4];
        let mut ec = vec![0.0; 6];
        scale_encode_c(&mut c.as_mut(), 1.0, &mut er, &mut ec);
        assert_eq!(c.as_slice(), orig.as_slice());
        let want: f64 = (0..4).map(|i| orig.get(i, 2)).sum();
        assert!((ec[2] - want).abs() < 1e-12);
    }

    #[test]
    fn fused_equals_unfused() {
        let base = Matrix::<f64>::random(9, 11, 4);
        let beta = 0.75;

        let mut c1 = base.clone();
        let mut er1 = vec![0.0; 9];
        let mut ec1 = vec![0.0; 11];
        scale_encode_c(&mut c1.as_mut(), beta, &mut er1, &mut ec1);

        let mut c2 = base.clone();
        let mut er2 = vec![0.0; 9];
        let mut ec2 = vec![0.0; 11];
        scale_then_encode_c(&mut c2.as_mut(), beta, &mut er2, &mut ec2);

        assert_eq!(c1.as_slice(), c2.as_slice());
        for (a, b) in er1.iter().zip(&er2) {
            assert!((a - b).abs() < 1e-12);
        }
        for (a, b) in ec1.iter().zip(&ec2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn encode_bc_matches() {
        let b = Matrix::<f64>::random(6, 8, 5);
        let mut bc = vec![0.0; 6];
        encode_bc(&b.as_ref(), &mut bc);
        for p in 0..6 {
            let want: f64 = (0..8).map(|j| b.get(p, j)).sum();
            assert!((bc[p] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulate_enc_col_matches() {
        let b = Matrix::<f64>::random(5, 7, 6);
        let ar: Vec<f64> = (0..5).map(|p| p as f64 * 0.3 - 1.0).collect();
        let mut ec = vec![2.0; 7];
        accumulate_enc_col(&b.as_ref(), &ar, &mut ec);
        for j in 0..7 {
            let want: f64 = 2.0 + (0..5).map(|p| ar[p] * b.get(p, j)).sum::<f64>();
            assert!((ec[j] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn accumulate_enc_row_matches() {
        let a = Matrix::<f64>::random(6, 4, 7);
        let bc: Vec<f64> = (0..4).map(|q| q as f64 + 0.5).collect();
        let alpha = -2.0;
        let mut er = vec![1.0; 6];
        accumulate_enc_row(&a.as_ref(), alpha, &bc, &mut er);
        for i in 0..6 {
            let want: f64 = 1.0 + (0..4).map(|q| alpha * a.get(i, q) * bc[q]).sum::<f64>();
            assert!((er[i] - want).abs() < 1e-12);
        }
    }
}
