//! Serial fault-tolerant GEMM: the paper's FT-DGEMM (§2.2), type-generic.
//!
//! Loop structure is identical to the plain driver (`ftgemm_core::gemm`)
//! with the ABFT operations threaded through the existing passes:
//!
//! ```text
//! ar = alpha * e^T A                          (one-time encode of A)
//! for jc (NC blocks of columns):
//!     scale C(:,jc) by beta, encoding enc_row/enc_col        [fused]
//!     for pc (KC depth panels):
//!         pack B~ — also bc (B_c) and enc_col update         [fused]
//!         for ic (MC row blocks):
//!             pack A~ — also enc_row update                  [fused]
//!             macro kernel — also ref_row/ref_col            [fused]
//!         verify {enc,ref} x {row,col}; locate & correct     ("p-loop: verify")
//! ```

use crate::checksum;
use crate::corrector::{self, CorrectionOutcome};
use crate::{FtConfig, FtError, FtReport, FtResult};
use ftgemm_core::gemm::validate_shapes;
use ftgemm_core::pack;
use ftgemm_core::{macro_kernel::macro_kernel, GemmContext, MatMut, MatRef, Scalar};
use ftgemm_faults::SiteStream;

/// Reusable state for repeated fault-tolerant GEMM calls: the plain GEMM
/// context plus the checksum work vectors.
#[derive(Debug)]
pub struct FtGemmContext<T: Scalar> {
    /// Underlying GEMM context (kernel, blocking parameters, pack buffers).
    pub core: GemmContext<T>,
    ar: Vec<T>,
    bc: Vec<T>,
    enc_row: Vec<T>,
    enc_col: Vec<T>,
    ref_row: Vec<T>,
    ref_col: Vec<T>,
    /// Checkpoint storage for [`Recovery::RetryPanel`]: the column block of
    /// `C` plus the encoded checksums at the start of the current panel.
    snap_c: Vec<T>,
    snap_enc_row: Vec<T>,
    snap_enc_col: Vec<T>,
    call_counter: u64,
}

use crate::Recovery;

impl<T: Scalar> FtGemmContext<T> {
    /// Context with auto-detected kernel and blocking parameters.
    pub fn new() -> Self {
        Self::from_core(GemmContext::new())
    }

    /// Context wrapping an explicitly configured core context.
    pub fn from_core(core: GemmContext<T>) -> Self {
        FtGemmContext {
            core,
            ar: Vec::new(),
            bc: Vec::new(),
            enc_row: Vec::new(),
            enc_col: Vec::new(),
            ref_row: Vec::new(),
            ref_col: Vec::new(),
            snap_c: Vec::new(),
            snap_enc_row: Vec::new(),
            snap_enc_col: Vec::new(),
            call_counter: 0,
        }
    }
}

impl<T: Scalar> FtGemmContext<T> {
    /// Pre-sizes every checksum work vector, checkpoint buffer, and packing
    /// scratch for an `m x n x k` problem under `cfg`, so a subsequent
    /// [`ft_gemm_with_ctx`] call of that shape performs **no heap
    /// allocation**. The facade's `GemmPlan` calls this at plan time; the
    /// sizes mirror the driver exactly, and re-reserving the same shape is
    /// free.
    pub fn reserve(&mut self, cfg: &FtConfig, m: usize, n: usize, k: usize) -> FtResult<()> {
        let p = self.core.params;
        p.validate().map_err(FtError::Core)?;
        let nc_max = p.nc.min(n);
        resize(&mut self.ar, k);
        resize(&mut self.bc, p.kc);
        resize(&mut self.enc_row, m);
        resize(&mut self.enc_col, nc_max);
        resize(&mut self.ref_row, m);
        resize(&mut self.ref_col, nc_max);
        if matches!(cfg.recovery, Recovery::RetryPanel { .. }) {
            resize(&mut self.snap_c, m * nc_max);
            resize(&mut self.snap_enc_row, m);
            resize(&mut self.snap_enc_col, nc_max);
        }
        self.core
            .pack_buffers(p.packed_a_len(), p.packed_b_len())
            .map_err(FtError::Core)?;
        Ok(())
    }
}

impl<T: Scalar> Default for FtGemmContext<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Fault-tolerant `C = alpha*A*B + beta*C` with a fresh context.
pub fn ft_gemm<T: Scalar>(
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    let mut ctx = FtGemmContext::new();
    ft_gemm_with_ctx(&mut ctx, cfg, alpha, a, b, beta, c)
}

/// Fault-tolerant GEMM reusing a caller-held context (benchmark path).
pub fn ft_gemm_with_ctx<T: Scalar>(
    ctx: &mut FtGemmContext<T>,
    cfg: &FtConfig,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> FtResult<FtReport> {
    let (m, n, k) = validate_shapes(a, b, c)?;
    let mut report = FtReport::default();

    if m == 0 || n == 0 {
        return Ok(report);
    }
    if k == 0 || alpha == T::ZERO {
        ftgemm_core::gemm::scale_c(c, beta);
        return Ok(report);
    }

    let p = ctx.core.params;
    let kernel = ctx.core.kernel;

    // Work vectors: sized and zeroed by `reserve`, the single authoritative
    // size list (shared with plan-time preallocation, so a planned call of
    // this shape re-resizes in place without touching the heap).
    ctx.reserve(cfg, m, n, k)?;
    let retry_panels = match cfg.recovery {
        Recovery::ReportOnly => 0u32,
        Recovery::RetryPanel { max_retries } => max_retries,
    };

    // A_r = alpha * e^T A — the one O(mk) encode pass (paper §2.3 encodes it
    // before the main loops).
    pack::col_sums_scaled(a, alpha, &mut ctx.ar);

    // Injection stream: one site per macro-kernel invocation.
    ctx.call_counter += 1;
    let n_sites = n.div_ceil(p.nc) * k.div_ceil(p.kc) * m.div_ceil(p.mc);
    let mut stream: Option<SiteStream> = cfg
        .injector
        .as_ref()
        .map(|inj| inj.stream(ctx.call_counter, n_sites));

    let (a_buf, b_buf) = ctx
        .core
        .pack_buffers(p.packed_a_len(), p.packed_b_len())
        .map_err(FtError::Core)?;

    let fusion = cfg.fusion;

    let mut jc = 0;
    while jc < n {
        let nc_eff = p.nc.min(n - jc);
        let enc_col = &mut ctx.enc_col[..nc_eff];
        let ref_col = &mut ctx.ref_col[..nc_eff];
        let enc_row = &mut ctx.enc_row[..m];
        let ref_row = &mut ctx.ref_row[..m];

        // beta-scale + initial checksum encode over this column block.
        {
            let mut c_block = c.submatrix_mut(0, jc, m, nc_eff);
            if fusion.fuse_c_scale {
                checksum::scale_encode_c(&mut c_block, beta, enc_row, enc_col);
            } else {
                checksum::scale_then_encode_c(&mut c_block, beta, enc_row, enc_col);
            }
        }

        // Correcting an error of magnitude d leaves an O(eps*d) roundoff
        // residual at the repaired element; later verifications of this
        // column block must treat that residual as noise, so the threshold
        // scale grows with the largest correction applied so far.
        let mut correction_scale = T::ZERO;

        let mut pc = 0;
        while pc < k {
            let kc_eff = p.kc.min(k - pc);

            // Checkpoint for panel-level rollback (Recovery::RetryPanel):
            // the block of C and the encoded checksums as of this panel's
            // start. O(m * nc) copies — strictly opt-in paranoia.
            if retry_panels > 0 {
                let c_block = c.submatrix_mut(0, jc, m, nc_eff);
                let cb = c_block.as_ref();
                for j in 0..nc_eff {
                    ctx.snap_c[j * m..(j + 1) * m].copy_from_slice(cb.col(j));
                }
                ctx.snap_enc_row[..m].copy_from_slice(enc_row);
                ctx.snap_enc_col[..nc_eff].copy_from_slice(&enc_col[..nc_eff]);
            }

            let mut attempt = 0u32;
            'attempts: loop {
                if attempt > 0 {
                    // Roll back C and the encoded checksums, then recompute
                    // the panel from scratch (the inputs A and B are
                    // untouched by construction).
                    report.retried_panels += 1;
                    let mut c_block = c.submatrix_mut(0, jc, m, nc_eff);
                    for j in 0..nc_eff {
                        c_block
                            .col_mut(j)
                            .copy_from_slice(&ctx.snap_c[j * m..(j + 1) * m]);
                    }
                    enc_row.copy_from_slice(&ctx.snap_enc_row[..m]);
                    enc_col[..nc_eff].copy_from_slice(&ctx.snap_enc_col[..nc_eff]);
                }

                let bc = &mut ctx.bc[..kc_eff];
                bc.fill(T::ZERO);

                let b_block = b.submatrix(pc, jc, kc_eff, nc_eff);
                if fusion.fuse_b_pack {
                    pack::pack_b_fused(
                        &b_block,
                        p.nr,
                        b_buf,
                        &ctx.ar[pc..pc + kc_eff],
                        bc,
                        enc_col,
                    );
                } else {
                    pack::pack_b(&b_block, p.nr, b_buf);
                    checksum::encode_bc(&b_block, bc);
                    checksum::accumulate_enc_col(&b_block, &ctx.ar[pc..pc + kc_eff], enc_col);
                }

                // Reference checksums cover the whole column block per panel.
                if fusion.fuse_kernel_refs {
                    ref_col.fill(T::ZERO);
                    ref_row.fill(T::ZERO);
                }

                let mut ic = 0;
                while ic < m {
                    let mc_eff = p.mc.min(m - ic);
                    let a_block = a.submatrix(ic, pc, mc_eff, kc_eff);
                    if fusion.fuse_a_pack {
                        pack::pack_a_fused(
                            &a_block,
                            alpha,
                            p.mr,
                            a_buf,
                            bc,
                            &mut enc_row[ic..ic + mc_eff],
                        );
                    } else {
                        pack::pack_a(&a_block, alpha, p.mr, a_buf);
                        checksum::accumulate_enc_row(
                            &a_block,
                            alpha,
                            bc,
                            &mut enc_row[ic..ic + mc_eff],
                        );
                    }

                    let mut c_block = c.submatrix_mut(ic, jc, mc_eff, nc_eff);
                    let sums = if fusion.fuse_kernel_refs {
                        Some((&mut ref_col[..], &mut ref_row[ic..ic + mc_eff]))
                    } else {
                        None
                    };
                    macro_kernel(&kernel, kc_eff, a_buf, b_buf, &mut c_block, sums);

                    // Source-level fault injection (paper §3.2): corrupt one
                    // freshly computed element, exactly as a faulty FMA would —
                    // the in-register reference checksums see the corrupted
                    // value, the encoded checksums do not.
                    if let Some(stream) = stream.as_mut() {
                        if let Some(event) = stream.poll() {
                            report.injected += 1;
                            let lane = event.lane;
                            let i_loc = (lane % mc_eff as u64) as usize;
                            let j_loc = ((lane / mc_eff as u64) % nc_eff as u64) as usize;
                            let old = c_block.get(i_loc, j_loc);
                            let new = T::from_f64(event.apply_f64(old.to_f64()));
                            c_block.set(i_loc, j_loc, new);
                            if fusion.fuse_kernel_refs {
                                let delta = new - old;
                                ref_col[j_loc] += delta;
                                ref_row[ic + i_loc] += delta;
                            }
                            // (unfused refs re-read C below and see it anyway)
                        }
                    }
                    ic += p.mc;
                }

                if !fusion.fuse_kernel_refs {
                    // Traditional ABFT: a separate O(m*nc) read-back pass.
                    let c_block = c.submatrix_mut(0, jc, m, nc_eff);
                    checksum::encode_c(&c_block.as_ref(), ref_row, ref_col);
                }

                // "p-loop: verify" — compare encoded vs reference checksums and
                // repair (paper Fig. 1, red operations).
                report.verifications += 1;
                let k_done = pc + kc_eff;
                // Scale from the *encoded* checksums only: they are computed
                // from clean inputs, so a huge corrupted reference value cannot
                // inflate the threshold and mask smaller concurrent errors.
                let scale = max_abs2(enc_row, enc_col).max(correction_scale);
                let th_row = cfg.tolerance.threshold::<T>(k_done, nc_eff, scale);
                let th_col = cfg.tolerance.threshold::<T>(k_done, m, scale);
                let row_diffs = corrector::find_discrepancies(enc_row, ref_row, th_row);
                let col_diffs = corrector::find_discrepancies(enc_col, ref_col, th_col);
                if !row_diffs.is_empty() || !col_diffs.is_empty() {
                    correction_scale = row_diffs
                        .iter()
                        .chain(col_diffs.iter())
                        .fold(correction_scale, |acc, d| acc.max(d.delta.abs()));
                    let mut c_block = c.submatrix_mut(0, jc, m, nc_eff);
                    let th = th_row.max(th_col);
                    match corrector::correct_block(&mut c_block, &row_diffs, &col_diffs, th) {
                        CorrectionOutcome::Clean => {}
                        CorrectionOutcome::Corrected { count } => {
                            report.detected += count;
                            report.corrected += count;
                            if let Some(inj) = cfg.injector.as_ref() {
                                for _ in 0..count {
                                    inj.stats().record_detected();
                                    inj.stats().record_corrected();
                                }
                            }
                        }
                        CorrectionOutcome::Unrecoverable { detail } => {
                            if let Some(inj) = cfg.injector.as_ref() {
                                inj.stats().record_unrecoverable();
                            }
                            if attempt < retry_panels {
                                attempt += 1;
                                continue 'attempts;
                            }
                            report.publish_global();
                            return Err(FtError::Unrecoverable { jc, pc, detail });
                        }
                    }
                }
                break 'attempts;
            }
            pc += p.kc;
        }
        jc += p.nc;
    }
    report.publish_global();
    Ok(report)
}

fn resize<T: Scalar>(v: &mut Vec<T>, len: usize) {
    v.clear();
    v.resize(len, T::ZERO);
}

fn max_abs2<T: Scalar>(a: &[T], b: &[T]) -> T {
    let fold = |s: &[T]| s.iter().fold(T::ZERO, |acc, &x| acc.max(x.abs()));
    fold(a).max(fold(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FusionConfig;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::{IsaLevel, Matrix};
    use ftgemm_faults::{ErrorModel, FaultInjector, Rate};

    fn run_case(
        cfg: &FtConfig,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) -> (Matrix<f64>, Matrix<f64>, FtReport) {
        let a = Matrix::<f64>::random(m, k, 71);
        let b = Matrix::<f64>::random(k, n, 72);
        let mut c = Matrix::<f64>::random(m, n, 73);
        let mut c_ref = c.clone();
        let report = ft_gemm(cfg, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c.as_mut()).unwrap();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        (c, c_ref, report)
    }

    #[test]
    fn clean_ft_gemm_matches_reference() {
        let cfg = FtConfig::default();
        for &(m, n, k) in &[(17usize, 13usize, 9usize), (64, 64, 64), (130, 70, 90)] {
            let (c, c_ref, report) = run_case(&cfg, m, n, k, 1.0, 1.0);
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{m}x{n}x{k}");
            assert!(report.verifications > 0);
            assert_eq!(report.detected, 0, "false positive at {m}x{n}x{k}");
        }
    }

    #[test]
    fn alpha_beta_variants() {
        let cfg = FtConfig::default();
        for &(alpha, beta) in &[(0.0, 0.5), (1.0, 0.0), (-2.0, 3.0), (0.5, 1.0)] {
            let (c, c_ref, _) = run_case(&cfg, 33, 29, 41, alpha, beta);
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "alpha={alpha} beta={beta}");
        }
    }

    #[test]
    fn all_fusion_configs_agree() {
        let variants = [
            FusionConfig::FUSED,
            FusionConfig::UNFUSED,
            FusionConfig {
                fuse_c_scale: true,
                fuse_b_pack: false,
                fuse_a_pack: true,
                fuse_kernel_refs: false,
            },
            FusionConfig {
                fuse_c_scale: false,
                fuse_b_pack: true,
                fuse_a_pack: false,
                fuse_kernel_refs: true,
            },
        ];
        for fusion in variants {
            let cfg = FtConfig {
                fusion,
                ..Default::default()
            };
            let (c, c_ref, report) = run_case(&cfg, 47, 53, 61, 1.0, 1.0);
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "{fusion:?}");
            assert_eq!(report.detected, 0, "false positive for {fusion:?}");
        }
    }

    #[test]
    fn injected_errors_corrected_fused() {
        let inj = FaultInjector::new(5, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(5));
        let cfg = FtConfig::with_injector(inj.clone());
        let (c, c_ref, report) = run_case(&cfg, 96, 80, 120, 1.0, 1.0);
        assert!(report.injected > 0, "no errors injected");
        assert_eq!(
            report.corrected, report.injected,
            "not all corrected: {report:?}"
        );
        assert!(
            c.rel_max_diff(&c_ref) < 1e-9,
            "result diverges after correction: {}",
            c.rel_max_diff(&c_ref)
        );
        assert_eq!(inj.stats().corrected(), report.corrected as u64);
    }

    #[test]
    fn injected_errors_corrected_unfused() {
        let inj = FaultInjector::new(6, ErrorModel::Additive { magnitude: 1e5 }, Rate::Count(3));
        let cfg = FtConfig {
            fusion: FusionConfig::UNFUSED,
            injector: Some(inj),
            ..Default::default()
        };
        let (c, c_ref, report) = run_case(&cfg, 64, 64, 64, 1.0, 1.0);
        assert!(report.injected > 0);
        assert_eq!(report.corrected, report.injected);
        assert!(c.rel_max_diff(&c_ref) < 1e-9);
    }

    #[test]
    fn bitflip_errors_corrected() {
        let inj = FaultInjector::new(9, ErrorModel::BitFlip { bit: None }, Rate::Count(4));
        let cfg = FtConfig::with_injector(inj);
        let (c, c_ref, report) = run_case(&cfg, 72, 56, 88, 1.0, 1.0);
        assert!(report.injected > 0);
        assert!(
            c.rel_max_diff(&c_ref) < 1e-9,
            "diff {} report {report:?}",
            c.rel_max_diff(&c_ref)
        );
    }

    #[test]
    fn many_errors_across_panels() {
        // Small blocks create many injection sites and many verification
        // intervals, each correcting its own batch (the paper's 20-error runs).
        let mut core = GemmContext::<f64>::new();
        let kern = core.kernel;
        core.set_params(ftgemm_core::BlockingParams {
            mr: kern.mr,
            nr: kern.nr,
            mc: kern.mr * 2,
            nc: kern.nr * 4,
            kc: 16,
        })
        .unwrap();
        let mut ctx = FtGemmContext::from_core(core);
        let inj = FaultInjector::new(11, ErrorModel::Additive { magnitude: 3e7 }, Rate::Count(20));
        let cfg = FtConfig::with_injector(inj);
        let (m, n, k) = (150, 140, 96);
        let a = Matrix::<f64>::random(m, k, 71);
        let b = Matrix::<f64>::random(k, n, 72);
        let mut c = Matrix::<f64>::random(m, n, 73);
        let mut c_ref = c.clone();
        let report = ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        assert!(report.injected >= 10, "{report:?}");
        assert_eq!(report.corrected, report.injected);
        assert!(c.rel_max_diff(&c_ref) < 1e-9);
    }

    #[test]
    fn small_blocking_many_verifications() {
        let mut core = GemmContext::<f64>::with_isa(IsaLevel::detect());
        let kern = core.kernel;
        core.set_params(ftgemm_core::BlockingParams {
            mr: kern.mr,
            nr: kern.nr,
            mc: kern.mr,
            nc: kern.nr * 2,
            kc: 8,
        })
        .unwrap();
        let mut ctx = FtGemmContext::from_core(core);
        let cfg = FtConfig::default();
        let (m, n, k) = (kern.mr * 3 + 1, kern.nr * 3 + 1, 20);
        let a = Matrix::<f64>::random(m, k, 1);
        let b = Matrix::<f64>::random(k, n, 2);
        let mut c = Matrix::<f64>::random(m, n, 3);
        let mut c_ref = c.clone();
        let report = ft_gemm_with_ctx(
            &mut ctx,
            &cfg,
            1.0,
            &a.as_ref(),
            &b.as_ref(),
            1.0,
            &mut c.as_mut(),
        )
        .unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 1.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
        assert!(report.verifications >= 6, "{report:?}");
    }

    #[test]
    fn f32_ft_gemm() {
        let cfg = FtConfig::default();
        let a = Matrix::<f32>::random(40, 30, 1);
        let b = Matrix::<f32>::random(30, 20, 2);
        let mut c = Matrix::<f32>::zeros(40, 20);
        let mut c_ref = c.clone();
        let report = ft_gemm(&cfg, 1.0f32, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0f32, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-4);
        assert_eq!(report.detected, 0);
    }

    #[test]
    fn degenerate_dims() {
        let cfg = FtConfig::default();
        let a = Matrix::<f64>::zeros(0, 3);
        let b = Matrix::<f64>::zeros(3, 4);
        let mut c = Matrix::<f64>::zeros(0, 4);
        ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();

        let a = Matrix::<f64>::zeros(2, 0);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::<f64>::filled(2, 2, 4.0);
        ft_gemm(&cfg, 1.0, &a.as_ref(), &b.as_ref(), 0.25, &mut c.as_mut()).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn context_reuse_with_injection_is_deterministic_per_call() {
        let inj = FaultInjector::new(13, ErrorModel::Additive { magnitude: 1e6 }, Rate::Count(2));
        let cfg = FtConfig::with_injector(inj);
        let mut ctx = FtGemmContext::<f64>::new();
        let a = Matrix::<f64>::random(50, 50, 4);
        let b = Matrix::<f64>::random(50, 50, 5);
        for _ in 0..3 {
            let mut c = Matrix::<f64>::zeros(50, 50);
            let r = ft_gemm_with_ctx(
                &mut ctx,
                &cfg,
                1.0,
                &a.as_ref(),
                &b.as_ref(),
                0.0,
                &mut c.as_mut(),
            )
            .unwrap();
            assert_eq!(r.corrected, r.injected);
        }
    }
}
