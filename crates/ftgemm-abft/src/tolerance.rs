//! Roundoff tolerance model for checksum verification.
//!
//! Encoded and reference checksums are computed in different summation
//! orders, so they differ by floating-point roundoff even without faults.
//! The verifier needs a threshold separating roundoff from injected errors.
//!
//! The bound used here follows the standard forward-error analysis of
//! recursive summation/dot products: an accumulated sum of `k` products of
//! magnitude `s` carries error `O(k * eps * s)`. We estimate `s` from the
//! checksum vectors themselves (their max magnitude), which is available
//! for free during verification.

use ftgemm_core::Scalar;

/// Tolerance model for separating roundoff from soft errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Safety factor multiplying the analytic roundoff bound. Larger values
    /// tolerate more roundoff (fewer false positives) at the cost of missing
    /// smaller errors.
    pub factor: f64,
    /// Absolute floor, guarding tiny problems where the relative bound
    /// underflows.
    pub floor: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        // factor sized so n = 20480 parallel runs (the paper's largest) stay
        // free of false positives with random (-1,1) operands.
        Tolerance {
            factor: 128.0,
            floor: 1e-30,
        }
    }
}

impl Tolerance {
    /// Strict tolerance for unit tests with small, well-conditioned inputs.
    pub fn strict() -> Self {
        Tolerance {
            factor: 16.0,
            floor: 1e-30,
        }
    }

    /// Computes the absolute verification threshold.
    ///
    /// * `k_done` — accumulated depth (dot-product length folded into each
    ///   checksum entry so far).
    /// * `extent` — number of elements summed per checksum entry (`m` for
    ///   column sums, `n` for row sums).
    /// * `scale` — magnitude estimate (max |checksum| observed).
    pub fn threshold<T: Scalar>(&self, k_done: usize, extent: usize, scale: T) -> T {
        let eps = T::EPSILON.to_f64();
        let work = (k_done.max(1) + extent) as f64;
        // The bound is *relative* to the observed checksum magnitude; the
        // `floor` field alone guards underflow. Clamping the magnitude to
        // 1.0 here (as an earlier version did) inflates the threshold
        // ~1000x for operands with entries ~1e-3 and masks proportionally
        // small injected errors (pinned by
        // `small_magnitude_errors_stay_above_threshold`).
        let t = self.factor * eps * work * scale.to_f64();
        T::from_f64(t.max(self.floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scales_with_k() {
        let tol = Tolerance::default();
        let t1 = tol.threshold::<f64>(100, 10, 1.0);
        let t2 = tol.threshold::<f64>(1000, 10, 1.0);
        assert!(t2 > t1);
    }

    #[test]
    fn threshold_scales_with_magnitude() {
        let tol = Tolerance::default();
        let t1 = tol.threshold::<f64>(100, 10, 1.0);
        let t2 = tol.threshold::<f64>(100, 10, 1000.0);
        assert!((t2 / t1 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn floor_applies() {
        let tol = Tolerance {
            factor: 1.0,
            floor: 0.5,
        };
        assert_eq!(tol.threshold::<f64>(1, 1, 0.0), 0.5);
    }

    #[test]
    fn far_below_injected_error_magnitudes() {
        // With the default model (additive 1e6), thresholds at realistic
        // sizes must sit orders of magnitude below the injected error.
        let tol = Tolerance::default();
        let t = tol.threshold::<f64>(20_480, 20_480, 20_480.0);
        assert!(t < 1.0, "threshold {t} too large to detect 1e6 errors");
    }

    #[test]
    fn small_magnitude_errors_stay_above_threshold() {
        // Regression for the old `scale.max(1.0)` clamp: checksums over
        // operands drawn from (-1e-3, 1e-3) have magnitude ~1e-3 * k, and
        // an additive error just above true roundoff must land above the
        // threshold. With the clamp, a k=128 problem's threshold was
        // ~128 * eps * 256 * 1.0 ≈ 7.3e-12 — masking a 1e-12-scale error
        // the relative bound (≈ 2.4e-13 at scale 0.128) flags.
        let tol = Tolerance::default();
        let (k, extent) = (128, 128);
        // Checksums of (-1e-3, 1e-3) data are signed sums, so the observed
        // max |checksum| sits near the element magnitude, not k times it.
        let scale = 1e-3;
        let t = tol.threshold::<f64>(k, extent, scale);
        let clamped = tol.factor * f64::EPSILON * (k + extent) as f64 * 1.0;
        assert!(
            t < clamped / 500.0,
            "threshold {t} still inflated (clamped bound {clamped})"
        );
        // An injected error 10x the honest roundoff bound is detectable...
        let injected = 10.0 * t;
        assert!(injected > t);
        // ...but would have been masked by the old clamp.
        assert!(injected < clamped, "regression case lost its teeth");
    }

    #[test]
    fn f32_threshold_wider() {
        let tol = Tolerance::default();
        let t64 = tol.threshold::<f64>(100, 100, 10.0).to_f64();
        let t32 = tol.threshold::<f32>(100, 100, 10.0).to_f64();
        assert!(t32 > t64);
    }
}
