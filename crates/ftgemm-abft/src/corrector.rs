//! Error location and correction from checksum discrepancies.
//!
//! After a depth panel, the verifier compares encoded vs reference checksums
//! of a column block of `C`. An error of magnitude `d` at element `(i, j)`
//! shifts `ref_row[i]` and `ref_col[j]` by exactly `d` relative to the
//! encoded values, so the discrepancy pattern locates the error and its
//! algebraic magnitude — correction is exact, not approximate.
//!
//! Supported patterns (per verification interval):
//! * any number of errors in **distinct rows and distinct columns** —
//!   greedy delta-matching pairs them;
//! * several errors sharing **one column** (or one row) — the shared-axis
//!   delta equals the sum of the per-error deltas, and the other axis
//!   resolves each error individually.
//!
//! Colliding patterns beyond that (errors forming a cycle across shared
//! rows *and* columns), and **ambiguous** patterns — several errors of
//! numerically equal magnitude in distinct rows and columns, where every
//! pairing balances the checksums but only one restores the matrix — are
//! reported as unrecoverable rather than guessed at; the caller's recovery
//! policy (e.g. panel recompute under
//! [`Recovery::RetryPanel`](crate::Recovery::RetryPanel)) takes over. This
//! fail-stop-on-ambiguity contract is pinned by the
//! `tests::equal_delta_errors_distinct_positions` test below and written up
//! in the crate-level docs ("The ambiguity fail-stop contract") and
//! `docs/ARCHITECTURE.md`. It is the same limitation classic row+column
//! ABFT has. The paper verifies every `KC` panel, so the exposure window
//! for such collisions is one panel update.

use ftgemm_core::{MatMut, Scalar};

/// One significant checksum discrepancy: `ref - enc` at `idx`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Discrepancy<T: Scalar> {
    /// Row or column index within the verified block.
    pub idx: usize,
    /// `ref − enc`: the net error mass on this line.
    pub delta: T,
}

/// Result of one verify-and-correct pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorrectionOutcome {
    /// No significant discrepancy: the panel is clean.
    Clean,
    /// Errors were located and corrected in place.
    Corrected {
        /// Number of elements repaired.
        count: usize,
    },
    /// The discrepancy pattern cannot be resolved.
    Unrecoverable {
        /// Flagged rows / columns for diagnostics.
        detail: String,
    },
}

/// Scans `enc` vs `reference` and returns significant discrepancies.
pub fn find_discrepancies<T: Scalar>(
    enc: &[T],
    reference: &[T],
    threshold: T,
) -> Vec<Discrepancy<T>> {
    debug_assert_eq!(enc.len(), reference.len());
    let mut out = Vec::new();
    for (idx, (&e, &r)) in enc.iter().zip(reference.iter()).enumerate() {
        let delta = r - e;
        if delta.abs() > threshold {
            out.push(Discrepancy { idx, delta });
        }
    }
    out
}

/// Attempts to locate and repair errors in `c_block` given row/column
/// discrepancies. `threshold` is the same scale used for detection; delta
/// matching uses a multiple of it.
pub fn correct_block<T: Scalar>(
    c_block: &mut MatMut<'_, T>,
    row_diffs: &[Discrepancy<T>],
    col_diffs: &[Discrepancy<T>],
    threshold: T,
) -> CorrectionOutcome {
    if row_diffs.is_empty() && col_diffs.is_empty() {
        return CorrectionOutcome::Clean;
    }
    // Matching tolerance: each measured delta is a difference of large
    // sums and carries roundoff proportional to the *error magnitude*
    // itself (an error of 1e7 is located with ~1e7*eps*len slack), so the
    // comparison needs a relative term on top of the detection threshold.
    let match_tol = threshold * T::from_f64(4.0);
    let rel = T::EPSILON * T::from_f64(512.0);
    let close = |a: T, b: T, slack: T| (a - b).abs() <= slack + rel * (a.abs() + b.abs());

    // One axis silent: the error mass on the other axis must itself be
    // explained. A lone-axis discrepancy can only be roundoff straddling the
    // threshold — treat as unrecoverable only if clearly significant.
    if row_diffs.is_empty() || col_diffs.is_empty() {
        let worst = row_diffs
            .iter()
            .chain(col_diffs.iter())
            .map(|d| d.delta.abs())
            .fold(T::ZERO, T::max);
        if worst <= match_tol * T::from_f64(4.0) {
            // Marginal: below a loose bound, classify as roundoff noise.
            return CorrectionOutcome::Clean;
        }
        return CorrectionOutcome::Unrecoverable {
            detail: format!(
                "one-sided discrepancy: {} rows, {} cols",
                row_diffs.len(),
                col_diffs.len()
            ),
        };
    }

    // Iterative peeling over the bipartite discrepancy pattern:
    //
    // 1. While possible, peel a (row, col) pair whose deltas agree —
    //    preferring rows with a *unique* matching column (unambiguous) —
    //    and correct that single element.
    // 2. When only one column (or one row) remains, all residual error mass
    //    lives on that line: if the per-row deltas sum to the column delta,
    //    correct each (row, col) element individually.
    //
    // This resolves any pattern where errors share at most one line per
    // group (the paper-relevant cases: independent errors, plus bursts in
    // one row or one column). Patterns forming cycles across shared rows
    // AND columns remain unrecoverable — the information-theoretic limit of
    // row+column checksums.
    let mut rows: Vec<Discrepancy<T>> = row_diffs.to_vec();
    let mut cols: Vec<Discrepancy<T>> = col_diffs.to_vec();
    let mut corrected = 0usize;

    loop {
        if rows.is_empty() && cols.is_empty() {
            return CorrectionOutcome::Corrected { count: corrected };
        }

        // Single remaining column: rows must explain it exactly.
        if cols.len() == 1 && !rows.is_empty() {
            let col = cols[0];
            let sum_rows = rows.iter().fold(T::ZERO, |acc, d| acc + d.delta);
            if close(sum_rows, col.delta, match_tol * T::from_usize(rows.len())) {
                for r in &rows {
                    let v = c_block.get(r.idx, col.idx);
                    c_block.set(r.idx, col.idx, v - r.delta);
                }
                return CorrectionOutcome::Corrected {
                    count: corrected + rows.len(),
                };
            }
        }
        // Single remaining row: symmetric.
        if rows.len() == 1 && !cols.is_empty() {
            let row = rows[0];
            let sum_cols = cols.iter().fold(T::ZERO, |acc, d| acc + d.delta);
            if close(sum_cols, row.delta, match_tol * T::from_usize(cols.len())) {
                for c in &cols {
                    let v = c_block.get(row.idx, c.idx);
                    c_block.set(row.idx, c.idx, v - c.delta);
                }
                return CorrectionOutcome::Corrected {
                    count: corrected + cols.len(),
                };
            }
        }

        // Peel one matched pair. Only rows with a *unique* matching column
        // are safe to peel: when several remaining rows and columns carry
        // (numerically) equal deltas, every assignment zeroes the checksums
        // but only one restores the matrix — guessing would be silent
        // corruption, so ambiguity is reported as unrecoverable and the
        // caller's recovery policy (panel recompute under
        // `Recovery::RetryPanel`) takes over.
        let mut pick: Option<(usize, usize)> = None;
        let mut saw_ambiguous = false;
        for (ri, r) in rows.iter().enumerate() {
            let candidates: Vec<usize> = cols
                .iter()
                .enumerate()
                .filter(|(_, c)| close(r.delta, c.delta, match_tol))
                .map(|(ci, _)| ci)
                .collect();
            match candidates.len() {
                1 => {
                    pick = Some((ri, candidates[0]));
                    break;
                }
                n if n > 1 => saw_ambiguous = true,
                _ => {}
            }
        }
        let Some((ri, ci)) = pick else {
            let kind = if saw_ambiguous {
                "ambiguous pairing (equal-magnitude deltas)"
            } else {
                "unmatched pattern"
            };
            return CorrectionOutcome::Unrecoverable {
                detail: format!(
                    "{kind}: {} row / {} col discrepancies remain (of {}/{})",
                    rows.len(),
                    cols.len(),
                    row_diffs.len(),
                    col_diffs.len()
                ),
            };
        };
        let r = rows.swap_remove(ri);
        let c = cols.swap_remove(ci);
        let v = c_block.get(r.idx, c.idx);
        c_block.set(r.idx, c.idx, v - r.delta);
        corrected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::Matrix;

    fn sums(c: &Matrix<f64>) -> (Vec<f64>, Vec<f64>) {
        let (m, n) = (c.nrows(), c.ncols());
        let mut row = vec![0.0; m];
        let mut col = vec![0.0; n];
        for j in 0..n {
            for i in 0..m {
                row[i] += c.get(i, j);
                col[j] += c.get(i, j);
            }
        }
        (row, col)
    }

    /// Builds enc from the clean matrix, corrupts `errors`, derives ref from
    /// the corrupted matrix, runs the corrector, and checks restoration.
    fn corrupt_and_correct(errors: &[(usize, usize, f64)]) -> CorrectionOutcome {
        let clean = Matrix::<f64>::random(16, 12, 99);
        let (enc_row, enc_col) = sums(&clean);
        let mut dirty = clean.clone();
        for &(i, j, d) in errors {
            dirty.set(i, j, dirty.get(i, j) + d);
        }
        let (ref_row, ref_col) = sums(&dirty);
        let th = 1e-9;
        let rd = find_discrepancies(&enc_row, &ref_row, th);
        let cd = find_discrepancies(&enc_col, &ref_col, th);
        let out = correct_block(&mut dirty.as_mut(), &rd, &cd, th);
        if matches!(
            out,
            CorrectionOutcome::Corrected { .. } | CorrectionOutcome::Clean
        ) {
            assert!(
                clean.max_abs_diff(&dirty) < 1e-9,
                "matrix not restored for {errors:?}"
            );
        }
        out
    }

    #[test]
    fn no_errors_clean() {
        assert_eq!(corrupt_and_correct(&[]), CorrectionOutcome::Clean);
    }

    #[test]
    fn single_error_corrected_exactly() {
        assert_eq!(
            corrupt_and_correct(&[(3, 7, 1e6)]),
            CorrectionOutcome::Corrected { count: 1 }
        );
    }

    #[test]
    fn single_negative_error() {
        assert_eq!(
            corrupt_and_correct(&[(0, 0, -42.5)]),
            CorrectionOutcome::Corrected { count: 1 }
        );
    }

    #[test]
    fn multiple_distinct_errors() {
        assert_eq!(
            corrupt_and_correct(&[(1, 2, 100.0), (5, 9, -300.0), (14, 0, 777.0)]),
            CorrectionOutcome::Corrected { count: 3 }
        );
    }

    #[test]
    fn two_errors_same_column() {
        assert_eq!(
            corrupt_and_correct(&[(2, 4, 50.0), (9, 4, -20.0)]),
            CorrectionOutcome::Corrected { count: 2 }
        );
    }

    #[test]
    fn two_errors_same_row() {
        assert_eq!(
            corrupt_and_correct(&[(6, 1, 10.0), (6, 10, 25.0)]),
            CorrectionOutcome::Corrected { count: 2 }
        );
    }

    #[test]
    fn colliding_cycle_is_unrecoverable() {
        // Errors at (1,2), (1,5), (8,2): rows {1,8}, cols {2,5} with deltas
        // that match neither the single-row nor single-column cases nor a
        // 1-1 pairing.
        let out = corrupt_and_correct(&[(1, 2, 10.0), (1, 5, 20.0), (8, 2, 40.0)]);
        assert!(
            matches!(out, CorrectionOutcome::Unrecoverable { .. }),
            "got {out:?}"
        );
    }

    #[test]
    fn find_discrepancies_threshold() {
        let enc = [1.0, 2.0, 3.0];
        let r = [1.0 + 1e-12, 2.5, 3.0];
        let d = find_discrepancies(&enc, &r, 1e-6);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].idx, 1);
        assert!((d[0].delta - 0.5).abs() < 1e-12);
    }

    #[test]
    fn near_threshold_noise_classified_clean() {
        // One-sided marginal discrepancy (just above detect threshold on one
        // axis only) must be treated as roundoff, not unrecoverable.
        let clean = Matrix::<f64>::random(8, 8, 5);
        let (_enc_row, _enc_col) = sums(&clean);
        let mut dirty = clean.clone();
        let th: f64 = 1.0; // huge threshold; make a tiny one-sided blip
        let rd = vec![Discrepancy { idx: 2, delta: 1.5 }];
        let cd: Vec<Discrepancy<f64>> = vec![];
        let out = correct_block(&mut dirty.as_mut(), &rd, &cd, th);
        assert_eq!(out, CorrectionOutcome::Clean);
    }

    #[test]
    fn one_sided_large_is_unrecoverable() {
        let clean = Matrix::<f64>::random(8, 8, 5);
        let mut dirty = clean.clone();
        let th: f64 = 1e-9;
        let rd = vec![Discrepancy { idx: 2, delta: 1e6 }];
        let cd: Vec<Discrepancy<f64>> = vec![];
        let out = correct_block(&mut dirty.as_mut(), &rd, &cd, th);
        assert!(matches!(out, CorrectionOutcome::Unrecoverable { .. }));
    }

    #[test]
    fn equal_delta_errors_distinct_positions() {
        // Two identical deltas in distinct rows/cols: both pairings balance
        // the checksums but only one restores the matrix, so any guess is a
        // coin flip on silent corruption. The corrector must refuse
        // (fail-stop) and let the caller's recovery policy recompute.
        let clean = Matrix::<f64>::random(16, 12, 7);
        let (enc_row, enc_col) = sums(&clean);
        let mut dirty = clean.clone();
        // Same delta at (2,3) and (9,8).
        dirty.set(2, 3, dirty.get(2, 3) + 500.0);
        dirty.set(9, 8, dirty.get(9, 8) + 500.0);
        let (ref_row, ref_col) = sums(&dirty);
        let th = 1e-9;
        let rd = find_discrepancies(&enc_row, &ref_row, th);
        let cd = find_discrepancies(&enc_col, &ref_col, th);
        let out = correct_block(&mut dirty.as_mut(), &rd, &cd, th);
        match out {
            CorrectionOutcome::Unrecoverable { detail } => {
                assert!(detail.contains("ambiguous"), "detail: {detail}");
            }
            other => panic!("ambiguous pattern must fail-stop, got {other:?}"),
        }
    }

    #[test]
    fn equal_deltas_sharing_one_line_still_resolved() {
        // Equal magnitudes are only ambiguous across distinct rows AND
        // columns; two equal errors in the same column resolve through the
        // single-column sum rule and must still be corrected.
        assert_eq!(
            corrupt_and_correct(&[(2, 4, 50.0), (9, 4, 50.0)]),
            CorrectionOutcome::Corrected { count: 2 }
        );
    }

    #[test]
    fn distinct_deltas_still_corrected_with_equal_pair_present() {
        // A mixed pattern: one ambiguous-free error plus a unique-magnitude
        // pair must peel fine (unique matches are found first).
        assert_eq!(
            corrupt_and_correct(&[(1, 2, 100.0), (5, 9, -300.0)]),
            CorrectionOutcome::Corrected { count: 2 }
        );
    }
}
