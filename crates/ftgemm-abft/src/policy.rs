//! The workspace-wide fault-tolerance policy vocabulary.
//!
//! [`FtPolicy`] is the *one* knob callers use to say how much ABFT
//! protection a GEMM buys, shared by every surface of the workspace: the
//! one-shot entry points, the `GemmOp`/`GemmPlan` builder API in the facade
//! crate, and the serving layer's per-request configuration. Internally each
//! driver resolves the policy into a full [`FtConfig`] (tolerance model,
//! fusion switches, recovery budget).

use crate::{FtConfig, Recovery};
use ftgemm_faults::FaultInjector;

/// How much ABFT protection one GEMM (or one serving request) buys.
///
/// The policy is resolved to an [`FtConfig`] at dispatch time (cloning a
/// config is cheap — the only non-trivial member, the injector, is
/// `Arc`-backed):
///
/// * [`Off`](FtPolicy::Off) — plain GEMM, no checksum work at all.
/// * [`Detect`](FtPolicy::Detect) — fused checksums verified after every
///   depth panel; resolvable discrepancy patterns are corrected in place,
///   unresolvable ones fail the call ([`Recovery::ReportOnly`]).
/// * [`DetectCorrect`](FtPolicy::DetectCorrect) — [`Detect`](FtPolicy::Detect)
///   plus panel checkpointing: patterns correction cannot resolve trigger a
///   bounded panel recompute ([`Recovery::RetryPanel`]) before the call is
///   failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FtPolicy {
    /// No fault tolerance: the plain high-performance driver.
    Off,
    /// Verify + in-place correction; unresolvable patterns fail the call.
    Detect,
    /// Verify + correction + panel-level recompute of unresolvable patterns.
    #[default]
    DetectCorrect,
}

/// Recompute attempts per panel under [`FtPolicy::DetectCorrect`].
const DETECT_CORRECT_RETRIES: u32 = 2;

impl FtPolicy {
    /// Resolves the policy (plus an optional per-call injector, used by
    /// fault-injection campaigns and tests) into a driver configuration.
    /// `None` means "run the unprotected driver".
    pub fn to_config(self, injector: Option<FaultInjector>) -> Option<FtConfig> {
        let recovery = match self {
            FtPolicy::Off => return None,
            FtPolicy::Detect => Recovery::ReportOnly,
            FtPolicy::DetectCorrect => Recovery::RetryPanel {
                max_retries: DETECT_CORRECT_RETRIES,
            },
        };
        Some(FtConfig {
            recovery,
            injector,
            ..FtConfig::default()
        })
    }

    /// True when the policy runs the fused-ABFT driver.
    pub fn is_protected(self) -> bool {
        !matches!(self, FtPolicy::Off)
    }

    /// Composes the policy with a *floor*: the stronger of the two.
    ///
    /// This is how the serving layer's error-aware monitor escalates a
    /// node — the node's floor is applied on top of each request's own
    /// policy and can only ever *raise* protection
    /// (`Off < Detect < DetectCorrect`), never lower it: a request that
    /// asked for `DetectCorrect` keeps it on a clean node whose floor is
    /// `Off`.
    #[must_use]
    pub fn at_least(self, floor: FtPolicy) -> FtPolicy {
        if floor.strength() > self.strength() {
            floor
        } else {
            self
        }
    }

    /// Total order of protection strength used by [`FtPolicy::at_least`].
    fn strength(self) -> u8 {
        match self {
            FtPolicy::Off => 0,
            FtPolicy::Detect => 1,
            FtPolicy::DetectCorrect => 2,
        }
    }
}

/// The configuration the fused-ABFT driver runs under *if* the policy is
/// protected. [`FtPolicy::Off`] yields the default config, but routing to
/// the unprotected driver is the dispatcher's job — use
/// [`FtPolicy::to_config`] when `Off` must select a different code path.
impl From<FtPolicy> for FtConfig {
    fn from(policy: FtPolicy) -> FtConfig {
        policy.to_config(None).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_maps_to_none() {
        assert!(FtPolicy::Off.to_config(None).is_none());
        assert!(!FtPolicy::Off.is_protected());
    }

    #[test]
    fn detect_reports_only() {
        let cfg = FtPolicy::Detect.to_config(None).unwrap();
        assert_eq!(cfg.recovery, Recovery::ReportOnly);
        assert!(cfg.injector.is_none());
    }

    #[test]
    fn detect_correct_retries_panels() {
        let cfg = FtPolicy::DetectCorrect.to_config(None).unwrap();
        assert_eq!(
            cfg.recovery,
            Recovery::RetryPanel {
                max_retries: DETECT_CORRECT_RETRIES
            }
        );
    }

    #[test]
    fn injector_is_threaded_through() {
        let inj = FaultInjector::counted(1, 1);
        let cfg = FtPolicy::DetectCorrect.to_config(Some(inj)).unwrap();
        assert!(cfg.injector.is_some());
    }

    #[test]
    fn default_is_detect_correct() {
        assert_eq!(FtPolicy::default(), FtPolicy::DetectCorrect);
    }

    #[test]
    fn at_least_takes_the_stronger_policy() {
        use FtPolicy::{Detect, DetectCorrect, Off};
        // The floor raises weaker policies...
        assert_eq!(Off.at_least(Detect), Detect);
        assert_eq!(Off.at_least(DetectCorrect), DetectCorrect);
        assert_eq!(Detect.at_least(DetectCorrect), DetectCorrect);
        // ...and never lowers stronger ones.
        assert_eq!(DetectCorrect.at_least(Off), DetectCorrect);
        assert_eq!(DetectCorrect.at_least(Detect), DetectCorrect);
        assert_eq!(Detect.at_least(Off), Detect);
        // Identity on equal strength.
        for p in [Off, Detect, DetectCorrect] {
            assert_eq!(p.at_least(p), p);
        }
    }

    #[test]
    fn from_policy_matches_to_config() {
        let via_from: FtConfig = FtPolicy::Detect.into();
        let via_to = FtPolicy::Detect.to_config(None).unwrap();
        assert_eq!(via_from.recovery, via_to.recovery);
        let off: FtConfig = FtPolicy::Off.into();
        assert_eq!(off.recovery, FtConfig::default().recovery);
    }
}
