//! # ftgemm-abft
//!
//! The fused ABFT (algorithm-based fault tolerance) layer of FT-GEMM — the
//! paper's core contribution (§2.2).
//!
//! ## The scheme
//!
//! For `C = alpha*A*B + beta*C0` the checksum identities (Huang & Abraham
//! \[1984\], specialized to full row+column checksum vectors) are
//!
//! ```text
//! row_sums(C) = beta*row_sums(C0) + alpha * A * (B e)        (paper's C_c)
//! col_sums(C) = beta*col_sums(C0) + alpha * (e^T A) * B      (paper's C_r)
//! ```
//!
//! The driver maintains **encoded** checksums (`enc_*`, predicted from the
//! inputs) and **reference** checksums (`ref_*`, read back from the computed
//! `C`), and compares them after every depth panel (`pc` iteration — the
//! paper's "p-loop: verify"). An error in the computation shows up as a
//! matching discrepancy in one row and one column; its location and exact
//! algebraic magnitude follow, so it is corrected in place.
//!
//! ## Fusion — why this is fast on AVX-512 machines
//!
//! Naively the four checksum passes cost O(n^2) *extra* memory traffic,
//! which no longer amortizes against O(n^3) compute on wide-SIMD parts
//! (~15% overhead per the paper). FT-GEMM fuses each pass into memory
//! traffic GEMM already performs:
//!
//! * `enc_*` initialization rides on the `C *= beta` scaling pass,
//! * `B e` (B_c) and the `enc_col` GEMV ride on packing `B~` (every loaded
//!   `B` element is used three times),
//! * the `enc_row` GEMV rides on packing `A~`,
//! * `ref_*` are accumulated at register level inside the micro-kernel.
//!
//! The overhead becomes purely computational: ~1-4% (paper Fig. 2a/2b).
//!
//! [`FusionConfig`] lets each fusion point be disabled, which re-creates the
//! "traditional" unfused ABFT baseline for the ablation experiments (T1/A1
//! in DESIGN.md).
//!
//! ## The ambiguity fail-stop contract
//!
//! Row+column checksums carry enough information to locate and repair most
//! error patterns, but not all. Two patterns are **information-theoretically
//! unresolvable** within one verification interval:
//!
//! * errors forming a cycle across shared rows *and* columns, and
//! * **equal-magnitude concurrent errors in distinct rows and distinct
//!   columns** — every pairing of row deltas with column deltas balances
//!   the checksums, but only one pairing restores the matrix, so picking
//!   one is a coin flip on silent corruption.
//!
//! This crate's contract is **fail-stop, never guess**: the corrector
//! reports such patterns as [`CorrectionOutcome::Unrecoverable`] (the
//! equal-magnitude case is pinned by
//! `corrector::tests::equal_delta_errors_distinct_positions`), and the
//! driver then applies the caller's [`Recovery`] policy — under
//! [`Recovery::RetryPanel`] (the serving layer's `DetectCorrect`) the
//! affected panel is rolled back to its checkpoint and recomputed instead.
//! Equal magnitudes sharing a single row or column are *not* ambiguous
//! (the shared-axis sum rule resolves them) and are still corrected. The
//! paper verifies every `KC`-depth panel, so the exposure window for a
//! colliding pattern is one panel update. See `docs/ARCHITECTURE.md` for
//! the system-level view.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod checksum;
pub mod corrector;
pub mod ft_gemm;
pub mod policy;
pub mod tolerance;

pub use corrector::{CorrectionOutcome, Discrepancy};
pub use ft_gemm::{ft_gemm, ft_gemm_with_ctx, FtGemmContext};
pub use policy::FtPolicy;
pub use tolerance::Tolerance;

use ftgemm_core::CoreError;

/// Configuration for fault-tolerant GEMM.
#[derive(Debug, Clone)]
pub struct FtConfig {
    /// Roundoff tolerance model for checksum verification.
    pub tolerance: Tolerance,
    /// Which checksum operations are fused into existing passes. All-on is
    /// the paper's FT-GEMM; all-off is the traditional ABFT baseline.
    pub fusion: FusionConfig,
    /// Optional fault injector (reproduces §3.2's source-level injection).
    pub injector: Option<ftgemm_faults::FaultInjector>,
    /// What to do when a verification interval's discrepancy pattern cannot
    /// be resolved by checksum correction.
    pub recovery: Recovery,
}

/// Recovery policy for unrecoverable checksum patterns.
///
/// Row+column checksums cannot locate errors that form a cycle across
/// shared rows *and* columns within one verification interval. The serial
/// driver can optionally checkpoint each column block of `C` (plus the
/// encoded checksums) at panel granularity and recompute the panel from
/// scratch when that happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Return [`FtError::Unrecoverable`]; the caller decides (default — no
    /// checkpoint memory or traffic is spent).
    ReportOnly,
    /// Keep an `O(m * NC)` checkpoint per column block and recompute a
    /// failing panel up to `max_retries` times before giving up.
    RetryPanel {
        /// Recompute attempts per panel before reporting failure.
        max_retries: u32,
    },
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            tolerance: Tolerance::default(),
            fusion: FusionConfig::FUSED,
            injector: None,
            recovery: Recovery::ReportOnly,
        }
    }
}

impl FtConfig {
    /// Paper configuration with a fault injector attached.
    pub fn with_injector(injector: ftgemm_faults::FaultInjector) -> Self {
        FtConfig {
            injector: Some(injector),
            ..Default::default()
        }
    }

    /// Traditional (unfused) ABFT configuration for the ablation baseline.
    pub fn unfused() -> Self {
        FtConfig {
            fusion: FusionConfig::UNFUSED,
            ..Default::default()
        }
    }
}

/// Per-fusion-point switches (ablation experiment A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionConfig {
    /// Fuse `enc_*` initialization with the `C *= beta` pass.
    pub fuse_c_scale: bool,
    /// Fuse `B_c` + `enc_col` encoding with `B~` packing.
    pub fuse_b_pack: bool,
    /// Fuse `enc_row` encoding with `A~` packing.
    pub fuse_a_pack: bool,
    /// Accumulate `ref_*` at register level in the micro-kernel (vs a
    /// separate read-back pass over the updated `C` block).
    pub fuse_kernel_refs: bool,
}

impl FusionConfig {
    /// Everything fused — the paper's FT-GEMM.
    pub const FUSED: FusionConfig = FusionConfig {
        fuse_c_scale: true,
        fuse_b_pack: true,
        fuse_a_pack: true,
        fuse_kernel_refs: true,
    };
    /// Nothing fused — traditional ABFT with separate O(n^2) passes.
    pub const UNFUSED: FusionConfig = FusionConfig {
        fuse_c_scale: false,
        fuse_b_pack: false,
        fuse_a_pack: false,
        fuse_kernel_refs: false,
    };
}

/// Outcome statistics of one fault-tolerant GEMM call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtReport {
    /// Verification passes executed (one per depth panel per column block,
    /// including retried panels).
    pub verifications: usize,
    /// Checksum discrepancies flagged as real errors.
    pub detected: usize,
    /// Elements corrected in place.
    pub corrected: usize,
    /// Errors injected by the attached injector (0 without one).
    pub injected: usize,
    /// Panels rolled back and recomputed under [`Recovery::RetryPanel`].
    pub retried_panels: usize,
}

impl FtReport {
    /// Accumulates another report's counters into this one (used by the
    /// parallel driver to merge per-thread reports).
    pub fn absorb(&mut self, other: FtReport) {
        self.verifications += other.verifications;
        self.detected += other.detected;
        self.corrected += other.corrected;
        self.injected += other.injected;
        self.retried_panels += other.retried_panels;
    }

    /// Merges an iterator of reports into one (batch drivers and the serving
    /// layer aggregate per-request reports this way).
    pub fn merged(reports: impl IntoIterator<Item = FtReport>) -> FtReport {
        reports.into_iter().sum()
    }

    /// Adds this report's counters to the process-wide `ftgemm_abft_*_total`
    /// metric families.
    ///
    /// The drivers call this once per GEMM at exit, so callers composing
    /// reports via [`FtReport::absorb`]/[`FtReport::merged`] must not call it
    /// again on the merged result — that would double count.
    pub fn publish_global(&self) {
        ftgemm_obs::global_counter!(
            "ftgemm_abft_verifications_total",
            "Checksum verification passes across all fault-tolerant GEMMs."
        )
        .add(self.verifications as u64);
        ftgemm_obs::global_counter!(
            "ftgemm_abft_detected_total",
            "Checksum discrepancies flagged as real errors."
        )
        .add(self.detected as u64);
        ftgemm_obs::global_counter!(
            "ftgemm_abft_corrected_total",
            "Elements corrected in place after checksum detection."
        )
        .add(self.corrected as u64);
        ftgemm_obs::global_counter!(
            "ftgemm_abft_injected_total",
            "Errors injected by attached fault injectors."
        )
        .add(self.injected as u64);
        ftgemm_obs::global_counter!(
            "ftgemm_abft_retried_panels_total",
            "Panels rolled back and recomputed under RetryPanel recovery."
        )
        .add(self.retried_panels as u64);
    }
}

impl std::ops::AddAssign for FtReport {
    fn add_assign(&mut self, other: FtReport) {
        self.absorb(other);
    }
}

impl std::ops::Add for FtReport {
    type Output = FtReport;
    fn add(mut self, other: FtReport) -> FtReport {
        self += other;
        self
    }
}

impl std::iter::Sum for FtReport {
    fn sum<I: Iterator<Item = FtReport>>(iter: I) -> FtReport {
        iter.fold(FtReport::default(), |acc, r| acc + r)
    }
}

/// Errors from fault-tolerant GEMM.
#[derive(Debug, Clone, PartialEq)]
pub enum FtError {
    /// Underlying GEMM/substrate error.
    Core(CoreError),
    /// Checksum verification failed in a pattern the corrector cannot
    /// resolve (e.g. colliding errors in the same row *and* column within
    /// one panel).
    Unrecoverable {
        /// Column-block start where verification failed.
        jc: usize,
        /// Depth-panel start where verification failed.
        pc: usize,
        /// Unmatched row/column discrepancy counts.
        detail: String,
    },
}

impl std::fmt::Display for FtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtError::Core(e) => write!(f, "core error: {e}"),
            FtError::Unrecoverable { jc, pc, detail } => {
                write!(
                    f,
                    "unrecoverable checksum failure at block (jc={jc}, pc={pc}): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for FtError {}

impl From<CoreError> for FtError {
    fn from(e: CoreError) -> Self {
        FtError::Core(e)
    }
}

/// Result alias for fault-tolerant operations.
pub type FtResult<T> = std::result::Result<T, FtError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fused() {
        let c = FtConfig::default();
        assert_eq!(c.fusion, FusionConfig::FUSED);
        assert!(c.injector.is_none());
    }

    #[test]
    fn unfused_config() {
        let c = FtConfig::unfused();
        assert!(!c.fusion.fuse_b_pack);
        assert!(!c.fusion.fuse_kernel_refs);
    }

    #[test]
    fn report_absorb() {
        let mut a = FtReport {
            verifications: 1,
            detected: 2,
            corrected: 2,
            injected: 3,
            retried_panels: 0,
        };
        a.absorb(FtReport {
            verifications: 10,
            detected: 0,
            corrected: 1,
            injected: 0,
            retried_panels: 2,
        });
        assert_eq!(a.verifications, 11);
        assert_eq!(a.corrected, 3);
    }

    #[test]
    fn report_merge_and_sum() {
        let r1 = FtReport {
            verifications: 2,
            detected: 1,
            corrected: 1,
            injected: 1,
            retried_panels: 0,
        };
        let r2 = FtReport {
            verifications: 3,
            detected: 0,
            corrected: 0,
            injected: 2,
            retried_panels: 1,
        };
        let merged = FtReport::merged([r1, r2]);
        assert_eq!(merged.verifications, 5);
        assert_eq!(merged.injected, 3);
        assert_eq!(merged.retried_panels, 1);
        let mut acc = r1;
        acc += r2;
        assert_eq!(acc, merged);
        assert_eq!([r1, r2].into_iter().sum::<FtReport>(), merged);
    }

    #[test]
    fn config_clone_shares_injector_state() {
        // The serving layer clones FtConfig per request; the injector inside
        // is Arc-backed, so clones must observe the same stats counters.
        let inj = ftgemm_faults::FaultInjector::counted(1, 1);
        let cfg = FtConfig::with_injector(inj.clone());
        let cloned = cfg.clone();
        let mut s = cloned.injector.as_ref().unwrap().stream(0, 1);
        while s.poll().is_none() && s.visited() < 8 {}
        assert_eq!(inj.stats().injected(), 1);
    }

    #[test]
    fn error_display() {
        let e = FtError::Unrecoverable {
            jc: 0,
            pc: 128,
            detail: "2 rows / 1 col".into(),
        };
        assert!(e.to_string().contains("pc=128"));
    }
}
