//! Plain (non-FT) parallel GEMM — the paper's threaded baseline
//! ("FT-GEMM: Ori", parallel curves of Fig. 2b).

use crate::ctx::ParGemmContext;
use crate::shared::SendPtr;
use crate::workspace::ParFtWorkspace;
use ftgemm_core::gemm::validate_shapes;
use ftgemm_core::macro_kernel::macro_kernel;
use ftgemm_core::{pack, MatMut, MatRef, Result, Scalar};

/// Parallel `C = alpha*A*B + beta*C` with a fresh workspace.
///
/// Work is M-partitioned; the packed `B~` is shared and packed
/// cooperatively along N; each thread packs its own `A~` (paper §2.3).
pub fn par_gemm<T: Scalar>(
    ctx: &ParGemmContext<T>,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> Result<()> {
    validate_shapes(a, b, c)?;
    ctx.params.validate()?;
    let mut ws = ParFtWorkspace::for_plain(ctx);
    par_gemm_with_ws(ctx, &mut ws, alpha, a, b, beta, c)
}

/// Parallel plain GEMM reusing a caller-held [`ParFtWorkspace`] (only the
/// packed `B~` and per-thread `A~` slots are touched); the hot path
/// performs no heap allocation. Taken `&mut` so concurrent calls cannot
/// alias one workspace from safe code (see
/// [`par_ft_gemm_with_ws`](crate::par_ft_gemm_with_ws)).
///
/// # Panics
/// If `ws` was built for different blocking parameters or a different
/// thread count (see [`ParFtWorkspace::fits_plain`]; a slim
/// [`ParFtWorkspace::for_plain`] workspace suffices here).
pub fn par_gemm_with_ws<T: Scalar>(
    ctx: &ParGemmContext<T>,
    ws: &mut ParFtWorkspace<T>,
    alpha: T,
    a: &MatRef<'_, T>,
    b: &MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
) -> Result<()> {
    let (m, n, k) = validate_shapes(a, b, c)?;
    let p = ctx.params;
    p.validate()?;

    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 || alpha == T::ZERO {
        ftgemm_core::gemm::scale_c(c, beta);
        return Ok(());
    }

    let kernel = ctx.kernel;
    let b_len = p.packed_b_len();
    assert!(
        ws.fits_plain(ctx),
        "workspace too small for {m}x{n}x{k} on {} threads",
        ctx.nthreads()
    );
    // Shared reborrow for the region closure; exclusivity came from `&mut`.
    let ws: &ParFtWorkspace<T> = ws;
    let btilde = &ws.btilde;

    // Raw C access: threads derive disjoint row-slice views.
    let c_ptr = SendPtr(c.as_mut_ptr());
    let ldc = c.ld();

    ctx.pool().run(|w| {
        // Capture the SendPtr wrapper itself, not its raw field (auto-capture
        // of `c_ptr.0` would capture the non-Send raw pointer).
        #[allow(clippy::redundant_locals)]
        let c_ptr = c_ptr;
        let rows = w.partition(m, p.mr);
        let (ms, mlen) = (rows.start, rows.len());

        // Thread-private A~ buffer from the workspace (paper: "each thread
        // requests a private memory buffer for A~").
        let mut atilde = ws.atilde[w.tid].lock();

        // beta scaling of the thread's row slice.
        if beta != T::ONE && mlen > 0 {
            // SAFETY: row slices are disjoint across threads.
            let mut c_slice = unsafe { MatMut::<T>::from_raw_parts(c_ptr.0.add(ms), mlen, n, ldc) };
            ftgemm_core::gemm::scale_c(&mut c_slice, beta);
        }
        w.barrier();

        let mut jc = 0;
        while jc < n {
            let nc_eff = p.nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc_eff = p.kc.min(k - pc);

                // Cooperative packing of B~ along N (NR-aligned chunks so
                // whole micro-panels stay within one thread).
                let cols = w.partition(nc_eff, p.nr);
                if !cols.is_empty() {
                    let b_block = b.submatrix(pc, jc + cols.start, kc_eff, cols.len());
                    // Panel q starts at offset q*nr*kc_eff in packed layout.
                    let off = (cols.start / p.nr) * p.nr * kc_eff;
                    let len = cols.len().div_ceil(p.nr) * p.nr * kc_eff;
                    // SAFETY: NR-aligned column chunks map to disjoint
                    // packed slabs.
                    let out = unsafe { btilde.slice_mut(off..off + len) };
                    pack::pack_b(&b_block, p.nr, out);
                }
                w.barrier();

                // Compute on the thread's own rows.
                if mlen > 0 {
                    // SAFETY: packing epoch ended at the barrier; this epoch
                    // only reads btilde.
                    let b_packed = unsafe { btilde.slice(0..b_len) };
                    let mut ic = 0;
                    while ic < mlen {
                        let mc_eff = p.mc.min(mlen - ic);
                        let a_block = a.submatrix(ms + ic, pc, mc_eff, kc_eff);
                        pack::pack_a(&a_block, alpha, p.mr, atilde.as_mut_slice());
                        // SAFETY: disjoint row slice of C.
                        let mut c_block = unsafe {
                            MatMut::<T>::from_raw_parts(
                                c_ptr.0.add(ms + ic + jc * ldc),
                                mc_eff,
                                nc_eff,
                                ldc,
                            )
                        };
                        macro_kernel(
                            &kernel,
                            kc_eff,
                            atilde.as_slice(),
                            b_packed,
                            &mut c_block,
                            None,
                        );
                        ic += p.mc;
                    }
                }
                // B~ must not be overwritten while any thread still reads it.
                w.barrier();
                pc += p.kc;
            }
            jc += p.nc;
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_core::reference::naive_gemm;
    use ftgemm_core::{IsaLevel, Matrix};

    fn check(threads: usize, m: usize, n: usize, k: usize, alpha: f64, beta: f64) {
        let ctx = ParGemmContext::<f64>::with_threads(threads);
        let a = Matrix::<f64>::random(m, k, 81);
        let b = Matrix::<f64>::random(k, n, 82);
        let mut c = Matrix::<f64>::random(m, n, 83);
        let mut c_ref = c.clone();
        par_gemm(&ctx, alpha, &a.as_ref(), &b.as_ref(), beta, &mut c.as_mut()).unwrap();
        naive_gemm(alpha, &a.as_ref(), &b.as_ref(), beta, &mut c_ref.as_mut());
        let d = c.rel_max_diff(&c_ref);
        assert!(d < 1e-10, "diff {d} (t={threads}, {m}x{n}x{k})");
    }

    #[test]
    fn matches_reference_various_threads() {
        for threads in [1, 2, 3, 8] {
            check(threads, 64, 64, 64, 1.0, 1.0);
            check(threads, 130, 70, 50, 1.0, 0.0);
        }
    }

    #[test]
    fn ragged_sizes() {
        check(4, 17, 13, 9, 1.0, 1.0);
        check(4, 257, 129, 65, -0.5, 2.0);
        check(3, 1, 100, 100, 1.0, 1.0);
        check(3, 100, 1, 100, 1.0, 1.0);
    }

    #[test]
    fn more_threads_than_rows() {
        check(8, 5, 40, 30, 1.0, 1.0);
    }

    #[test]
    fn zero_k_scales_only() {
        let ctx = ParGemmContext::<f64>::with_threads(2);
        let a = Matrix::<f64>::zeros(4, 0);
        let b = Matrix::<f64>::zeros(0, 4);
        let mut c = Matrix::<f64>::filled(4, 4, 2.0);
        par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.5, &mut c.as_mut()).unwrap();
        assert!(c.as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn f32_parallel() {
        let ctx = ParGemmContext::<f32>::with_threads(4);
        let a = Matrix::<f32>::random(96, 64, 1);
        let b = Matrix::<f32>::random(64, 80, 2);
        let mut c = Matrix::<f32>::zeros(96, 80);
        let mut c_ref = c.clone();
        par_gemm(&ctx, 1.0f32, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0f32, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn portable_isa_parallel() {
        let ctx = ParGemmContext::<f64>::with_threads_and_isa(4, IsaLevel::Portable);
        let a = Matrix::<f64>::random(70, 60, 3);
        let b = Matrix::<f64>::random(60, 50, 4);
        let mut c = Matrix::<f64>::zeros(70, 50);
        let mut c_ref = c.clone();
        par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
        naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
        assert!(c.rel_max_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn context_reuse() {
        let ctx = ParGemmContext::<f64>::with_threads(4);
        for s in [32usize, 100, 64] {
            let a = Matrix::<f64>::random(s, s, s as u64);
            let b = Matrix::<f64>::random(s, s, s as u64 + 9);
            let mut c = Matrix::<f64>::zeros(s, s);
            let mut c_ref = Matrix::<f64>::zeros(s, s);
            par_gemm(&ctx, 1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c.as_mut()).unwrap();
            naive_gemm(1.0, &a.as_ref(), &b.as_ref(), 0.0, &mut c_ref.as_mut());
            assert!(c.rel_max_diff(&c_ref) < 1e-10, "size {s}");
        }
    }
}
