//! Shared mutable vectors with caller-proved disjoint access.
//!
//! Inside a parallel region, several structures are written by multiple
//! threads at provably disjoint index ranges (the shared packed `B~`, the
//! `enc_row` vector partitioned by row slice, `enc_col` partitioned by
//! packing chunk). `SharedVec` is the thin unsafe cell that makes this
//! explicit: every mutable access names the range it claims.

use ftgemm_core::AlignedVec;
use std::cell::UnsafeCell;
use std::ops::Range;

/// A 64-byte-aligned shared vector written concurrently at disjoint ranges.
#[derive(Debug)]
pub struct SharedVec<T: Copy> {
    data: UnsafeCell<AlignedVec<T>>,
    len: usize,
}

// SAFETY: all mutable access goes through `slice_mut`, whose contract
// requires disjoint ranges across threads; reads happen after barriers.
unsafe impl<T: Copy + Send> Send for SharedVec<T> {}
unsafe impl<T: Copy + Send + Sync> Sync for SharedVec<T> {}

impl<T: Copy + Default> SharedVec<T> {
    /// Zero-initialized shared vector of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        SharedVec {
            data: UnsafeCell::new(AlignedVec::zeroed(len).expect("shared buffer allocation")),
            len,
        }
    }

    /// Length in elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to `range`.
    ///
    /// # Safety
    /// While the returned slice is live, no other thread may access any
    /// overlapping range (mutably or immutably). Region barriers delimit
    /// the access epochs.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        assert!(range.end <= self.len, "SharedVec range out of bounds");
        // SAFETY: caller contract (disjoint ranges per epoch).
        unsafe {
            let base = (*self.data.get()).as_mut_ptr();
            std::slice::from_raw_parts_mut(base.add(range.start), range.len())
        }
    }

    /// Shared read of `range`.
    ///
    /// # Safety
    /// No thread may hold an overlapping mutable slice (reads belong to a
    /// post-barrier epoch).
    pub unsafe fn slice(&self, range: Range<usize>) -> &[T] {
        assert!(range.end <= self.len, "SharedVec range out of bounds");
        // SAFETY: caller contract.
        unsafe {
            let base = (*self.data.get()).as_ptr();
            std::slice::from_raw_parts(base.add(range.start), range.len())
        }
    }

    /// Raw base pointer (for building matrix views over the buffer).
    pub fn as_ptr(&self) -> *mut T {
        // SAFETY: pointer extraction only; dereferencing is governed by the
        // slice contracts.
        unsafe { (*self.data.get()).as_mut_ptr() }
    }
}

/// A raw pointer that region closures may capture and share.
///
/// The parallel drivers hand stack pointers (the output matrix, batch item
/// arrays) to pool closures that must be `Send + Sync`; this wrapper is the
/// single place that unsafe claim lives.
///
/// # Safety contract (caller-proved, per use site)
/// Dereferences must be restricted to disjoint regions per thread — row
/// slices, uniquely handed-out indices, or exclusive post-barrier epochs —
/// all within the lifetime of the pointee (guaranteed by the region's
/// completion barrier).
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// Manual Copy/Clone: the derive would add a spurious `T: Copy` bound, and
// batch items are not `Copy`.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: see the struct-level contract; every dereference site carries its
// own disjointness argument.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use ftgemm_pool::ThreadPool;

    #[test]
    fn zeroed_and_len() {
        let v = SharedVec::<f64>::zeroed(100);
        assert_eq!(v.len(), 100);
        // SAFETY: single-threaded access.
        assert!(unsafe { v.slice(0..100) }.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn disjoint_parallel_writes() {
        let pool = ThreadPool::new(8);
        let v = SharedVec::<f64>::zeroed(801);
        pool.run(|ctx| {
            let r = ctx.partition(v.len(), 16);
            // SAFETY: partition ranges are disjoint across tids.
            let s = unsafe { v.slice_mut(r) };
            for x in s {
                *x = (ctx.tid + 1) as f64;
            }
        });
        // SAFETY: region over, exclusive access.
        let all = unsafe { v.slice(0..801) };
        assert!(all.iter().all(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_enforced() {
        let v = SharedVec::<f64>::zeroed(4);
        // SAFETY: assert fires first.
        let _ = unsafe { v.slice(0..5) };
    }
}
